//! Protocol taxonomy.

use std::fmt;

/// The memory consistency model a protocol configuration provides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConsistencyModel {
    /// Sequential consistency: the core issues at most one global memory
    /// operation per warp at a time ("naïve SC" of Singh et al.).
    SequentialConsistency,
    /// Weak ordering: loads and stores from a warp overlap freely; FENCE
    /// instructions restore ordering.
    WeakOrdering,
}

/// Every protocol configuration evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// Directory MESI adapted to write-through L1s — the paper's baseline.
    Mesi,
    /// Directory MESI with *write-back* L1s (M state, recalls with data):
    /// the CPU-style configuration the paper argues against for GPUs
    /// ("a write-back policy brings infrequently written data into the
    /// L1 only to write it back soon afterwards", Section I).
    MesiWb,
    /// TC-Strong: physical-time leases; stores stall at L2 until all
    /// leases expire (Singh et al., HPCA 2013). Supports SC.
    TcStrong,
    /// TC-Weak: stores complete eagerly with a GWCT; fences stall.
    /// Cannot support SC (write atomicity is relaxed).
    TcWeak,
    /// RCC with a single logical view per core — sequentially consistent.
    RccSc,
    /// RCC-WO: split read/write logical views, joined at fences
    /// (Section III-F). Weakly ordered.
    RccWo,
    /// SC with instantaneous read/write permissions — the limit study of
    /// Fig. 1d. A performance idealization, not a real protocol.
    IdealSc,
}

impl ProtocolKind {
    /// All protocol kinds, in the order figures present them.
    pub const ALL: [ProtocolKind; 7] = [
        ProtocolKind::Mesi,
        ProtocolKind::MesiWb,
        ProtocolKind::TcStrong,
        ProtocolKind::TcWeak,
        ProtocolKind::RccSc,
        ProtocolKind::RccWo,
        ProtocolKind::IdealSc,
    ];

    /// Consistency model this configuration provides to software.
    pub fn consistency(self) -> ConsistencyModel {
        match self {
            ProtocolKind::Mesi
            | ProtocolKind::MesiWb
            | ProtocolKind::TcStrong
            | ProtocolKind::RccSc
            | ProtocolKind::IdealSc => ConsistencyModel::SequentialConsistency,
            ProtocolKind::TcWeak | ProtocolKind::RccWo => ConsistencyModel::WeakOrdering,
        }
    }

    /// Whether executions must satisfy the full SC scoreboard check.
    pub fn supports_sc(self) -> bool {
        self.consistency() == ConsistencyModel::SequentialConsistency
            && self != ProtocolKind::IdealSc
    }

    /// Virtual networks needed for deadlock freedom (Table III: 5 for
    /// MESI, 2 otherwise).
    pub fn num_vcs(self) -> usize {
        match self {
            ProtocolKind::Mesi | ProtocolKind::MesiWb => 5,
            _ => 2,
        }
    }

    /// Label used in figures.
    pub fn label(self) -> &'static str {
        match self {
            ProtocolKind::Mesi => "MESI",
            ProtocolKind::MesiWb => "MESI-WB",
            ProtocolKind::TcStrong => "TCS",
            ProtocolKind::TcWeak => "TCW",
            ProtocolKind::RccSc => "RCC-SC",
            ProtocolKind::RccWo => "RCC-WO",
            ProtocolKind::IdealSc => "SC-IDEAL",
        }
    }
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_capability_matrix() {
        // Table I of the paper: SC support and stall-free store permissions.
        assert!(ProtocolKind::Mesi.supports_sc());
        assert!(ProtocolKind::TcStrong.supports_sc());
        assert!(!ProtocolKind::TcWeak.supports_sc());
        assert!(ProtocolKind::RccSc.supports_sc());
        assert!(!ProtocolKind::RccWo.supports_sc());
    }

    #[test]
    fn vc_counts_match_table_iii() {
        assert_eq!(ProtocolKind::Mesi.num_vcs(), 5);
        for k in [
            ProtocolKind::TcStrong,
            ProtocolKind::TcWeak,
            ProtocolKind::RccSc,
            ProtocolKind::RccWo,
        ] {
            assert_eq!(k.num_vcs(), 2);
        }
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            ProtocolKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), ProtocolKind::ALL.len());
    }
}
