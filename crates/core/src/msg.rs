//! Coherence messages and core↔L1 interface types.
//!
//! A warp-level memory access is *line-granular in traffic* (a fully
//! coalesced warp touches a whole 128-byte line, so data-carrying messages
//! are billed 34 flits) but *word-granular in value tracking* (the
//! consistency scoreboard follows one representative 4-byte word per
//! access), which is exactly the granularity at which the paper's `bfs`
//! false-sharing discussion operates.

use rcc_common::addr::{LineAddr, WordAddr, LINE_BYTES};
use rcc_common::ids::{CoreId, PartitionId, WarpId};
use rcc_common::stats::MsgClass;
use rcc_common::time::Timestamp;
use rcc_mem::LineData;
use std::fmt;

/// Unique identifier for an outstanding L1 request, echoed in store acks
/// and atomic replies so completions match their originating accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ReqId(pub u64);

/// Atomic read-modify-write operations supported by the L2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicOp {
    /// Fetch-and-add.
    Add(u64),
    /// Exchange (swap).
    Exch(u64),
    /// Compare-and-swap: store `new` iff the current value equals `expect`.
    Cas {
        /// Expected current value.
        expect: u64,
        /// Value stored on success.
        new: u64,
    },
    /// Atomic read (used by spin loops that must observe the latest value;
    /// always serviced at the L2, never from a stale L1 copy).
    Read,
}

impl AtomicOp {
    /// The new memory value after applying this operation to `old`.
    pub fn apply(self, old: u64) -> u64 {
        match self {
            AtomicOp::Add(v) => old.wrapping_add(v),
            AtomicOp::Exch(v) => v,
            AtomicOp::Cas { expect, new } => {
                if old == expect {
                    new
                } else {
                    old
                }
            }
            AtomicOp::Read => old,
        }
    }

    /// Whether applying to `old` modifies memory.
    pub fn mutates(self, old: u64) -> bool {
        self.apply(old) != old
    }
}

/// One warp-level memory access presented to the L1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Issuing warp.
    pub warp: WarpId,
    /// The tracked word.
    pub addr: WordAddr,
    /// Operation.
    pub kind: AccessKind,
}

/// The operation performed by an [`Access`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Read one word.
    Load,
    /// Write one word (write-through).
    Store {
        /// Value written.
        value: u64,
    },
    /// Atomic read-modify-write, performed at the L2.
    Atomic {
        /// The operation.
        op: AtomicOp,
    },
}

impl AccessKind {
    /// Whether this access is a store or atomic (acquires write "permission").
    pub fn is_write_like(self) -> bool {
        !matches!(self, AccessKind::Load)
    }

    /// Variant name, matching the identifiers in this file (used by the
    /// transition-coverage bridge between `rcc-verify` and `rcc-lint`).
    pub fn variant_name(&self) -> &'static str {
        match self {
            AccessKind::Load => "Load",
            AccessKind::Store { .. } => "Store",
            AccessKind::Atomic { .. } => "Atomic",
        }
    }
}

/// Outcome of presenting an [`Access`] to the L1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Completed immediately (e.g. an L1 load hit).
    Done(Completion),
    /// Accepted; a [`Completion`] will be delivered later.
    Pending,
    /// Structural hazard — the issuing warp must retry next cycle.
    Reject(RejectReason),
}

/// Why an access could not be accepted this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// L1 MSHRs exhausted.
    MshrFull,
    /// Merge list of the line's MSHR entry is full.
    MergeFull,
    /// The line is in a transient state that cannot accept this operation.
    TransientState,
    /// Chaos injection: the access was bounced for one cycle to model a
    /// variable hit latency (never produced without a chaos profile).
    ChaosStall,
}

/// Completion notice delivered to the core when a memory access finishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Warp whose access completed.
    pub warp: WarpId,
    /// Word accessed.
    pub addr: WordAddr,
    /// What completed and the observed/returned data.
    pub kind: CompletionKind,
    /// The access's position in the protocol's global memory order:
    /// logical time for RCC, physical L2-service time for TC/MESI. For
    /// TC-Weak stores this is the *global write completion time* (GWCT)
    /// that fences must wait on.
    pub ts: Timestamp,
    /// Tiebreaker among same-`ts` writes: L2 service sequence number
    /// within the owning partition (0 for loads that hit in the L1).
    pub seq: u64,
}

/// Kind-specific completion payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionKind {
    /// Load observed `value`.
    LoadDone {
        /// Observed value.
        value: u64,
    },
    /// Store became (logically) globally visible.
    StoreDone,
    /// Atomic performed; `old` is the pre-operation value.
    AtomicDone {
        /// Value read by the read-modify-write.
        old: u64,
    },
}

/// A request travelling from an L1 to an L2 partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReqMsg {
    /// Originating core.
    pub src: CoreId,
    /// Target line.
    pub line: LineAddr,
    /// Request id echoed by write acks and atomic replies.
    pub id: ReqId,
    /// Payload.
    pub payload: ReqPayload,
}

/// Request payloads (Fig. 5 left column plus baseline-protocol messages).
///
/// `WbData` carries a full line (like [`RespPayload::Data`]); requests
/// are moved, not stored in bulk, so the size variance is acceptable.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReqPayload {
    /// Read request. `renew_exp` carries the expiration of an expired lease
    /// the L1 still holds data for, enabling the RENEW optimization
    /// (Section III-E); `None` for cold misses.
    Gets {
        /// Requesting core's logical/physical `now`.
        now: Timestamp,
        /// Expired lease's `exp`, if the L1 retains the data.
        renew_exp: Option<Timestamp>,
    },
    /// Write-through store of one word.
    Write {
        /// Writing core's `now` (RCC rule 2/3 input).
        now: Timestamp,
        /// Word index within the line.
        word: usize,
        /// Value stored.
        value: u64,
    },
    /// Atomic read-modify-write of one word.
    Atomic {
        /// Core's `now`.
        now: Timestamp,
        /// Word index within the line.
        word: usize,
        /// Operation.
        op: AtomicOp,
    },
    /// Invalidation acknowledgement (MESI only).
    InvAck,
    /// Rollover flush acknowledgement (RCC only, Section III-D).
    FlushAck,
    /// Request exclusive (writable) ownership of a line (MESI-WB only).
    GetX {
        /// Requesting core's clock (unused by the directory; kept for
        /// symmetry with GETS).
        now: Timestamp,
    },
    /// A dirty line written back to the L2 — voluntarily on eviction or
    /// in answer to a [`RespPayload::Recall`] (MESI-WB only).
    WbData {
        /// The dirty line contents.
        data: LineData,
        /// The owner's last write slot for this line; the directory
        /// absorbs it into its service counter so post-recall services
        /// order after every local store.
        last_seq: u64,
    },
}

impl ReqPayload {
    /// Traffic class for accounting and virtual-channel assignment.
    pub fn class(&self) -> MsgClass {
        match self {
            ReqPayload::Gets { .. } => MsgClass::LoadReq,
            ReqPayload::Write { .. } => MsgClass::StoreReq,
            ReqPayload::Atomic { .. } => MsgClass::AtomicReq,
            ReqPayload::InvAck => MsgClass::InvAck,
            ReqPayload::FlushAck => MsgClass::Flush,
            ReqPayload::GetX { .. } => MsgClass::LoadReq,
            ReqPayload::WbData { .. } => MsgClass::Writeback,
        }
    }

    /// Variant name, matching the identifiers in this file (used by the
    /// transition-coverage bridge between `rcc-verify` and `rcc-lint`).
    pub fn variant_name(&self) -> &'static str {
        match self {
            ReqPayload::Gets { .. } => "Gets",
            ReqPayload::Write { .. } => "Write",
            ReqPayload::Atomic { .. } => "Atomic",
            ReqPayload::InvAck => "InvAck",
            ReqPayload::FlushAck => "FlushAck",
            ReqPayload::GetX { .. } => "GetX",
            ReqPayload::WbData { .. } => "WbData",
        }
    }
}

/// A response travelling from an L2 partition to an L1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RespMsg {
    /// Destination core.
    pub dst: CoreId,
    /// Subject line.
    pub line: LineAddr,
    /// Echo of the request id (writes/atomics), `ReqId(0)` otherwise.
    pub id: ReqId,
    /// Payload.
    pub payload: RespPayload,
}

/// Response payloads (Fig. 5 right column plus baseline-protocol messages).
///
/// `Data` dominates the size (a full 128-byte line), mirroring the real
/// traffic asymmetry; responses are moved, not stored in bulk, so the
/// variance is acceptable.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RespPayload {
    /// Full line of data with its version and lease expiration.
    Data {
        /// Line contents.
        data: LineData,
        /// Last-write logical time (RCC) / bank service time (TC, MESI).
        ver: Timestamp,
        /// Lease expiration granted to this reader.
        exp: Timestamp,
        /// Bank service sequence number — sub-cycle ordering for the
        /// physically-timed protocols (0 for RCC, whose logical `ver`
        /// already orders same-time events).
        seq: u64,
    },
    /// Lease renewal: new expiration, no data (RCC, Section III-E).
    Renew {
        /// New lease expiration.
        exp: Timestamp,
    },
    /// Store acknowledgement: the write's position in global order.
    StoreAck {
        /// Write version (RCC) / completion or GWCT time (TC) — see
        /// [`Completion::ts`].
        ver: Timestamp,
        /// Partition-local write sequence number.
        seq: u64,
    },
    /// Atomic reply: pre-operation value plus write position.
    AtomicResp {
        /// Value read.
        value: u64,
        /// Version assigned to the atomic's write.
        ver: Timestamp,
        /// Partition-local write sequence number.
        seq: u64,
    },
    /// Invalidate the L1 copy (MESI; also SC-IDEAL's zero-cost magic
    /// invalidation, which bypasses the network).
    Inv,
    /// Rollover flush request (RCC only).
    Flush,
    /// Exclusive data grant: the line plus write ownership (MESI-WB).
    DataEx {
        /// Line contents.
        data: LineData,
        /// Directory service slot (sub-cycle ordering).
        seq: u64,
    },
    /// Surrender a modified line: reply with [`ReqPayload::WbData`] and
    /// drop to Invalid (MESI-WB).
    Recall,
    /// Acknowledges a voluntary writeback (MESI-WB).
    WbAck,
}

impl RespPayload {
    /// Traffic class for accounting and virtual-channel assignment.
    pub fn class(&self) -> MsgClass {
        match self {
            RespPayload::Data { .. } => MsgClass::LoadData,
            RespPayload::Renew { .. } => MsgClass::Renew,
            RespPayload::StoreAck { .. } => MsgClass::StoreAck,
            RespPayload::AtomicResp { .. } => MsgClass::AtomicResp,
            RespPayload::Inv => MsgClass::Inv,
            RespPayload::Flush => MsgClass::Flush,
            RespPayload::DataEx { .. } => MsgClass::LoadData,
            RespPayload::Recall => MsgClass::Inv,
            RespPayload::WbAck => MsgClass::StoreAck,
        }
    }

    /// Variant name, matching the identifiers in this file (used by the
    /// transition-coverage bridge between `rcc-verify` and `rcc-lint`).
    pub fn variant_name(&self) -> &'static str {
        match self {
            RespPayload::Data { .. } => "Data",
            RespPayload::Renew { .. } => "Renew",
            RespPayload::StoreAck { .. } => "StoreAck",
            RespPayload::AtomicResp { .. } => "AtomicResp",
            RespPayload::Inv => "Inv",
            RespPayload::Flush => "Flush",
            RespPayload::DataEx { .. } => "DataEx",
            RespPayload::Recall => "Recall",
            RespPayload::WbAck => "WbAck",
        }
    }
}

/// Number of flits a message of class `class` occupies, given the NoC flit
/// size in bytes and a fixed `control_bytes` header.
///
/// Data-carrying classes serialize a full cache line behind the header; a
/// coalesced warp store also writes a full line's worth of bytes through,
/// so `StoreReq` is data-sized (this matches the TC paper's accounting).
pub fn flits_for(class: MsgClass, flit_bytes: usize, control_bytes: usize) -> u64 {
    let header = control_bytes.div_ceil(flit_bytes) as u64;
    if class.carries_line() {
        header + (LINE_BYTES as usize).div_ceil(flit_bytes) as u64
    } else if matches!(class, MsgClass::AtomicReq | MsgClass::AtomicResp) {
        header + 1
    } else {
        header
    }
}

/// Identifies a protocol agent endpoint, for message routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Node {
    /// A core / its L1.
    Core(CoreId),
    /// An L2 partition.
    L2(PartitionId),
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Node::Core(c) => write!(f, "{c}"),
            Node::L2(p) => write!(f, "{p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_ops_apply() {
        assert_eq!(AtomicOp::Add(3).apply(4), 7);
        assert_eq!(AtomicOp::Exch(9).apply(4), 9);
        assert_eq!(AtomicOp::Cas { expect: 4, new: 8 }.apply(4), 8);
        assert_eq!(AtomicOp::Cas { expect: 5, new: 8 }.apply(4), 4);
        assert_eq!(AtomicOp::Read.apply(4), 4);
    }

    #[test]
    fn atomic_mutates() {
        assert!(AtomicOp::Add(1).mutates(0));
        assert!(!AtomicOp::Add(0).mutates(5));
        assert!(!AtomicOp::Read.mutates(5));
        assert!(!AtomicOp::Cas { expect: 1, new: 2 }.mutates(0));
    }

    #[test]
    fn payload_classes() {
        let gets = ReqPayload::Gets {
            now: Timestamp(0),
            renew_exp: None,
        };
        assert_eq!(gets.class(), MsgClass::LoadReq);
        assert_eq!(
            ReqPayload::Write {
                now: Timestamp(0),
                word: 0,
                value: 0
            }
            .class(),
            MsgClass::StoreReq
        );
        assert_eq!(RespPayload::Inv.class(), MsgClass::Inv);
        assert_eq!(
            RespPayload::Renew { exp: Timestamp(1) }.class(),
            MsgClass::Renew
        );
    }

    #[test]
    fn flit_sizes_match_table_iii_geometry() {
        // 4-byte flits, 8-byte control header.
        assert_eq!(flits_for(MsgClass::LoadReq, 4, 8), 2);
        assert_eq!(flits_for(MsgClass::LoadData, 4, 8), 2 + 32);
        assert_eq!(flits_for(MsgClass::StoreReq, 4, 8), 2 + 32);
        assert_eq!(flits_for(MsgClass::StoreAck, 4, 8), 2);
        assert_eq!(flits_for(MsgClass::AtomicReq, 4, 8), 3);
        assert_eq!(flits_for(MsgClass::Inv, 4, 8), 2);
    }

    #[test]
    fn write_like_taxonomy() {
        assert!(!AccessKind::Load.is_write_like());
        assert!(AccessKind::Store { value: 0 }.is_write_like());
        assert!(AccessKind::Atomic { op: AtomicOp::Read }.is_write_like());
    }
}
