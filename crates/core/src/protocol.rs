//! The protocol-agnostic controller interface every coherence protocol
//! implements, plus the per-controller statistics the figures are
//! computed from.
//!
//! Controllers are pure FSMs: they never model latency. The simulator in
//! `rcc-sim` delivers events (core accesses, network messages, DRAM fills)
//! and moves outbox contents through the timed NoC/DRAM models.

use crate::kind::ProtocolKind;
use crate::msg::{Access, AccessOutcome, Completion, ReqMsg, RespMsg};
use rcc_common::addr::LineAddr;
use rcc_common::config::GpuConfig;
use rcc_common::ids::{CoreId, PartitionId};
use rcc_common::time::{Cycle, Timestamp};
use rcc_mem::LineData;

/// Messages and events produced by an L1 controller in one step.
#[derive(Debug, Default)]
pub struct L1Outbox {
    /// Requests to send to L2 partitions.
    pub to_l2: Vec<ReqMsg>,
    /// Completions to deliver to the core's LSU.
    pub completions: Vec<Completion>,
}

impl L1Outbox {
    /// Creates an empty outbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves all contents of `other` into `self`.
    pub fn append(&mut self, other: &mut L1Outbox) {
        self.to_l2.append(&mut other.to_l2);
        self.completions.append(&mut other.completions);
    }

    /// Discards all contents, keeping the allocated capacity.
    pub fn clear(&mut self) {
        self.to_l2.clear();
        self.completions.clear();
    }

    /// True if nothing was produced.
    pub fn is_empty(&self) -> bool {
        self.to_l2.is_empty() && self.completions.is_empty()
    }
}

/// A zero-cost coherence action SC-IDEAL applies to an L1 copy
/// out-of-band — the idealization of instantaneous write permissions
/// (Fig. 1d). Real protocols pay messages for the same effects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MagicAction {
    /// Drop the copy (the L2 evicted the line).
    Invalidate,
    /// Refresh one word of the copy in place (a remote store or atomic
    /// was applied at the L2 this cycle).
    Update {
        /// Word index within the line.
        word: usize,
        /// The word's new value.
        value: u64,
    },
}

/// Messages and events produced by an L2 bank in one step.
#[derive(Debug, Default)]
pub struct L2Outbox {
    /// Responses to send to L1s.
    pub to_l1: Vec<RespMsg>,
    /// Lines to fetch from DRAM.
    pub dram_fetch: Vec<LineAddr>,
    /// Dirty lines written back to DRAM.
    pub dram_writeback: Vec<(LineAddr, LineData)>,
    /// SC-IDEAL only: coherence actions applied to L1 copies instantly,
    /// bypassing the network (zero latency, zero traffic).
    pub magic_inv: Vec<(CoreId, LineAddr, MagicAction)>,
}

impl L2Outbox {
    /// Creates an empty outbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Discards all contents, keeping the allocated capacity.
    pub fn clear(&mut self) {
        self.to_l1.clear();
        self.dram_fetch.clear();
        self.dram_writeback.clear();
        self.magic_inv.clear();
    }

    /// True if nothing was produced.
    pub fn is_empty(&self) -> bool {
        self.to_l1.is_empty()
            && self.dram_fetch.is_empty()
            && self.dram_writeback.is_empty()
            && self.magic_inv.is_empty()
    }
}

/// Counters maintained by every L1 controller.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct L1Stats {
    /// Load accesses presented.
    pub loads: u64,
    /// Loads served from the L1 (valid, unexpired).
    pub load_hits: u64,
    /// Loads that found the line in V state but logically expired
    /// (numerator of Fig. 6 left).
    pub expired_loads: u64,
    /// Expired loads whose data was refreshed by a RENEW (no transfer) —
    /// these expirations were premature (Fig. 6 right / Fig. 7).
    pub renewed_loads: u64,
    /// Store accesses presented.
    pub stores: u64,
    /// Atomic accesses presented.
    pub atomics: u64,
    /// Lines self-invalidated by lease expiry at replacement or access.
    pub self_invalidations: u64,
    /// Accesses rejected for structural reasons (MSHR pressure).
    pub rejects: u64,
    /// Invalidation messages received (MESI).
    pub invs_received: u64,
}

impl L1Stats {
    /// Field-wise difference `self − earlier`. Counters are monotone, so
    /// this is the exact delta accumulated since `earlier` was cloned.
    #[must_use]
    pub fn delta_since(&self, earlier: &L1Stats) -> L1Stats {
        // Exhaustive destructuring: adding a counter without updating
        // the replay arithmetic must fail to compile.
        let L1Stats {
            loads,
            load_hits,
            expired_loads,
            renewed_loads,
            stores,
            atomics,
            self_invalidations,
            rejects,
            invs_received,
        } = earlier;
        L1Stats {
            loads: self.loads - loads,
            load_hits: self.load_hits - load_hits,
            expired_loads: self.expired_loads - expired_loads,
            renewed_loads: self.renewed_loads - renewed_loads,
            stores: self.stores - stores,
            atomics: self.atomics - atomics,
            self_invalidations: self.self_invalidations - self_invalidations,
            rejects: self.rejects - rejects,
            invs_received: self.invs_received - invs_received,
        }
    }

    /// Adds `times` copies of `delta` to every counter — the replay
    /// primitive for skipped cycles proven to repeat one bookkeeping
    /// pattern exactly (a core's structural reject-spin).
    pub fn add_scaled(&mut self, delta: &L1Stats, times: u64) {
        let L1Stats {
            loads,
            load_hits,
            expired_loads,
            renewed_loads,
            stores,
            atomics,
            self_invalidations,
            rejects,
            invs_received,
        } = delta;
        self.loads += loads * times;
        self.load_hits += load_hits * times;
        self.expired_loads += expired_loads * times;
        self.renewed_loads += renewed_loads * times;
        self.stores += stores * times;
        self.atomics += atomics * times;
        self.self_invalidations += self_invalidations * times;
        self.rejects += rejects * times;
        self.invs_received += invs_received * times;
    }
}

/// Counters maintained by every L2 bank.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct L2Stats {
    /// GETS requests served.
    pub gets: u64,
    /// GETS served as lease renewals (no data transferred).
    pub renews_granted: u64,
    /// WRITE requests served.
    pub writes: u64,
    /// ATOMIC requests served.
    pub atomics: u64,
    /// DRAM line fetches issued.
    pub dram_fetches: u64,
    /// Dirty writebacks issued.
    pub writebacks: u64,
    /// Invalidations sent to L1 sharers (MESI).
    pub invs_sent: u64,
    /// Store requests that had to wait for lease expiry (TC-Strong) or
    /// sharer invalidation (MESI) before being acknowledged.
    pub stalled_stores: u64,
    /// Total cycles stores spent waiting at the L2 for write permission.
    pub store_stall_cycles: u64,
}

/// A protocol configuration: a factory for its L1 and L2 controllers.
pub trait Protocol {
    /// Per-core L1 controller type.
    type L1: L1Cache;
    /// Per-partition L2 controller type.
    type L2: L2Bank;

    /// Which configuration this is.
    fn kind(&self) -> ProtocolKind;

    /// Builds the L1 controller for `core`.
    fn make_l1(&self, core: CoreId, cfg: &GpuConfig) -> Self::L1;

    /// Builds the L2 controller for `partition`.
    fn make_l2(&self, partition: PartitionId, cfg: &GpuConfig) -> Self::L2;
}

/// Core-side coherence controller for one L1 cache.
///
/// `Debug` is a supertrait so every controller's full state — tag
/// arrays, MSHR files, leases, chaos streams — can be folded into a
/// cross-component digest ([`L1Cache::digest_state`]) for checkpoint
/// attestation and hang forensics.
pub trait L1Cache: std::fmt::Debug {
    /// Presents one warp memory access. On `Pending`, a [`Completion`]
    /// with the access's `ReqId`-matched result will eventually appear in
    /// an outbox.
    fn access(&mut self, cycle: Cycle, access: Access, out: &mut L1Outbox) -> AccessOutcome;

    /// Delivers a response (or MESI invalidation / RCC flush) from the L2.
    fn handle_resp(&mut self, cycle: Cycle, resp: RespMsg, out: &mut L1Outbox);

    /// Advances per-cycle state (physical lease expiry for TC, livelock
    /// bump for RCC). Called once per core cycle.
    fn tick(&mut self, cycle: Cycle, out: &mut L1Outbox);

    /// A FENCE retired on this core (RCC-WO joins its read/write views;
    /// other protocols need no L1 action).
    fn fence(&mut self) {}

    /// Accounts for `times` skipped retry cycles during which the
    /// simulator proved this controller would structurally reject the
    /// same access every cycle (a core stuck in a reject-spin, see
    /// `Core::stall_horizon` in `rcc-gpu`). `delta` is the exact
    /// per-retry stat delta the engine observed on the executed reject.
    /// Valid because a rejected access changes *only* counters — every
    /// in-repo controller satisfies that (tag probes on the reject path
    /// are read-only and failed MSHR allocations do not mutate).
    fn replay_rejected_access(&mut self, delta: &L1Stats, times: u64);

    /// Installs a chaos perturbation hook. Default: ignore (no injection
    /// points). Controllers that opt in forward the hook — or forks of
    /// it — to their injection sites (MSHR files, lease grants, …).
    fn set_chaos(&mut self, _hook: Box<dyn rcc_chaos::PerturbPoint>) {}

    /// Applies a zero-cost out-of-band coherence action (SC-IDEAL only;
    /// real protocols never receive these).
    fn magic(&mut self, _cycle: Cycle, _line: LineAddr, _action: MagicAction) {}

    /// Number of outstanding requests (used to quiesce for rollover and
    /// to detect deadlock).
    fn pending(&self) -> usize;

    /// The earliest future cycle at which this controller would act
    /// *spontaneously* — i.e. its [`L1Cache::tick`] would do something
    /// even if no access or response arrives first. `None` means "never:
    /// only external input wakes me". Used by the simulator to fast
    /// forward over idle stretches, so the contract is strict: returning
    /// a cycle *later* than the true next action would skip real work
    /// and corrupt the run; returning one earlier merely costs a wasted
    /// tick. The conservative default, `now + 1`, claims work every
    /// cycle and therefore disables fast-forwarding for controllers
    /// that don't override it.
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        Some(now + 1)
    }

    /// Folds the controller's full state into a cross-component state
    /// digest. The default streams the `Debug` rendering, which is
    /// deterministic per binary and — because the in-repo hash maps
    /// iterate in insertion order under deterministic replay — equal for
    /// equal histories.
    fn digest_state(&self, d: &mut rcc_common::snap::StateDigest) {
        d.write_debug(self);
    }

    /// Statistics.
    fn stats(&self) -> &L1Stats;
}

/// One bank/partition of the shared L2 cache.
///
/// `Debug` is a supertrait for the same reason as on [`L1Cache`]: state
/// digests for checkpoint attestation and hang forensics.
pub trait L2Bank: std::fmt::Debug {
    /// Delivers one request from an L1.
    ///
    /// # Errors
    ///
    /// Returns `Err(req)` — handing the unconsumed request back — when
    /// the bank cannot accept it this cycle (MSHR full / no victim way);
    /// the simulator re-queues the returned message and retries it,
    /// preserving per-source order without ever cloning the payload.
    /// The `Err` carries the full message by design — boxing it would
    /// reintroduce a per-reject allocation on the hot path.
    #[allow(clippy::result_large_err)]
    fn handle_req(&mut self, cycle: Cycle, req: ReqMsg, out: &mut L2Outbox) -> Result<(), ReqMsg>;

    /// Delivers a DRAM fill for `line`.
    fn handle_dram(&mut self, cycle: Cycle, line: LineAddr, data: LineData, out: &mut L2Outbox);

    /// Advances per-cycle state (TC-Strong releases stores whose leases
    /// have expired). Called once per core cycle.
    fn tick(&mut self, cycle: Cycle, out: &mut L2Outbox);

    /// Installs a chaos perturbation hook (see [`L1Cache::set_chaos`]).
    /// L2 banks must *not* forward the hook to their MSHR files: deferred
    /// requests are re-dispatched with "cannot be rejected" invariants.
    fn set_chaos(&mut self, _hook: Box<dyn rcc_chaos::PerturbPoint>) {}

    /// Whether this bank's timestamps are close enough to the rollover
    /// threshold that the global rollover protocol must run (RCC only).
    fn needs_rollover(&self) -> bool {
        false
    }

    /// Resets all timestamps to zero (rollover, Section III-D). Only
    /// meaningful for timestamp protocols; called with the system
    /// quiesced.
    fn rollover_reset(&mut self) {}

    /// Number of outstanding transactions (MSHRs + deferred requests).
    fn pending(&self) -> usize;

    /// The bank's logical clock, for timestamp protocols: the largest
    /// timestamp this bank has minted so far. `None` for physical-time
    /// protocols. Observability only — the sampler records it as a
    /// per-bank counter track; nothing on the simulated path reads it.
    fn logical_time(&self) -> Option<Timestamp> {
        None
    }

    /// The earliest future cycle at which this bank's [`L2Bank::tick`]
    /// would act with no further input (e.g. TC-Strong releasing a
    /// stalled store once the blocking lease expires). Same contract as
    /// [`L1Cache::next_event`]: never later than the truth; `None` means
    /// purely reactive; the default `now + 1` opts out of
    /// fast-forwarding.
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        Some(now + 1)
    }

    /// Folds the bank's full state into a cross-component state digest
    /// (see [`L1Cache::digest_state`]).
    fn digest_state(&self, d: &mut rcc_common::snap::StateDigest) {
        d.write_debug(self);
    }

    /// Statistics.
    fn stats(&self) -> &L2Stats;
}
