//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the API this workspace's benches use:
//! [`Criterion`], benchmark groups, [`BenchmarkId`], `b.iter(..)`, and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Each benchmark is
//! timed with `std::time::Instant` over `sample_size` samples (after one
//! warm-up run) and reports mean/min per iteration — intentionally simple,
//! with none of real criterion's statistics or report output.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` (criterion-compatible name).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifies one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id rendered from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the benchmark closure; runs and times the measured routine.
pub struct Bencher {
    samples: usize,
    /// Filled by `iter`: per-sample (iterations, elapsed).
    results: Vec<(u64, Duration)>,
}

impl Bencher {
    /// Times `routine`, running it once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (also primes caches/allocations).
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.results.push((1, start.elapsed()));
        }
    }
}

fn report(path: &str, results: &[(u64, Duration)]) {
    if results.is_empty() {
        println!("{path}: no samples");
        return;
    }
    let total_iters: u64 = results.iter().map(|(n, _)| n).sum();
    let total: Duration = results.iter().map(|(_, d)| *d).sum();
    let min = results
        .iter()
        .map(|(n, d)| d.as_nanos() / (*n as u128).max(1))
        .min()
        .unwrap_or(0);
    let mean = total.as_nanos() / (total_iters as u128).max(1);
    println!(
        "{path}: mean {:>12} min {:>12}  ({} samples)",
        format_ns(mean),
        format_ns(min),
        results.len()
    );
}

fn format_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    samples: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs and reports one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.samples,
            results: Vec::new(),
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b.results);
        self
    }

    /// Runs and reports one benchmark taking an input by reference.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.samples,
            results: Vec::new(),
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b.results);
        self
    }

    /// Finishes the group (no-op in the shim).
    pub fn finish(&mut self) {}
}

/// The benchmark manager handed to every `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    default_samples: usize,
}

impl Criterion {
    /// Begins a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = if self.default_samples == 0 {
            20
        } else {
            self.default_samples
        };
        BenchmarkGroup {
            name: name.into(),
            samples,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        let name = id.to_string();
        self.benchmark_group(name.clone()).bench_function("", f);
        self
    }
}

/// Declares a group of benchmark functions (criterion-compatible).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point (criterion-compatible).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_time_and_report() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.bench_with_input(BenchmarkId::from_parameter("p1"), &5u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("RCC").to_string(), "RCC");
    }
}
