//! Consistency litmus tests.
//!
//! Each test is a tiny multi-core program with designated observer loads;
//! the judgement is over the values those loads return. Under any
//! sequentially consistent protocol the *forbidden* outcomes must never
//! appear; under TC-Weak without fences, `mp` and `sb` outcomes become
//! observable (Section II-A's `data`/`done` example is exactly `mp`).
//! Randomized `Compute` preludes perturb the interleaving so repeated
//! runs explore different timings.

use rcc_common::addr::{LineAddr, WordAddr};
use rcc_common::ids::{CoreId, WarpId, WorkgroupId};
use rcc_common::rng::Pcg32;
use rcc_core::msg::AtomicOp;
use rcc_gpu::op::{MemOp, WarpProgram};

/// A named observer load: (core, warp, address); the value it returned
/// is looked up in the execution's load log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Probe {
    /// Core running the observer.
    pub core: CoreId,
    /// Warp running the observer.
    pub warp: WarpId,
    /// Word loaded.
    pub addr: WordAddr,
    /// Which of that warp's loads of `addr` to take (0-based, program
    /// order).
    pub nth: usize,
}

/// A litmus test: programs plus the forbidden-outcome predicate.
pub struct Litmus {
    /// Test name (`mp`, `sb`, `corr`, `iriw`).
    pub name: &'static str,
    /// `programs[core]` — single warp per participating core.
    pub programs: Vec<Vec<WarpProgram>>,
    /// Observer loads, in the order `forbidden` expects their values.
    pub probes: Vec<Probe>,
    /// Returns true iff the observed values form an outcome SC forbids.
    pub forbidden: fn(&[u64]) -> bool,
}

fn delay(rng: &mut Pcg32) -> MemOp {
    MemOp::Compute(1 + rng.below(120) as u32)
}

fn prog(rng: &mut Pcg32, ops: Vec<MemOp>) -> Vec<WarpProgram> {
    let mut v = vec![delay(rng)];
    v.extend(ops);
    vec![WarpProgram::new(WorkgroupId(0), v)]
}

fn empty() -> Vec<WarpProgram> {
    Vec::new()
}

fn pad(mut programs: Vec<Vec<WarpProgram>>, cores: usize) -> Vec<Vec<WarpProgram>> {
    while programs.len() < cores {
        programs.push(empty());
    }
    programs
}

/// Message passing (the paper's `data`/`done` example): W data; W flag ∥
/// R flag; R data. Forbidden: flag = 1 ∧ data = 0.
///
/// The reader warms `data` into its L1 first — under SC that is harmless,
/// while under TC-Weak it opens the stale-hit window that makes the weak
/// outcome observable (the writer completes both stores eagerly while the
/// reader's leased copy of `data` is still valid).
pub fn message_passing(cores: usize, seed: u64) -> Litmus {
    assert!(cores >= 2);
    let mut rng = Pcg32::new(seed, 1);
    let data = LineAddr(0).word(0);
    let flag = LineAddr(1).word(0);
    let reader_delay = delay(&mut rng);
    let programs = pad(
        vec![
            prog(&mut rng, vec![MemOp::Store(data, 1), MemOp::Store(flag, 1)]),
            prog(
                &mut rng,
                vec![
                    MemOp::Load(data), // warmup: cache the old value
                    reader_delay,
                    MemOp::Load(flag),
                    MemOp::Load(data),
                ],
            ),
        ],
        cores,
    );
    Litmus {
        name: "mp",
        programs,
        probes: vec![
            Probe {
                core: CoreId(1),
                warp: WarpId(0),
                addr: flag,
                nth: 0,
            },
            Probe {
                core: CoreId(1),
                warp: WarpId(0),
                addr: data,
                nth: 1,
            },
        ],
        forbidden: |v| v[0] == 1 && v[1] == 0,
    }
}

/// Message passing with fences — must be SC-safe even under weak
/// ordering (this is how the benchmarks are written for TCW/RCC-WO).
pub fn message_passing_fenced(cores: usize, seed: u64) -> Litmus {
    let mut l = message_passing(cores, seed);
    l.name = "mp+fence";
    // Insert a fence between the two stores and between the two loads.
    for core in &mut l.programs {
        for p in core {
            let mut fenced = Vec::new();
            for (i, op) in p.ops.iter().enumerate() {
                fenced.push(*op);
                if op.is_memory() && i + 1 < p.ops.len() {
                    fenced.push(MemOp::Fence);
                }
            }
            p.ops = fenced;
        }
    }
    l
}

/// Message passing where the flag hand-off is a release-style RMW:
/// W data; fence; XCHG flag ← 1 ∥ R flag; fence; R data. The atomic
/// performs at the L2 (never from a stale L1 copy) and the fences order
/// it against the data accesses, so the outcome flag = 1 ∧ data = 0 is
/// forbidden even under the weakly ordered configurations — this is the
/// unlock/lock idiom the benchmarks' mutexes rely on.
///
/// The flag probe is the reader's plain load (observer loads must be
/// `Load`s — only those land in the execution's load log).
pub fn mp_atomic(cores: usize, seed: u64) -> Litmus {
    assert!(cores >= 2);
    let mut rng = Pcg32::new(seed, 7);
    let data = LineAddr(0).word(0);
    let flag = LineAddr(1).word(0);
    let reader_delay = delay(&mut rng);
    let programs = pad(
        vec![
            prog(
                &mut rng,
                vec![
                    MemOp::Store(data, 1),
                    MemOp::Fence,
                    MemOp::Atomic(flag, AtomicOp::Exch(1)),
                ],
            ),
            prog(
                &mut rng,
                vec![
                    MemOp::Load(data), // warmup: cache the old value
                    reader_delay,
                    MemOp::Load(flag),
                    MemOp::Fence,
                    MemOp::Load(data),
                ],
            ),
        ],
        cores,
    );
    Litmus {
        name: "mp+atomic",
        programs,
        probes: vec![
            Probe {
                core: CoreId(1),
                warp: WarpId(0),
                addr: flag,
                nth: 0,
            },
            Probe {
                core: CoreId(1),
                warp: WarpId(0),
                addr: data,
                nth: 1,
            },
        ],
        forbidden: |v| v[0] == 1 && v[1] == 0,
    }
}

/// Store buffering: W x; R y ∥ W y; R x. Forbidden: both loads read 0.
pub fn store_buffering(cores: usize, seed: u64) -> Litmus {
    assert!(cores >= 2);
    let mut rng = Pcg32::new(seed, 2);
    let x = LineAddr(0).word(0);
    let y = LineAddr(1).word(0);
    let programs = pad(
        vec![
            prog(&mut rng, vec![MemOp::Store(x, 1), MemOp::Load(y)]),
            prog(&mut rng, vec![MemOp::Store(y, 1), MemOp::Load(x)]),
        ],
        cores,
    );
    Litmus {
        name: "sb",
        programs,
        probes: vec![
            Probe {
                core: CoreId(0),
                warp: WarpId(0),
                addr: y,
                nth: 0,
            },
            Probe {
                core: CoreId(1),
                warp: WarpId(0),
                addr: x,
                nth: 0,
            },
        ],
        forbidden: |v| v[0] == 0 && v[1] == 0,
    }
}

/// Store buffering with fences between the store and the load on both
/// sides — the SC-restoring idiom for weakly ordered configurations.
pub fn store_buffering_fenced(cores: usize, seed: u64) -> Litmus {
    let mut l = store_buffering(cores, seed);
    l.name = "sb+fence";
    for core in &mut l.programs {
        for p in core {
            let mut fenced = Vec::new();
            for op in &p.ops {
                fenced.push(*op);
                if matches!(op, MemOp::Store(..)) {
                    fenced.push(MemOp::Fence);
                }
            }
            p.ops = fenced;
        }
    }
    l
}

/// Load buffering: R x; W y ∥ R y; W x. Forbidden: both loads read 1 —
/// each load would have to observe a store that is program-order *after*
/// the other thread's load of this thread's store.
pub fn load_buffering(cores: usize, seed: u64) -> Litmus {
    assert!(cores >= 2);
    let mut rng = Pcg32::new(seed, 5);
    let x = LineAddr(0).word(0);
    let y = LineAddr(1).word(0);
    let programs = pad(
        vec![
            prog(&mut rng, vec![MemOp::Load(x), MemOp::Store(y, 1)]),
            prog(&mut rng, vec![MemOp::Load(y), MemOp::Store(x, 1)]),
        ],
        cores,
    );
    Litmus {
        name: "lb",
        programs,
        probes: vec![
            Probe {
                core: CoreId(0),
                warp: WarpId(0),
                addr: x,
                nth: 0,
            },
            Probe {
                core: CoreId(1),
                warp: WarpId(0),
                addr: y,
                nth: 0,
            },
        ],
        forbidden: |v| v[0] == 1 && v[1] == 1,
    }
}

/// Write-to-read causality: W x ∥ R x; W y ∥ R y; R x. Forbidden:
/// the last thread sees `y` (so thread 2 saw `x` before writing `y`)
/// but not `x` — causality through thread 2 would be broken.
///
/// Like `mp`, the final reader warms `x` into its L1 to open the
/// stale-hit window under non-atomic-write protocols.
pub fn wrc(cores: usize, seed: u64) -> Litmus {
    assert!(cores >= 3);
    let mut rng = Pcg32::new(seed, 6);
    let x = LineAddr(0).word(0);
    let y = LineAddr(1).word(0);
    let reader_delay = delay(&mut rng);
    let programs = pad(
        vec![
            prog(&mut rng, vec![MemOp::Store(x, 1)]),
            prog(
                &mut rng,
                vec![MemOp::Load(x), MemOp::Load(x), MemOp::Store(y, 1)],
            ),
            prog(
                &mut rng,
                vec![
                    MemOp::Load(x), // warmup: cache the old value
                    reader_delay,
                    MemOp::Load(y),
                    MemOp::Load(x),
                ],
            ),
        ],
        cores,
    );
    Litmus {
        name: "wrc",
        programs,
        probes: vec![
            // Thread 1's second read of x (past the warmup effect of its
            // own first read).
            Probe {
                core: CoreId(1),
                warp: WarpId(0),
                addr: x,
                nth: 1,
            },
            Probe {
                core: CoreId(2),
                warp: WarpId(0),
                addr: y,
                nth: 0,
            },
            Probe {
                core: CoreId(2),
                warp: WarpId(0),
                addr: x,
                nth: 1,
            },
        ],
        forbidden: |v| v[0] == 1 && v[1] == 1 && v[2] == 0,
    }
}

/// Coherence of read-read: two loads of the same location must not see
/// values in anti-causal order (new then old).
pub fn corr(cores: usize, seed: u64) -> Litmus {
    assert!(cores >= 2);
    let mut rng = Pcg32::new(seed, 3);
    let x = LineAddr(0).word(0);
    let programs = pad(
        vec![
            prog(&mut rng, vec![MemOp::Store(x, 1)]),
            prog(&mut rng, vec![MemOp::Load(x), MemOp::Load(x)]),
        ],
        cores,
    );
    Litmus {
        name: "corr",
        programs,
        probes: vec![
            Probe {
                core: CoreId(1),
                warp: WarpId(0),
                addr: x,
                nth: 0,
            },
            Probe {
                core: CoreId(1),
                warp: WarpId(0),
                addr: x,
                nth: 1,
            },
        ],
        forbidden: |v| v[0] == 1 && v[1] == 0,
    }
}

/// Independent reads of independent writes: write atomicity. Two
/// observers must not see the two writes in opposite orders.
pub fn iriw(cores: usize, seed: u64) -> Litmus {
    assert!(cores >= 4);
    let mut rng = Pcg32::new(seed, 4);
    let x = LineAddr(0).word(0);
    let y = LineAddr(1).word(0);
    let programs = pad(
        vec![
            prog(&mut rng, vec![MemOp::Store(x, 1)]),
            prog(&mut rng, vec![MemOp::Store(y, 1)]),
            prog(&mut rng, vec![MemOp::Load(x), MemOp::Load(y)]),
            prog(&mut rng, vec![MemOp::Load(y), MemOp::Load(x)]),
        ],
        cores,
    );
    Litmus {
        name: "iriw",
        programs,
        probes: vec![
            Probe {
                core: CoreId(2),
                warp: WarpId(0),
                addr: x,
                nth: 0,
            },
            Probe {
                core: CoreId(2),
                warp: WarpId(0),
                addr: y,
                nth: 0,
            },
            Probe {
                core: CoreId(3),
                warp: WarpId(0),
                addr: y,
                nth: 0,
            },
            Probe {
                core: CoreId(3),
                warp: WarpId(0),
                addr: x,
                nth: 0,
            },
        ],
        // Observer A: x then not-yet y; observer B: y then not-yet x.
        forbidden: |v| v[0] == 1 && v[1] == 0 && v[2] == 1 && v[3] == 0,
    }
}

/// All litmus tests for a machine with at least four cores.
pub fn all(cores: usize, seed: u64) -> Vec<Litmus> {
    vec![
        message_passing(cores, seed),
        message_passing_fenced(cores, seed),
        mp_atomic(cores, seed),
        store_buffering(cores, seed),
        store_buffering_fenced(cores, seed),
        load_buffering(cores, seed),
        wrc(cores, seed),
        corr(cores, seed),
        iriw(cores, seed),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_probes() {
        for l in all(4, 9) {
            assert_eq!(l.programs.len(), 4, "{}", l.name);
            assert!(!l.probes.is_empty());
            // Every probe points at a load present in the program.
            for p in &l.probes {
                let warp = &l.programs[p.core.index()][p.warp.index()];
                let loads = warp
                    .ops
                    .iter()
                    .filter(|o| matches!(o, MemOp::Load(a) if *a == p.addr))
                    .count();
                assert!(loads > p.nth, "{}: probe beyond loads", l.name);
            }
        }
    }

    #[test]
    fn forbidden_predicates() {
        let mp = message_passing(2, 0);
        assert!((mp.forbidden)(&[1, 0]));
        assert!(!(mp.forbidden)(&[1, 1]));
        assert!(!(mp.forbidden)(&[0, 0]));
        let mpa = mp_atomic(2, 0);
        assert!((mpa.forbidden)(&[1, 0]));
        assert!(!(mpa.forbidden)(&[1, 1]));
        assert!(!(mpa.forbidden)(&[0, 0]));
        let sb = store_buffering(2, 0);
        assert!((sb.forbidden)(&[0, 0]));
        assert!(!(sb.forbidden)(&[1, 0]));
        let ir = iriw(4, 0);
        assert!((ir.forbidden)(&[1, 0, 1, 0]));
        assert!(!(ir.forbidden)(&[1, 1, 1, 0]));
        let lb = load_buffering(2, 0);
        assert!((lb.forbidden)(&[1, 1]));
        assert!(!(lb.forbidden)(&[1, 0]));
        let w = wrc(3, 0);
        assert!((w.forbidden)(&[1, 1, 0]));
        assert!(!(w.forbidden)(&[1, 1, 1]));
        assert!(!(w.forbidden)(&[0, 1, 0]));
    }

    #[test]
    fn mp_atomic_hands_off_through_an_rmw() {
        let l = mp_atomic(2, 0);
        let writer = &l.programs[0][0].ops;
        let store_at = writer
            .iter()
            .position(|o| matches!(o, MemOp::Store(..)))
            .expect("data store present");
        let xchg_at = writer
            .iter()
            .position(|o| matches!(o, MemOp::Atomic(_, AtomicOp::Exch(1))))
            .expect("flag exchange present");
        assert!(store_at < xchg_at, "data store must precede the hand-off");
        assert!(
            writer[store_at + 1..xchg_at].contains(&MemOp::Fence),
            "release fence must sit between store and exchange"
        );
        let reader = &l.programs[1][0].ops;
        let flag_load = reader
            .iter()
            .position(|o| matches!(o, MemOp::Load(a) if *a == LineAddr(1).word(0)))
            .expect("flag load present");
        assert!(
            reader[flag_load + 1..].contains(&MemOp::Fence),
            "acquire fence must follow the flag load"
        );
    }

    #[test]
    fn sb_fenced_has_fence_after_each_store() {
        let l = store_buffering_fenced(2, 0);
        for core in &l.programs[..2] {
            let ops = &core[0].ops;
            let store_at = ops
                .iter()
                .position(|o| matches!(o, MemOp::Store(..)))
                .expect("store present");
            assert_eq!(ops[store_at + 1], MemOp::Fence);
        }
    }

    #[test]
    fn fenced_variant_contains_fences() {
        let l = message_passing_fenced(2, 0);
        let fences: usize = l.programs[0][0]
            .ops
            .iter()
            .filter(|o| matches!(o, MemOp::Fence))
            .count();
        assert!(fences >= 1);
    }

    #[test]
    fn seeds_change_preludes() {
        let a = message_passing(2, 1);
        let b = message_passing(2, 2);
        assert_ne!(
            format!("{:?}", a.programs[0][0].ops[0]),
            format!("{:?}", b.programs[0][0].ops[0])
        );
    }
}
