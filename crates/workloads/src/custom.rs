//! Custom workloads from a plain-text trace format.
//!
//! Lets users drive the simulator with their own per-warp programs
//! instead of the built-in generators. The format is line-oriented:
//!
//! ```text
//! # comments and blank lines are ignored
//! warp 0 0 wg=0          # start the program of core 0, warp 0
//!   ld 0x100             # load  (byte address; the word containing it)
//!   st 0x140 42          # store value 42
//!   at 0x180 add 3       # atomic fetch-and-add
//!   at 0x180 cas 0 1     # atomic compare-and-swap
//!   at 0x180 exch 7      # atomic exchange
//!   at 0x180 read        # atomic read
//!   fence
//!   compute 20           # busy for 20 cycles
//!   lock 0x1c0           # CAS spin-lock acquire
//!   unlock 0x1c0
//!   barrier 0x200 4      # fast-barrier arrive+poll, 4 members
//!   wait 1               # intra-workgroup wait for barrier epoch 1
//!   until 500            # issue gate: next op not before cycle 500
//! ```
//!
//! # Example
//!
//! ```
//! use rcc_workloads::custom::parse_trace;
//!
//! let wl = parse_trace("warp 0 0 wg=0\n  st 0x100 7\n  ld 0x100\n", 2).unwrap();
//! assert_eq!(wl.programs[0][0].ops.len(), 2);
//! ```

use crate::bench::{Sharing, Workload};
use rcc_common::addr::Addr;
use rcc_common::ids::WorkgroupId;
use rcc_core::msg::AtomicOp;
use rcc_gpu::op::{MemOp, WarpProgram};
use std::fmt;

/// A parse failure, with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

fn err(line: usize, message: impl Into<String>) -> ParseTraceError {
    ParseTraceError {
        line,
        message: message.into(),
    }
}

fn parse_u64(s: &str, line: usize, what: &str) -> Result<u64, ParseTraceError> {
    let parsed = if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    parsed.map_err(|_| err(line, format!("bad {what}: {s:?}")))
}

fn parse_addr(s: &str, line: usize) -> Result<rcc_common::addr::WordAddr, ParseTraceError> {
    Ok(Addr(parse_u64(s, line, "address")?).word())
}

/// Parses the trace text into a workload for a machine with `num_cores`
/// cores. Warps may appear in any order; missing warps run nothing.
///
/// # Errors
///
/// Returns a [`ParseTraceError`] naming the offending line on any
/// malformed input (unknown opcode, bad number, op outside a warp,
/// out-of-range core).
pub fn parse_trace(text: &str, num_cores: usize) -> Result<Workload, ParseTraceError> {
    let mut programs: Vec<Vec<WarpProgram>> = vec![Vec::new(); num_cores];
    let mut current: Option<(usize, usize)> = None;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens[0] {
            "warp" => {
                if tokens.len() < 3 {
                    return Err(err(line_no, "expected: warp <core> <warp> [wg=<id>]"));
                }
                let core = parse_u64(tokens[1], line_no, "core")? as usize;
                let warp = parse_u64(tokens[2], line_no, "warp")? as usize;
                if core >= num_cores {
                    return Err(err(line_no, format!("core {core} out of range")));
                }
                let wg = tokens
                    .get(3)
                    .and_then(|t| t.strip_prefix("wg="))
                    .map(|s| parse_u64(s, line_no, "workgroup"))
                    .transpose()?
                    .unwrap_or(core as u64) as usize;
                let progs = &mut programs[core];
                while progs.len() <= warp {
                    progs.push(WarpProgram::new(WorkgroupId(wg), Vec::new()));
                }
                progs[warp].workgroup = WorkgroupId(wg);
                current = Some((core, warp));
            }
            _ => {
                let Some((core, warp)) = current else {
                    return Err(err(line_no, "operation before any `warp` header"));
                };
                let memop = parse_op(&tokens, line_no)?;
                programs[core][warp].ops.push(memop);
            }
        }
    }

    Ok(Workload {
        name: "custom",
        category: Sharing::InterWorkgroup,
        programs,
        warps_per_workgroup: 1,
    })
}

/// Parses one already-tokenized op line (everything after a `warp`
/// header) into a [`MemOp`]. The shared op vocabulary of the text trace
/// formats — `rcc-trace`'s text form delegates here so the two dialects
/// can never drift.
///
/// # Errors
///
/// Returns a [`ParseTraceError`] naming `line_no` on an unknown opcode
/// or malformed operand.
pub fn parse_op(tokens: &[&str], line_no: usize) -> Result<MemOp, ParseTraceError> {
    Ok(match tokens[0] {
        "ld" => MemOp::Load(parse_addr(
            tokens
                .get(1)
                .ok_or_else(|| err(line_no, "ld needs an address"))?,
            line_no,
        )?),
        "st" => {
            let [addr, value] = tokens
                .get(1..3)
                .and_then(|s| <[&str; 2]>::try_from(s).ok())
                .ok_or_else(|| err(line_no, "st needs an address and a value"))?;
            MemOp::Store(
                parse_addr(addr, line_no)?,
                parse_u64(value, line_no, "value")?,
            )
        }
        "at" => {
            let addr = parse_addr(
                tokens
                    .get(1)
                    .ok_or_else(|| err(line_no, "at needs an address"))?,
                line_no,
            )?;
            let op = match tokens.get(2).copied() {
                Some("add") => AtomicOp::Add(parse_u64(
                    tokens
                        .get(3)
                        .ok_or_else(|| err(line_no, "add needs an operand"))?,
                    line_no,
                    "operand",
                )?),
                Some("exch") => AtomicOp::Exch(parse_u64(
                    tokens
                        .get(3)
                        .ok_or_else(|| err(line_no, "exch needs an operand"))?,
                    line_no,
                    "operand",
                )?),
                Some("cas") => {
                    let [e, n] = tokens
                        .get(3..5)
                        .and_then(|s| <[&str; 2]>::try_from(s).ok())
                        .ok_or_else(|| err(line_no, "cas needs expect and new"))?;
                    AtomicOp::Cas {
                        expect: parse_u64(e, line_no, "expect")?,
                        new: parse_u64(n, line_no, "new")?,
                    }
                }
                Some("read") => AtomicOp::Read,
                other => {
                    return Err(err(
                        line_no,
                        format!("unknown atomic {other:?} (add|exch|cas|read)"),
                    ))
                }
            };
            MemOp::Atomic(addr, op)
        }
        "fence" => MemOp::Fence,
        "compute" => MemOp::Compute(parse_u64(
            tokens
                .get(1)
                .ok_or_else(|| err(line_no, "compute needs cycles"))?,
            line_no,
            "cycles",
        )? as u32),
        "lock" => MemOp::Lock(parse_addr(
            tokens
                .get(1)
                .ok_or_else(|| err(line_no, "lock needs an address"))?,
            line_no,
        )?),
        "unlock" => MemOp::Unlock(parse_addr(
            tokens
                .get(1)
                .ok_or_else(|| err(line_no, "unlock needs an address"))?,
            line_no,
        )?),
        "barrier" => {
            let [addr, members] = tokens
                .get(1..3)
                .and_then(|s| <[&str; 2]>::try_from(s).ok())
                .ok_or_else(|| err(line_no, "barrier needs an address and member count"))?;
            MemOp::Barrier {
                word: parse_addr(addr, line_no)?,
                members: parse_u64(members, line_no, "members")?,
            }
        }
        "wait" => MemOp::LocalWait {
            epoch: parse_u64(
                tokens
                    .get(1)
                    .ok_or_else(|| err(line_no, "wait needs an epoch"))?,
                line_no,
                "epoch",
            )?,
        },
        "until" => MemOp::WaitUntil(parse_u64(
            tokens
                .get(1)
                .ok_or_else(|| err(line_no, "until needs a cycle"))?,
            line_no,
            "cycle",
        )?),
        other => return Err(err(line_no, format!("unknown operation {other:?}"))),
    })
}

/// Renders one op in the text vocabulary [`parse_op`] accepts (no
/// leading indentation).
pub fn format_op(op: &MemOp) -> String {
    match op {
        MemOp::Load(a) => format!("ld {:#x}", a.base().0),
        MemOp::Store(a, v) => format!("st {:#x} {v}", a.base().0),
        MemOp::Atomic(a, AtomicOp::Add(v)) => format!("at {:#x} add {v}", a.base().0),
        MemOp::Atomic(a, AtomicOp::Exch(v)) => format!("at {:#x} exch {v}", a.base().0),
        MemOp::Atomic(a, AtomicOp::Cas { expect, new }) => {
            format!("at {:#x} cas {expect} {new}", a.base().0)
        }
        MemOp::Atomic(a, AtomicOp::Read) => format!("at {:#x} read", a.base().0),
        MemOp::Fence => "fence".to_string(),
        MemOp::Compute(c) => format!("compute {c}"),
        MemOp::Lock(a) => format!("lock {:#x}", a.base().0),
        MemOp::Unlock(a) => format!("unlock {:#x}", a.base().0),
        MemOp::Barrier { word, members } => format!("barrier {:#x} {members}", word.base().0),
        MemOp::LocalWait { epoch } => format!("wait {epoch}"),
        MemOp::WaitUntil(t) => format!("until {t}"),
    }
}

/// Renders a workload back into the trace format (round-trips through
/// [`parse_trace`]).
pub fn to_trace(workload: &Workload) -> String {
    let mut out = String::new();
    for (core, warps) in workload.programs.iter().enumerate() {
        for (warp, p) in warps.iter().enumerate() {
            if p.ops.is_empty() {
                continue;
            }
            out.push_str(&format!("warp {core} {warp} wg={}\n", p.workgroup.index()));
            for op in &p.ops {
                out.push_str("  ");
                out.push_str(&format_op(op));
                out.push('\n');
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcc_common::addr::LineAddr;

    #[test]
    fn parses_every_opcode() {
        let text = "\
# a comment
warp 0 0 wg=3
  ld 0x100
  st 0x140 42
  at 0x180 add 3
  at 0x180 cas 0 1
  at 0x180 exch 7
  at 0x180 read
  fence
  compute 20
  lock 0x1c0
  unlock 0x1c0
  barrier 0x200 4
  wait 1
  until 500
";
        let wl = parse_trace(text, 2).unwrap();
        let p = &wl.programs[0][0];
        assert_eq!(p.ops.len(), 13);
        assert_eq!(p.ops[12], MemOp::WaitUntil(500));
        assert_eq!(p.workgroup.index(), 3);
        assert_eq!(p.ops[0], MemOp::Load(LineAddr(2).word(0)));
        assert_eq!(p.ops[1], MemOp::Store(LineAddr(2).word(16), 42));
        assert!(matches!(p.ops[10], MemOp::Barrier { members: 4, .. }));
    }

    #[test]
    fn round_trips() {
        let text = "warp 1 2 wg=5\n  st 0x80 9\n  fence\n  until 40\n  at 0x100 cas 1 2\n";
        let wl = parse_trace(text, 4).unwrap();
        let again = parse_trace(&to_trace(&wl), 4).unwrap();
        assert_eq!(
            format!("{:?}", wl.programs),
            format!("{:?}", again.programs)
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_trace("warp 0 0\n  ld\n", 1).unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse_trace("ld 0x0\n", 1).unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("before any"));
        let e = parse_trace("warp 9 0\n", 2).unwrap_err();
        assert!(e.message.contains("out of range"));
        let e = parse_trace("warp 0 0\n  at 0x0 nand 1\n", 1).unwrap_err();
        assert!(e.message.contains("unknown atomic"));
    }

    #[test]
    fn sparse_warps_are_padded() {
        let wl = parse_trace("warp 0 2 wg=0\n  ld 0x0\n", 1).unwrap();
        assert_eq!(wl.programs[0].len(), 3);
        assert!(wl.programs[0][0].is_empty());
        assert!(wl.programs[0][1].is_empty());
        assert_eq!(wl.programs[0][2].ops.len(), 1);
    }

    #[test]
    fn parsed_trace_runs_end_to_end() {
        // mp through the custom format, run under RCC.
        let text = "\
warp 0 0 wg=0
  st 0x0 1
  st 0x80 1
warp 1 0 wg=1
  ld 0x80
  ld 0x0
";
        let wl = parse_trace(text, 4).unwrap();
        assert_eq!(wl.static_mem_ops(), 4);
    }
}
