//! Address-space layout helper: carves the simulated memory into named,
//! non-overlapping line-granular regions.

use rcc_common::addr::{LineAddr, WordAddr, WORDS_PER_LINE};

/// A contiguous region of cache lines.
#[derive(Debug, Clone, Copy)]
pub struct Region {
    base: u64,
    lines: u64,
}

impl Region {
    /// Number of lines.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// The `i`-th line (wrapping within the region).
    pub fn line(&self, i: u64) -> LineAddr {
        LineAddr(self.base + i % self.lines)
    }

    /// Word `w` of the `i`-th line (both wrapping).
    pub fn word(&self, i: u64, w: u64) -> WordAddr {
        self.line(i).word((w % WORDS_PER_LINE as u64) as usize)
    }

    /// The `i`-th word of the region viewed as a flat word array.
    pub fn flat_word(&self, i: u64) -> WordAddr {
        let words = self.lines * WORDS_PER_LINE as u64;
        let i = i % words;
        self.line(i / WORDS_PER_LINE as u64)
            .word((i % WORDS_PER_LINE as u64) as usize)
    }

    /// Splits off a per-owner sub-region: `count` equal chunks.
    ///
    /// # Panics
    ///
    /// Panics if the region has fewer lines than `count`.
    pub fn chunk(&self, index: usize, count: usize) -> Region {
        assert!(self.lines >= count as u64, "region too small to chunk");
        let per = self.lines / count as u64;
        Region {
            base: self.base + per * index as u64,
            lines: per,
        }
    }
}

/// Bump allocator of address-space regions.
#[derive(Debug, Default)]
pub struct AddrSpace {
    next_line: u64,
}

impl AddrSpace {
    /// Creates an empty address space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh region of `lines` cache lines.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is zero.
    pub fn region(&mut self, lines: u64) -> Region {
        assert!(lines > 0, "regions must be non-empty");
        let base = self.next_line;
        self.next_line += lines;
        Region { base, lines }
    }

    /// Total lines allocated.
    pub fn allocated_lines(&self) -> u64 {
        self.next_line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        let mut sp = AddrSpace::new();
        let a = sp.region(10);
        let b = sp.region(5);
        assert_eq!(a.line(0), LineAddr(0));
        assert_eq!(a.line(9), LineAddr(9));
        assert_eq!(b.line(0), LineAddr(10));
        assert_eq!(sp.allocated_lines(), 15);
    }

    #[test]
    fn indices_wrap() {
        let mut sp = AddrSpace::new();
        let a = sp.region(4);
        assert_eq!(a.line(4), a.line(0));
        assert_eq!(a.word(1, 32), a.word(1, 0));
    }

    #[test]
    fn flat_words_cover_region() {
        let mut sp = AddrSpace::new();
        let a = sp.region(2);
        let w0 = a.flat_word(0);
        let w32 = a.flat_word(32);
        assert_eq!(w0.line(), a.line(0));
        assert_eq!(w32.line(), a.line(1));
        assert_eq!(a.flat_word(64), w0, "wraps after 2 lines of words");
    }

    #[test]
    fn chunks_partition() {
        let mut sp = AddrSpace::new();
        let a = sp.region(16);
        let c0 = a.chunk(0, 4);
        let c3 = a.chunk(3, 4);
        assert_eq!(c0.lines(), 4);
        assert_eq!(c0.line(0), LineAddr(0));
        assert_eq!(c3.line(0), LineAddr(12));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_region_panics() {
        AddrSpace::new().region(0);
    }
}
