#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Synthetic workload generators reproducing the sharing patterns of the
//! paper's twelve benchmarks (Table IV), plus consistency litmus tests.
//!
//! The paper's evaluation discriminates on *communication pattern*, not on
//! algorithmic detail: six benchmarks share read-write data **across**
//! workgroups (BH, BFS, CL, DLB, STN, VPR — these exercise inter-core
//! coherence) and six share only **within** a workgroup (HSP, KMN, LPS,
//! NDL, SR, LUD — these run correctly without coherence and quantify the
//! overhead of always-on coherence). Each generator reproduces its
//! benchmark's salient behaviour — work-stealing queues with locks and
//! rare steals for `dlb`, a falsely-shared frontier mask for `bfs`,
//! neighbour halos plus global fast barriers for `stn`, tile-local
//! streaming for the intra-workgroup six — with sizes parameterized by
//! the machine configuration and everything deterministic from a seed.
//!
//! # Example
//!
//! ```
//! use rcc_common::GpuConfig;
//! use rcc_workloads::{Benchmark, Scale};
//!
//! let cfg = GpuConfig::small();
//! let wl = Benchmark::Dlb.generate(&cfg, &Scale::quick(), 42);
//! assert_eq!(wl.programs.len(), cfg.num_cores);
//! assert!(wl.category.is_inter_workgroup());
//! ```

pub mod bench;
pub mod custom;
pub mod litmus;
pub mod space;

pub use bench::{Benchmark, Scale, Sharing, Workload};
