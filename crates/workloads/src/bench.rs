//! The twelve benchmark generators (Table IV).

use crate::space::{AddrSpace, Region};
use rcc_common::addr::WORDS_PER_LINE;
use rcc_common::config::GpuConfig;
use rcc_common::ids::WorkgroupId;
use rcc_common::rng::Pcg32;
use rcc_core::msg::AtomicOp;
use rcc_gpu::op::{MemOp, WarpProgram};

/// Communication pattern taxonomy (Table IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sharing {
    /// Read-write data crosses workgroup (and therefore core) boundaries:
    /// the workload relies on inter-core coherence.
    InterWorkgroup,
    /// Read-write sharing stays within a workgroup: correct without
    /// coherence; measures the cost of always-on coherence.
    IntraWorkgroup,
}

impl Sharing {
    /// Whether this is the inter-workgroup category.
    pub fn is_inter_workgroup(self) -> bool {
        self == Sharing::InterWorkgroup
    }
}

/// Workload sizing knobs.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Warps instantiated per core (≤ the machine's warp contexts).
    pub warps_per_core: usize,
    /// Warps per workgroup.
    pub warps_per_workgroup: usize,
    /// Main-loop iterations per warp.
    pub iters: usize,
}

impl Scale {
    /// Small configuration for tests.
    pub fn quick() -> Self {
        Scale {
            warps_per_core: 4,
            warps_per_workgroup: 2,
            iters: 10,
        }
    }

    /// Default evaluation size (keeps full-machine runs in seconds).
    pub fn standard() -> Self {
        Scale {
            warps_per_core: 16,
            warps_per_workgroup: 4,
            iters: 32,
        }
    }

    /// Heavyweight: every warp context busy, longer loops.
    pub fn full() -> Self {
        Scale {
            warps_per_core: 48,
            warps_per_workgroup: 8,
            iters: 48,
        }
    }
}

/// A generated workload: one program per (core, warp).
#[derive(Debug, Clone)]
pub struct Workload {
    /// Benchmark name (lower case, as in the paper's figures).
    pub name: &'static str,
    /// Sharing category.
    pub category: Sharing,
    /// `programs[core][warp]`.
    pub programs: Vec<Vec<WarpProgram>>,
    /// Warps per workgroup used when generating.
    pub warps_per_workgroup: usize,
}

impl Workload {
    /// Total memory operations in the static programs (lock retries and
    /// barrier polls add dynamic operations on top).
    pub fn static_mem_ops(&self) -> usize {
        self.programs
            .iter()
            .flatten()
            .map(WarpProgram::memory_ops)
            .sum()
    }
}

/// The benchmarks of Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Benchmark {
    Bh,
    Bfs,
    Cl,
    Dlb,
    Stn,
    Vpr,
    Hsp,
    Kmn,
    Lps,
    Ndl,
    Sr,
    Lud,
}

impl Benchmark {
    /// All twelve benchmarks in the paper's presentation order.
    pub const ALL: [Benchmark; 12] = [
        Benchmark::Bh,
        Benchmark::Bfs,
        Benchmark::Cl,
        Benchmark::Dlb,
        Benchmark::Stn,
        Benchmark::Vpr,
        Benchmark::Hsp,
        Benchmark::Kmn,
        Benchmark::Lps,
        Benchmark::Ndl,
        Benchmark::Sr,
        Benchmark::Lud,
    ];

    /// The six inter-workgroup benchmarks.
    pub fn inter_workgroup() -> Vec<Benchmark> {
        Benchmark::ALL
            .into_iter()
            .filter(|b| b.category().is_inter_workgroup())
            .collect()
    }

    /// The six intra-workgroup benchmarks.
    pub fn intra_workgroup() -> Vec<Benchmark> {
        Benchmark::ALL
            .into_iter()
            .filter(|b| !b.category().is_inter_workgroup())
            .collect()
    }

    /// Lower-case name used in figures.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Bh => "bh",
            Benchmark::Bfs => "bfs",
            Benchmark::Cl => "cl",
            Benchmark::Dlb => "dlb",
            Benchmark::Stn => "stn",
            Benchmark::Vpr => "vpr",
            Benchmark::Hsp => "hsp",
            Benchmark::Kmn => "kmn",
            Benchmark::Lps => "lps",
            Benchmark::Ndl => "ndl",
            Benchmark::Sr => "sr",
            Benchmark::Lud => "lud",
        }
    }

    /// Sharing category (Table IV's two groups).
    pub fn category(self) -> Sharing {
        match self {
            Benchmark::Bh
            | Benchmark::Bfs
            | Benchmark::Cl
            | Benchmark::Dlb
            | Benchmark::Stn
            | Benchmark::Vpr => Sharing::InterWorkgroup,
            _ => Sharing::IntraWorkgroup,
        }
    }

    /// Generates the workload for a machine configuration.
    pub fn generate(self, cfg: &GpuConfig, scale: &Scale, seed: u64) -> Workload {
        let ctx = Ctx::new(self, cfg, scale, seed);
        let programs = match self {
            Benchmark::Bh => gen_bh(ctx),
            Benchmark::Bfs => gen_bfs(ctx),
            Benchmark::Cl => gen_cl(ctx),
            Benchmark::Dlb => gen_dlb(ctx),
            Benchmark::Stn => gen_stn(ctx),
            Benchmark::Vpr => gen_vpr(ctx),
            Benchmark::Hsp => gen_tile(ctx, TileFlavor::Hsp),
            Benchmark::Kmn => gen_kmn(ctx),
            Benchmark::Lps => gen_tile(ctx, TileFlavor::Lps),
            Benchmark::Ndl => gen_ndl(ctx),
            Benchmark::Sr => gen_tile(ctx, TileFlavor::Sr),
            Benchmark::Lud => gen_lud(ctx),
        };
        Workload {
            name: self.name(),
            category: self.category(),
            programs,
            warps_per_workgroup: scale.warps_per_workgroup,
        }
    }
}

/// Generation context shared by all benchmarks.
struct Ctx {
    cores: usize,
    wpc: usize,
    wpw: usize,
    iters: usize,
    l2_lines: u64,
    rng: Pcg32,
}

impl Ctx {
    fn new(bench: Benchmark, cfg: &GpuConfig, scale: &Scale, seed: u64) -> Self {
        let wpc = scale.warps_per_core.min(cfg.warps_per_core);
        Ctx {
            cores: cfg.num_cores,
            wpc,
            wpw: scale.warps_per_workgroup.min(wpc).max(1),
            iters: scale.iters.max(1),
            l2_lines: (cfg.l2.num_partitions * cfg.l2.partition.num_lines()) as u64,
            rng: Pcg32::new(seed, bench as u64 + 1),
        }
    }

    fn wgs_per_core(&self) -> usize {
        self.wpc.div_ceil(self.wpw)
    }

    fn total_wgs(&self) -> usize {
        self.cores * self.wgs_per_core()
    }

    /// Global workgroup id of (core, warp).
    fn wg_of(&self, core: usize, warp: usize) -> usize {
        core * self.wgs_per_core() + warp / self.wpw
    }

    fn is_lead(&self, warp: usize) -> bool {
        warp.is_multiple_of(self.wpw)
    }

    /// A unique, non-zero store token.
    fn token(&self, core: usize, warp: usize, i: usize) -> u64 {
        1 + ((core as u64) << 40) + ((warp as u64) << 28) + i as u64
    }

    /// Builds the [core][warp] program matrix from a per-warp closure.
    fn build(
        &mut self,
        mut f: impl FnMut(&mut Ctx, usize, usize) -> Vec<MemOp>,
    ) -> Vec<Vec<WarpProgram>> {
        let (cores, wpc) = (self.cores, self.wpc);
        (0..cores)
            .map(|c| {
                (0..wpc)
                    .map(|w| {
                        let wg = WorkgroupId(self.wg_of(c, w));
                        let mut ops = vec![MemOp::Compute(1 + (self.rng.below(16)) as u32)];
                        ops.extend(f(self, c, w));
                        WarpProgram::new(wg, ops)
                    })
                    .collect()
            })
            .collect()
    }
}

// ---------------------------------------------------------------------
// Inter-workgroup benchmarks.
// ---------------------------------------------------------------------

/// Barnes-Hut: irregular, read-mostly traversal of a shared octree. The
/// top of the tree is a small hot region every core caches; centre-of-mass
/// updates write into those same hot lines, so every store contends with
/// many sharers (invalidations for MESI, lease waits for TC-Strong,
/// instant logical advances for RCC).
fn gen_bh(mut ctx: Ctx) -> Vec<Vec<WarpProgram>> {
    let mut sp = AddrSpace::new();
    let hot = sp.region(48);
    let cold = sp.region(2 * ctx.l2_lines);
    ctx.build(|ctx, c, w| {
        let mut ops = Vec::new();
        for i in 0..ctx.iters {
            // Tree walk: top levels (hot, shared by everyone) then leaves.
            for _ in 0..3 {
                ops.push(MemOp::Load(
                    hot.word(ctx.rng.below(hot.lines()), ctx.rng.below(32)),
                ));
            }
            for _ in 0..2 {
                ops.push(MemOp::Load(
                    cold.word(ctx.rng.below(cold.lines()), ctx.rng.below(32)),
                ));
            }
            ops.push(MemOp::Compute(10 + ctx.rng.below(20) as u32));
            // Centre-of-mass update into the hot region.
            if ctx.rng.chance(0.3) {
                ops.push(MemOp::Store(
                    hot.word(ctx.rng.below(hot.lines()), ctx.rng.below(32)),
                    ctx.token(c, w, i),
                ));
                ops.push(MemOp::Fence);
            }
        }
        ops
    })
}

/// BFS: all threads share a frontier "mask" vector; different cores write
/// different words of the same lines (heavy false sharing at block
/// granularity — the case where TC-Weak beats RCC, Section IV-C).
fn gen_bfs(mut ctx: Ctx) -> Vec<Vec<WarpProgram>> {
    let mut sp = AddrSpace::new();
    let mask = sp.region((ctx.l2_lines / 8).max(16));
    let adj = sp.region(4 * ctx.l2_lines);
    let per_core_adj: Vec<Region> = (0..ctx.cores).map(|c| adj.chunk(c, ctx.cores)).collect();
    ctx.build(|ctx, c, w| {
        let my_adj = per_core_adj[c];
        let my_word = ((c * ctx.wpc + w) % WORDS_PER_LINE) as u64;
        let mut ops = Vec::new();
        let mut stream = ctx.rng.below(my_adj.lines());
        for i in 0..ctx.iters {
            // Check the frontier mask (shared, read).
            ops.push(MemOp::Load(
                mask.word(ctx.rng.below(mask.lines()), ctx.rng.below(32)),
            ));
            // Stream the adjacency list (private).
            for _ in 0..2 {
                stream += 1;
                ops.push(MemOp::Load(my_adj.word(stream, stream)));
            }
            ops.push(MemOp::Compute(6 + ctx.rng.below(10) as u32));
            // Mark next-level nodes: scattered writes into the shared
            // mask, each core touching its own word of a shared line.
            ops.push(MemOp::Store(
                mask.word(ctx.rng.below(mask.lines()), my_word),
                ctx.token(c, w, i),
            ));
        }
        ops.push(MemOp::Fence);
        ops
    })
}

/// Cloth physics: each warp owns grid lines and reads its neighbours'
/// edges each phase; neighbours cross core boundaries.
fn gen_cl(mut ctx: Ctx) -> Vec<Vec<WarpProgram>> {
    let mut sp = AddrSpace::new();
    let total_warps = (ctx.cores * ctx.wpc) as u64;
    let grid = sp.region(total_warps * 2);
    ctx.build(|ctx, c, w| {
        let me = (c * ctx.wpc + w) as u64;
        let left = (me + total_warps - 1) % total_warps;
        let right = (me + 1) % total_warps;
        let mut ops = Vec::new();
        for i in 0..ctx.iters {
            for k in 0..2 {
                ops.push(MemOp::Load(grid.word(me * 2 + k, ctx.rng.below(32))));
            }
            // Neighbour halo reads (inter-core at warp-block edges).
            ops.push(MemOp::Load(grid.word(left * 2 + 1, ctx.rng.below(32))));
            ops.push(MemOp::Load(grid.word(right * 2, ctx.rng.below(32))));
            ops.push(MemOp::Compute(12 + ctx.rng.below(12) as u32));
            ops.push(MemOp::Store(
                grid.word(me * 2, ctx.rng.below(32)),
                ctx.token(c, w, 2 * i),
            ));
            ops.push(MemOp::Store(
                grid.word(me * 2 + 1, ctx.rng.below(32)),
                ctx.token(c, w, 2 * i + 1),
            ));
            ops.push(MemOp::Fence);
        }
        ops
    })
}

/// Dynamic load balancing: per-workgroup work queues protected by spin
/// locks; finished schedulers steal from a random victim. Steals are
/// rare, so most lock traffic is core-local re-acquisition — the case
/// where RCC beats TC-Weak (fences stall TCW even when no sharing
/// happens, Section IV-C).
fn gen_dlb(mut ctx: Ctx) -> Vec<Vec<WarpProgram>> {
    let mut sp = AddrSpace::new();
    let queues = sp.region(ctx.total_wgs() as u64);
    let steal_chance = 0.05;
    ctx.build(|ctx, c, w| {
        let my_q = ctx.wg_of(c, w) as u64;
        let total = ctx.total_wgs() as u64;
        let mut ops = Vec::new();
        for i in 0..ctx.iters {
            // Scan other schedulers' queue sizes (cross-core reads of
            // lines their owners keep writing — these leases are what
            // TC-Weak's fences must wait out, and what MESI's stores must
            // invalidate; RCC's stores advance a logical clock instead).
            for _ in 0..2 {
                let other = ctx.rng.below(total);
                ops.push(MemOp::Load(queues.word(other, 1)));
            }
            let victim = if ctx.rng.chance(steal_chance) {
                ctx.rng.below(total)
            } else {
                my_q
            };
            let lock = queues.word(victim, 0);
            let head = queues.word(victim, 1);
            // Every queue access is fenced (work could be stolen at any
            // time): under TC-Weak each fence stalls until the GWCT of
            // the preceding atomic/store passes, even though actual
            // sharing is rare — the overhead RCC's logical time avoids.
            ops.push(MemOp::Lock(lock));
            ops.push(MemOp::Fence);
            ops.push(MemOp::Load(head));
            ops.push(MemOp::Store(head, ctx.token(c, w, i)));
            ops.push(MemOp::Fence);
            ops.push(MemOp::Unlock(lock));
            ops.push(MemOp::Fence);
            // Execute the claimed task.
            ops.push(MemOp::Compute(30 + ctx.rng.below(40) as u32));
        }
        ops
    })
}

/// Stencil with fast global barriers: halo reads from neighbouring
/// workgroups each phase, synchronized by an inter-workgroup barrier
/// (lead warps arrive + poll; siblings wait locally).
fn gen_stn(mut ctx: Ctx) -> Vec<Vec<WarpProgram>> {
    let mut sp = AddrSpace::new();
    let wgs = ctx.total_wgs() as u64;
    let tile_lines = 4u64;
    let buf_a = sp.region(wgs * tile_lines);
    let buf_b = sp.region(wgs * tile_lines);
    let phases = (ctx.iters / 4).clamp(2, 12);
    let barriers = sp.region(phases as u64);
    let work_per_phase = (ctx.iters / phases).max(1);
    ctx.build(|ctx, c, w| {
        let wg = ctx.wg_of(c, w) as u64;
        let next_wg = (wg + 1) % wgs;
        let mut ops = Vec::new();
        for phase in 0..phases {
            // Double-buffered finite difference: read the previous
            // phase's buffer (own tile + neighbour halo), write the
            // other one, then cross the global fast barrier.
            let (src, dst) = if phase % 2 == 0 {
                (&buf_a, &buf_b)
            } else {
                (&buf_b, &buf_a)
            };
            for _ in 0..work_per_phase {
                for k in 0..3 {
                    ops.push(MemOp::Load(
                        src.word(wg * tile_lines + k, ctx.rng.below(32)),
                    ));
                }
                // Halo row from the neighbouring workgroup.
                ops.push(MemOp::Load(
                    src.word(next_wg * tile_lines, ctx.rng.below(32)),
                ));
                ops.push(MemOp::Compute(8 + ctx.rng.below(8) as u32));
                ops.push(MemOp::Store(
                    dst.word(
                        wg * tile_lines + ctx.rng.below(tile_lines),
                        ctx.rng.below(32),
                    ),
                    ctx.token(c, w, phase),
                ));
            }
            if ctx.is_lead(w) {
                ops.push(MemOp::Barrier {
                    word: barriers.word(phase as u64, 0),
                    members: wgs,
                });
            } else {
                ops.push(MemOp::LocalWait {
                    epoch: phase as u64 + 1,
                });
            }
        }
        ops
    })
}

/// Place & route: random reads over a large routing grid plus contended
/// updates to a small set of hot congestion counters every core also
/// caches for reading.
fn gen_vpr(mut ctx: Ctx) -> Vec<Vec<WarpProgram>> {
    let mut sp = AddrSpace::new();
    let grid = sp.region(2 * ctx.l2_lines);
    let hot = sp.region(32);
    ctx.build(|ctx, c, w| {
        let mut ops = Vec::new();
        for i in 0..ctx.iters {
            for _ in 0..3 {
                ops.push(MemOp::Load(
                    grid.word(ctx.rng.below(grid.lines()), ctx.rng.below(32)),
                ));
            }
            // Congestion lookups: hot shared lines.
            ops.push(MemOp::Load(
                hot.word(ctx.rng.below(hot.lines()), ctx.rng.below(32)),
            ));
            ops.push(MemOp::Compute(15 + ctx.rng.below(20) as u32));
            if ctx.rng.chance(0.35) {
                ops.push(MemOp::Store(
                    hot.word(ctx.rng.below(hot.lines()), ctx.rng.below(32)),
                    ctx.token(c, w, i),
                ));
            }
            if ctx.rng.chance(0.15) {
                ops.push(MemOp::Store(
                    grid.word(ctx.rng.below(grid.lines()), ctx.rng.below(32)),
                    ctx.token(c, w, i),
                ));
            }
            if ctx.rng.chance(0.1) {
                ops.push(MemOp::Atomic(
                    hot.word(ctx.rng.below(hot.lines()), ctx.rng.below(32)),
                    AtomicOp::Add(1),
                ));
                ops.push(MemOp::Fence);
            }
        }
        ops
    })
}

// ---------------------------------------------------------------------
// Intra-workgroup benchmarks: all data within the workgroup's chunk.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum TileFlavor {
    /// hotspot: 2D 5-point stencil, one store per point.
    Hsp,
    /// 3D Laplace: more loads per point.
    Lps,
    /// speckle reduction: streaming loads, two stores.
    Sr,
}

/// Shared skeleton for the tile-local stencil benchmarks. The kernels
/// are *double-buffered*, as real stencils are: each phase reads the
/// previous phase's buffer and writes the other one, so stores never hit
/// freshly-leased lines (logical clocks barely advance under RCC — the
/// paper's "negligible expiration rate" for intra workloads). Working
/// sets exceed the L1 and press on the L2, so MESI pays recall
/// invalidations on L2 evictions while the timestamp protocols
/// self-invalidate for free.
fn gen_tile(mut ctx: Ctx, flavor: TileFlavor) -> Vec<Vec<WarpProgram>> {
    let mut sp = AddrSpace::new();
    let wgs = ctx.total_wgs();
    let rows_per_warp = 24u64;
    let tile_lines = rows_per_warp * ctx.wpw as u64 + 1;
    let buf_a = sp.region(tile_lines * wgs as u64);
    let buf_b = sp.region(tile_lines * wgs as u64);
    let per_wg_a: Vec<Region> = (0..wgs).map(|g| buf_a.chunk(g, wgs)).collect();
    let per_wg_b: Vec<Region> = (0..wgs).map(|g| buf_b.chunk(g, wgs)).collect();
    ctx.build(|ctx, c, w| {
        let wg = ctx.wg_of(c, w);
        let (a, b) = (per_wg_a[wg], per_wg_b[wg]);
        let lane = (w % ctx.wpw) as u64;
        let my_base = 1 + lane * rows_per_warp;
        let (loads, stores, compute) = match flavor {
            TileFlavor::Hsp => (4u64, 1u64, 10u32),
            TileFlavor::Lps => (6, 1, 14),
            TileFlavor::Sr => (3, 2, 18),
        };
        let mut ops = Vec::new();
        for i in 0..ctx.iters {
            let phase = (i as u64) / rows_per_warp;
            let (src, dst) = if phase.is_multiple_of(2) {
                (a, b)
            } else {
                (b, a)
            };
            // Streaming row window: consecutive iterations read fresh
            // rows (GPU stencils stream; per-thread L1 reuse is scarce).
            let row0 = (i as u64 * loads) % rows_per_warp;
            let row = my_base + row0;
            // Shared read-only parameters (line 0 of buffer A).
            ops.push(MemOp::Load(a.word(0, ctx.rng.below(32))));
            // Stencil reads from the source buffer.
            for k in 0..loads {
                ops.push(MemOp::Load(
                    src.word(my_base + (row0 + k) % rows_per_warp, k),
                ));
            }
            // Halo read from the neighbouring warp's source rows.
            if ctx.rng.chance(0.2) {
                let sib = (lane + 1) % ctx.wpw as u64;
                ops.push(MemOp::Load(
                    src.word(1 + sib * rows_per_warp, ctx.rng.below(32)),
                ));
            }
            ops.push(MemOp::Compute(compute + ctx.rng.below(8) as u32));
            // Results go to the destination buffer.
            for s in 0..stores {
                ops.push(MemOp::Store(
                    dst.word(row, s),
                    ctx.token(c, w, i * 4 + s as usize),
                ));
            }
        }
        ops
    })
}

/// k-means: streaming point reads plus atomic accumulation into
/// workgroup-local centroid counters.
fn gen_kmn(mut ctx: Ctx) -> Vec<Vec<WarpProgram>> {
    let mut sp = AddrSpace::new();
    let wgs = ctx.total_wgs();
    let points = sp.region(4 * ctx.l2_lines);
    let per_wg_points: Vec<Region> = (0..wgs).map(|g| points.chunk(g, wgs)).collect();
    let centroids = sp.region(wgs as u64);
    ctx.build(|ctx, c, w| {
        let wg = ctx.wg_of(c, w);
        let my_points = per_wg_points[wg];
        let mut ops = Vec::new();
        let mut idx = ctx.rng.below(my_points.lines());
        for i in 0..ctx.iters {
            for _ in 0..3 {
                idx += 1;
                ops.push(MemOp::Load(my_points.word(idx, idx)));
            }
            ops.push(MemOp::Compute(12 + ctx.rng.below(10) as u32));
            // Accumulate into this workgroup's centroid line (atomics
            // contended only within the workgroup).
            ops.push(MemOp::Atomic(
                centroids.word(wg as u64, ctx.rng.below(8)),
                AtomicOp::Add(1),
            ));
            ops.push(MemOp::Store(my_points.word(idx, 31), ctx.token(c, w, i)));
        }
        ops
    })
}

/// Needleman-Wunsch: diagonal wavefront over the workgroup's tile with an
/// intra-workgroup barrier between diagonals.
fn gen_ndl(mut ctx: Ctx) -> Vec<Vec<WarpProgram>> {
    let mut sp = AddrSpace::new();
    let wgs = ctx.total_wgs();
    let tile_lines = ((2 * ctx.l2_lines) / wgs as u64).max(8);
    let tiles = sp.region(tile_lines * wgs as u64);
    let per_wg: Vec<Region> = (0..wgs).map(|g| tiles.chunk(g, wgs)).collect();
    // One barrier word per workgroup (lead warp only; members = 1).
    let bars = sp.region(wgs as u64);
    let diagonals = (ctx.iters / 2).clamp(2, 16);
    let work = (ctx.iters / diagonals).max(1);
    ctx.build(|ctx, c, w| {
        let wg = ctx.wg_of(c, w);
        let tile = per_wg[wg];
        let mut ops = Vec::new();
        let lane = (w % ctx.wpw) as u64;
        for d in 0..diagonals {
            for k in 0..work {
                // Previous diagonal: mostly my own cells, plus my
                // neighbour's edge cell (intra-workgroup sharing).
                ops.push(MemOp::Load(tile.word(d as u64, lane * 4 + k as u64)));
                if ctx.rng.chance(0.3) {
                    let sib = (lane + 1) % ctx.wpw as u64;
                    ops.push(MemOp::Load(tile.word(d as u64, sib * 4)));
                }
                ops.push(MemOp::Compute(6 + ctx.rng.below(6) as u32));
                // …produce this diagonal's cell.
                ops.push(MemOp::Store(
                    tile.word(d as u64 + 1, lane * 4 + k as u64),
                    ctx.token(c, w, d * 8 + k),
                ));
            }
            // __syncthreads between diagonals: lead warp marks the epoch,
            // siblings wait for it locally.
            if ctx.is_lead(w) {
                ops.push(MemOp::Barrier {
                    word: bars.word(wg as u64, (d % 32) as u64),
                    members: 1,
                });
            } else {
                ops.push(MemOp::LocalWait {
                    epoch: d as u64 + 1,
                });
            }
        }
        ops
    })
}

/// LU decomposition: every warp in a workgroup reads the shared pivot row
/// and updates its own rows.
fn gen_lud(mut ctx: Ctx) -> Vec<Vec<WarpProgram>> {
    let mut sp = AddrSpace::new();
    let wgs = ctx.total_wgs();
    let tile_lines = ((2 * ctx.l2_lines) / wgs as u64).max(8);
    let tiles = sp.region(tile_lines * wgs as u64);
    let per_wg: Vec<Region> = (0..wgs).map(|g| tiles.chunk(g, wgs)).collect();
    ctx.build(|ctx, c, w| {
        let tile = per_wg[ctx.wg_of(c, w)];
        let lane = (w % ctx.wpw) as u64;
        let rows_per_warp = (tile.lines() - 1) / ctx.wpw as u64;
        let my_base = 1 + lane * rows_per_warp.max(1);
        let mut ops = Vec::new();
        for i in 0..ctx.iters {
            // Pivot row: line 0, read by every warp in the workgroup
            // (intra-workgroup read sharing, written rarely by lane 0).
            ops.push(MemOp::Load(tile.word(0, ctx.rng.below(32))));
            let my_row = my_base + (i as u64 % rows_per_warp.max(1));
            ops.push(MemOp::Load(tile.word(my_row, (w % 32) as u64)));
            ops.push(MemOp::Compute(8 + ctx.rng.below(10) as u32));
            ops.push(MemOp::Store(
                tile.word(my_row, (w % 32) as u64),
                ctx.token(c, w, i),
            ));
            if lane == 0 && i % 8 == 7 {
                // New pivot published once per block step.
                ops.push(MemOp::Store(
                    tile.word(0, (i % 32) as u64),
                    ctx.token(c, w, i),
                ));
            }
        }
        ops
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcc_common::addr::LineAddr;
    use std::collections::HashSet;

    fn cfg() -> GpuConfig {
        GpuConfig::small()
    }

    #[test]
    fn taxonomy_matches_table_iv() {
        assert_eq!(Benchmark::inter_workgroup().len(), 6);
        assert_eq!(Benchmark::intra_workgroup().len(), 6);
        assert!(Benchmark::Dlb.category().is_inter_workgroup());
        assert!(!Benchmark::Hsp.category().is_inter_workgroup());
        let names: HashSet<_> = Benchmark::ALL.iter().map(|b| b.name()).collect();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn generation_is_deterministic() {
        for b in Benchmark::ALL {
            let a = b.generate(&cfg(), &Scale::quick(), 7);
            let b2 = b.generate(&cfg(), &Scale::quick(), 7);
            assert_eq!(format!("{:?}", a.programs), format!("{:?}", b2.programs));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Benchmark::Vpr.generate(&cfg(), &Scale::quick(), 1);
        let b = Benchmark::Vpr.generate(&cfg(), &Scale::quick(), 2);
        assert_ne!(format!("{:?}", a.programs), format!("{:?}", b.programs));
    }

    #[test]
    fn shapes_match_config() {
        for b in Benchmark::ALL {
            let wl = b.generate(&cfg(), &Scale::quick(), 3);
            assert_eq!(wl.programs.len(), cfg().num_cores, "{}", b.name());
            for core in &wl.programs {
                assert_eq!(core.len(), Scale::quick().warps_per_core);
                for p in core {
                    assert!(!p.is_empty());
                }
            }
            assert!(wl.static_mem_ops() > 0);
        }
    }

    /// Intra-workgroup benchmarks must never let two different cores
    /// touch the same cache line (except pure sync words, which they
    /// don't use across cores either).
    #[test]
    fn intra_benchmarks_have_no_cross_core_lines() {
        for b in Benchmark::intra_workgroup() {
            let wl = b.generate(&cfg(), &Scale::quick(), 11);
            let mut owner: std::collections::HashMap<LineAddr, usize> = Default::default();
            for (c, core) in wl.programs.iter().enumerate() {
                for p in core {
                    for op in &p.ops {
                        let addr = match op {
                            MemOp::Load(a) | MemOp::Store(a, _) | MemOp::Atomic(a, _) => Some(*a),
                            MemOp::Lock(a) | MemOp::Unlock(a) => Some(*a),
                            MemOp::Barrier { word, .. } => Some(*word),
                            _ => None,
                        };
                        if let Some(a) = addr {
                            let line = a.line();
                            let prev = owner.insert(line, c);
                            assert!(
                                prev.is_none() || prev == Some(c),
                                "{}: line {line} shared across cores {prev:?} and {c}",
                                b.name()
                            );
                        }
                    }
                }
            }
        }
    }

    /// Inter-workgroup benchmarks must actually share writable lines
    /// across cores.
    #[test]
    fn inter_benchmarks_share_lines_across_cores() {
        for b in Benchmark::inter_workgroup() {
            let wl = b.generate(&cfg(), &Scale::quick(), 11);
            let mut readers: std::collections::HashMap<LineAddr, HashSet<usize>> =
                Default::default();
            let mut writers: std::collections::HashMap<LineAddr, HashSet<usize>> =
                Default::default();
            for (c, core) in wl.programs.iter().enumerate() {
                for p in core {
                    for op in &p.ops {
                        match op {
                            MemOp::Load(a) => {
                                readers.entry(a.line()).or_default().insert(c);
                            }
                            MemOp::Store(a, _)
                            | MemOp::Atomic(a, _)
                            | MemOp::Lock(a)
                            | MemOp::Unlock(a) => {
                                writers.entry(a.line()).or_default().insert(c);
                            }
                            MemOp::Barrier { word, .. } => {
                                writers.entry(word.line()).or_default().insert(c);
                            }
                            _ => {}
                        }
                    }
                }
            }
            let cross = writers.iter().any(|(line, ws)| {
                let rs = readers.get(line).map_or(0, HashSet::len);
                ws.len() > 1 || (ws.len() == 1 && rs > 1)
            });
            assert!(cross, "{}: no cross-core read-write sharing", b.name());
        }
    }

    #[test]
    fn stn_barrier_membership_is_consistent() {
        let wl = Benchmark::Stn.generate(&cfg(), &Scale::quick(), 5);
        let c = cfg();
        let wgs = c.num_cores
            * Scale::quick()
                .warps_per_core
                .div_ceil(Scale::quick().warps_per_workgroup);
        let mut arrivals_per_word: std::collections::HashMap<_, u64> = Default::default();
        for core in &wl.programs {
            for p in core {
                for op in &p.ops {
                    if let MemOp::Barrier { word, members } = op {
                        assert_eq!(*members, wgs as u64);
                        *arrivals_per_word.entry(*word).or_default() += 1;
                    }
                }
            }
        }
        for (_, arrivals) in arrivals_per_word {
            assert_eq!(arrivals, wgs as u64, "every lead warp arrives exactly once");
        }
    }

    #[test]
    fn dlb_locks_are_balanced() {
        let wl = Benchmark::Dlb.generate(&cfg(), &Scale::quick(), 5);
        let mut locks = 0;
        let mut unlocks = 0;
        for core in &wl.programs {
            for p in core {
                for op in &p.ops {
                    match op {
                        MemOp::Lock(_) => locks += 1,
                        MemOp::Unlock(_) => unlocks += 1,
                        _ => {}
                    }
                }
            }
        }
        assert_eq!(locks, unlocks);
        assert!(locks > 0);
    }

    #[test]
    fn scale_bounds_respected() {
        let mut big = Scale::full();
        big.warps_per_core = 1000; // clamped to the machine
        let wl = Benchmark::Bh.generate(&cfg(), &big, 1);
        assert_eq!(wl.programs[0].len(), cfg().warps_per_core);
    }
}

#[cfg(test)]
mod structure_tests {
    use super::*;
    use rcc_common::addr::LineAddr;
    use std::collections::HashSet;

    fn cfg() -> GpuConfig {
        GpuConfig::small()
    }

    /// Double-buffered stencils must never store into a line they load in
    /// the same op window between two stores (the property that keeps RCC
    /// logical clocks nearly still on intra workloads).
    #[test]
    fn tile_benchmarks_never_store_into_concurrently_read_lines() {
        for b in [Benchmark::Hsp, Benchmark::Lps, Benchmark::Sr] {
            let wl = b.generate(&cfg(), &Scale::quick(), 3);
            for core in &wl.programs {
                for p in core {
                    let mut reads_since_store: HashSet<LineAddr> = HashSet::new();
                    for op in &p.ops {
                        match op {
                            MemOp::Load(a) => {
                                reads_since_store.insert(a.line());
                            }
                            MemOp::Store(a, _) => {
                                assert!(
                                    !reads_since_store.contains(&a.line()),
                                    "{}: store into a line read in the same phase window",
                                    b.name()
                                );
                                // A store marks a window boundary for its
                                // own destination only; reads persist.
                            }
                            _ => {}
                        }
                    }
                }
            }
        }
    }

    /// dlb's scan loads read other workgroups' queue lines — the
    /// cross-core read-write sharing TC-Weak's fences pay for.
    #[test]
    fn dlb_scans_cross_workgroups() {
        let wl = Benchmark::Dlb.generate(&cfg(), &Scale::quick(), 3);
        let mut own_queue_loads = 0usize;
        let mut foreign_queue_loads = 0usize;
        let wpw = Scale::quick().warps_per_workgroup;
        let wgs_per_core = Scale::quick().warps_per_core.div_ceil(wpw);
        for (c, core) in wl.programs.iter().enumerate() {
            for (w, p) in core.iter().enumerate() {
                let my_q = (c * wgs_per_core + w / wpw) as u64;
                for op in &p.ops {
                    if let MemOp::Load(a) = op {
                        if a.line().0 == my_q {
                            own_queue_loads += 1;
                        } else {
                            foreign_queue_loads += 1;
                        }
                    }
                }
            }
        }
        assert!(foreign_queue_loads > 0, "scans must cross workgroups");
        assert!(own_queue_loads > 0, "pops read the own queue");
    }

    /// Fences appear only where the paper's sources have them: in the
    /// inter-workgroup benchmarks.
    #[test]
    fn fences_only_in_inter_workgroup_benchmarks() {
        for b in Benchmark::ALL {
            let wl = b.generate(&cfg(), &Scale::quick(), 3);
            let has_fence = wl
                .programs
                .iter()
                .flatten()
                .flat_map(|p| &p.ops)
                .any(|o| matches!(o, MemOp::Fence));
            if b.category().is_inter_workgroup() {
                assert!(
                    has_fence || b == Benchmark::Stn,
                    "{}: inter benchmarks are fenced (stn synchronizes via barriers)",
                    b.name()
                );
            } else {
                assert!(!has_fence, "{}: intra benchmarks need no fences", b.name());
            }
        }
    }
}
