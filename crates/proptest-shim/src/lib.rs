//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest's API used by this workspace: the
//! [`proptest!`] macro (including `#![proptest_config(..)]`, `name in
//! strategy` and `name: Type` parameter forms), integer/float range
//! strategies, tuples, [`collection::vec`], [`prop_oneof!`], [`Just`],
//! `.prop_map(..)`, [`any`], and the `prop_assert*` macros.
//!
//! Semantics differ from real proptest in two deliberate ways:
//!
//! - cases are drawn from a deterministic per-test RNG (seeded from the
//!   test's module path, the case index, and optionally the
//!   `PROPTEST_SHIM_SEED` environment variable), so runs are reproducible
//!   without a persistence file — `proptest-regressions/` files are
//!   ignored;
//! - there is no shrinking: a failing case reports its generated inputs
//!   and seed so it can be replayed, but is not minimized.
//!
//! The number of cases per test defaults to 256 and can be lowered per
//! block with `ProptestConfig::with_cases(n)` or globally with the
//! `PROPTEST_CASES` environment variable.

#![forbid(unsafe_code)]

/// Deterministic splitmix64-based generator for test case inputs.
pub mod rng {
    /// The RNG handed to strategies.
    #[derive(Debug, Clone)]
    pub struct ShimRng {
        state: u64,
    }

    fn hash_str(s: &str) -> u64 {
        // FNV-1a, good enough to decorrelate test names.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    impl ShimRng {
        /// RNG for case `case` of test `name`.
        pub fn new(name: &str, case: u64) -> Self {
            let env_seed = std::env::var("PROPTEST_SHIM_SEED")
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(0);
            ShimRng {
                state: hash_str(name) ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ env_seed,
            }
        }

        /// Next 64 random bits (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            // Rejection-free multiply-shift is fine for test sampling.
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// The [`Strategy`] trait and combinators.
pub mod strategy {
    use crate::rng::ShimRng;

    /// A source of random values for one test parameter.
    pub trait Strategy {
        /// The type of value produced.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut ShimRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases this strategy (used by [`prop_oneof!`]).
        fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut ShimRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut ShimRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among type-erased strategies ([`prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// A union over `options`; must be non-empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut ShimRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut ShimRng) -> T {
            (**self).generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut ShimRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut ShimRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo + 1) as u64;
                    (lo + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut ShimRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:ident $idx:tt),+);)*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut ShimRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A 0);
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
        (A 0, B 1, C 2, D 3, E 4);
        (A 0, B 1, C 2, D 3, E 4, F 5);
    }
}

/// The [`Arbitrary`] trait behind [`any`].
pub mod arbitrary {
    use crate::rng::ShimRng;
    use crate::strategy::Strategy;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut ShimRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut ShimRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut ShimRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy over a type's whole domain.
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut ShimRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T` (proptest's `any::<T>()`).
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::rng::ShimRng;
    use crate::strategy::Strategy;

    /// Size bound for [`vec`]: an exact length or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut ShimRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vectors of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Test-runner configuration and failure reporting.
pub mod test_runner {
    /// Per-block configuration (`#![proptest_config(..)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }

        /// Cases after applying the `PROPTEST_CASES` environment override.
        pub fn resolved_cases(&self) -> u64 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(self.cases as u64)
                .max(1)
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Prints the failing case's inputs if the test body panics.
    pub struct CaseGuard {
        name: &'static str,
        case: u64,
        desc: String,
        armed: bool,
    }

    impl CaseGuard {
        /// Arms a guard for one case.
        pub fn new(name: &'static str, case: u64, desc: String) -> Self {
            CaseGuard {
                name,
                case,
                desc,
                armed: true,
            }
        }

        /// The case finished; do not report on drop.
        pub fn disarm(&mut self) {
            self.armed = false;
        }
    }

    impl Drop for CaseGuard {
        fn drop(&mut self) {
            if self.armed && std::thread::panicking() {
                eprintln!(
                    "proptest-shim: {} failed at case {} with inputs: {}(replay \
                     deterministically; PROPTEST_SHIM_SEED affects sampling)",
                    self.name, self.case, self.desc
                );
            }
        }
    }
}

/// Everything tests normally import.
pub mod prelude {
    /// Alias so `prop::collection::vec(..)` resolves (mirrors proptest's
    /// prelude, which re-exports the crate root as `prop`).
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[doc(hidden)]
pub use test_runner::ProptestConfig;

/// Defines property tests. Mirrors proptest's macro: an optional
/// `#![proptest_config(expr)]` header followed by `#[test]` functions
/// whose parameters are either `name in strategy` or `name: Type`.
#[macro_export]
macro_rules! proptest {
    // Entry: explicit config.
    { #![proptest_config($cfg:expr)] $($rest:tt)* } => {
        $crate::proptest!(@fns ($cfg) $($rest)*);
    };
    // @fns: munch one test function at a time.
    (@fns ($cfg:expr)) => {};
    (@fns ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__cfg.resolved_cases() {
                let mut __rng = $crate::rng::ShimRng::new(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                let mut __desc = ::std::string::String::new();
                $crate::proptest!(@bind __rng, __desc; $($params)*);
                let mut __guard = $crate::test_runner::CaseGuard::new(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                    __desc,
                );
                { $body }
                __guard.disarm();
            }
        }
        $crate::proptest!(@fns ($cfg) $($rest)*);
    };
    // @bind: turn each parameter into a generated local.
    (@bind $rng:ident, $desc:ident;) => {};
    (@bind $rng:ident, $desc:ident; $pname:ident in $s:expr, $($rest:tt)*) => {
        let $pname = $crate::strategy::Strategy::generate(&($s), &mut $rng);
        $desc.push_str(&format!(concat!(stringify!($pname), " = {:?}, "), $pname));
        $crate::proptest!(@bind $rng, $desc; $($rest)*);
    };
    (@bind $rng:ident, $desc:ident; $pname:ident in $s:expr) => {
        $crate::proptest!(@bind $rng, $desc; $pname in $s,);
    };
    (@bind $rng:ident, $desc:ident; $pname:ident: $t:ty, $($rest:tt)*) => {
        let $pname = $crate::strategy::Strategy::generate(
            &$crate::arbitrary::any::<$t>(),
            &mut $rng,
        );
        $desc.push_str(&format!(concat!(stringify!($pname), " = {:?}, "), $pname));
        $crate::proptest!(@bind $rng, $desc; $($rest)*);
    };
    (@bind $rng:ident, $desc:ident; $pname:ident: $t:ty) => {
        $crate::proptest!(@bind $rng, $desc; $pname: $t,);
    };
    // Entry: no config header.
    { $($rest:tt)* } => {
        $crate::proptest!(@fns ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` that reports the failing case's inputs.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` that reports the failing case's inputs.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` that reports the failing case's inputs.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::rng::ShimRng::new("t", 0);
        for _ in 0..1000 {
            let x = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&x));
            let y = (0usize..1).generate(&mut rng);
            assert_eq!(y, 0);
            let f = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = crate::rng::ShimRng::new("t2", 0);
        for _ in 0..200 {
            let v = crate::collection::vec(0u64..5, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            let exact = crate::collection::vec(0u64..5, 4).generate(&mut rng);
            assert_eq!(exact.len(), 4);
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let mut rng = crate::rng::ShimRng::new("t3", 0);
        let s = prop_oneof![(0u64..3).prop_map(|x| x * 10), Just(99u64),];
        let mut saw_mapped = false;
        let mut saw_just = false;
        for _ in 0..200 {
            match s.generate(&mut rng) {
                99 => saw_just = true,
                v if v % 10 == 0 && v < 30 => saw_mapped = true,
                v => panic!("unexpected value {v}"),
            }
        }
        assert!(saw_mapped && saw_just);
    }

    #[test]
    fn deterministic_per_name_and_case() {
        let mut a = crate::rng::ShimRng::new("same", 7);
        let mut b = crate::rng::ShimRng::new("same", 7);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::rng::ShimRng::new("same", 8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: `in` bindings, type bindings, tuples, vecs.
        #[test]
        fn macro_forms_work(
            x in 1u64..50,
            flag: bool,
            pair in (0usize..4, 0u64..9),
            xs in prop::collection::vec((0u64..256, any::<bool>()), 1..10),
        ) {
            prop_assert!((1..50).contains(&x));
            let _ = flag;
            prop_assert!(pair.0 < 4 && pair.1 < 9);
            prop_assert!(!xs.is_empty() && xs.len() < 10);
            prop_assert_eq!(xs.len(), xs.iter().filter(|(v, _)| *v < 256).count());
        }
    }
}
