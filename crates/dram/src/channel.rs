//! One DRAM channel: FR-FCFS queue + banks + shared data bus.

use rcc_chaos::{PerturbPoint, Site};
use rcc_common::addr::{LineAddr, LINE_BYTES};
use rcc_common::config::DramParams;
use rcc_common::time::Cycle;
use std::collections::VecDeque;

/// A queued line request.
#[derive(Debug, Clone, Copy)]
struct Request {
    line: LineAddr,
    is_write: bool,
    arrived: u64,
}

/// Per-bank timing state, all in core-cycle units.
#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    open_row: Option<u64>,
    /// Earliest cycle a new column command (read/write) may issue.
    col_ready: u64,
    /// Earliest cycle a precharge may issue (tRAS / tWR constraints).
    pre_ready: u64,
    /// Earliest cycle an activate may issue (tRC from last activate).
    act_ready: u64,
}

/// One GDDR channel with FR-FCFS scheduling.
#[derive(Debug)]
pub struct DramChannel {
    params: DramParams,
    queue: VecDeque<Request>,
    banks: Vec<Bank>,
    /// Earliest cycle the shared data bus is free.
    bus_free: u64,
    /// Earliest cycle any activate may issue (tRRD across banks).
    any_act_ready: u64,
    /// Read completions scheduled but not yet reported.
    completions: Vec<(u64, LineAddr)>,
    /// Chaos hook: stretches a serviced command's effective issue time
    /// (`Site::DramCommand`) and occasionally charges a refresh-like
    /// stall (`Site::DramRefresh`). Pure delays — every timing
    /// constraint still holds at the shifted time.
    chaos: Option<Box<dyn PerturbPoint>>,
    // Statistics.
    reads: u64,
    writes: u64,
    row_hits: u64,
    row_misses: u64,
    total_read_latency: u64,
    peak_queue: usize,
}

impl DramChannel {
    /// Creates a channel from the GDDR parameters.
    pub fn new(params: &DramParams) -> Self {
        DramChannel {
            queue: VecDeque::new(),
            banks: vec![Bank::default(); params.banks],
            bus_free: 0,
            any_act_ready: 0,
            completions: Vec::new(),
            chaos: None,
            reads: 0,
            writes: 0,
            row_hits: 0,
            row_misses: 0,
            total_read_latency: 0,
            peak_queue: 0,
            params: params.clone(),
        }
    }

    /// Installs a perturbation hook (see [`Site::DramCommand`]).
    pub fn set_chaos(&mut self, hook: Box<dyn PerturbPoint>) {
        self.chaos = Some(hook);
    }

    fn lines_per_row(&self) -> u64 {
        (self.params.row_bytes as u64 / LINE_BYTES).max(1)
    }

    fn bank_of(&self, line: LineAddr) -> usize {
        ((line.0 / self.lines_per_row()) % self.params.banks as u64) as usize
    }

    fn row_of(&self, line: LineAddr) -> u64 {
        line.0 / (self.lines_per_row() * self.params.banks as u64)
    }

    /// In core cycles.
    fn t(&self, dram_cycles: u64) -> u64 {
        dram_cycles * self.params.core_cycles_per_dram_cycle
    }

    /// Data transfer time for one line.
    fn burst(&self) -> u64 {
        self.t(LINE_BYTES / self.params.bytes_per_cycle as u64)
    }

    /// Enqueues a line request. Writes complete silently; reads are
    /// reported by [`Self::tick`].
    pub fn enqueue(&mut self, now: Cycle, line: LineAddr, is_write: bool) {
        if is_write {
            self.writes += 1;
        } else {
            self.reads += 1;
        }
        self.queue.push_back(Request {
            line,
            is_write,
            arrived: now.raw(),
        });
        self.peak_queue = self.peak_queue.max(self.queue.len());
    }

    /// Whether a request's bank could accept a column command this cycle
    /// (row already open and CAS-ready).
    fn is_row_hit_ready(&self, req: &Request, now: u64) -> bool {
        let bank = &self.banks[self.bank_of(req.line)];
        bank.open_row == Some(self.row_of(req.line)) && bank.col_ready <= now
    }

    /// Advances the channel one core cycle; returns read completions.
    pub fn tick(&mut self, now: Cycle) -> Vec<LineAddr> {
        let now = now.raw();
        // Issue at most one command per cycle: FR-FCFS picks the oldest
        // row-hit-ready request, falling back to the oldest request whose
        // bank can make progress.
        if let Some(idx) = self.pick(now) {
            let req = self.queue[idx];
            self.service(req, now);
            self.queue.remove(idx);
        }
        // Report due completions.
        let mut done = Vec::new();
        self.completions.retain(|(at, line)| {
            if *at <= now {
                done.push(*line);
                false
            } else {
                true
            }
        });
        done
    }

    fn pick(&self, now: u64) -> Option<usize> {
        // First ready (row hit)…
        if let Some(i) = (0..self.queue.len()).find(|&i| self.is_row_hit_ready(&self.queue[i], now))
        {
            return Some(i);
        }
        // …then first come among requests whose bank can start work.
        (0..self.queue.len()).find(|&i| {
            let req = &self.queue[i];
            let bank = &self.banks[self.bank_of(req.line)];
            // Either ready to activate a new row, or a same-row command
            // that merely waits for col_ready soon — only issue when the
            // activate path is clear to keep the model simple.
            bank.open_row == Some(self.row_of(req.line))
                || (bank.pre_ready <= now && bank.act_ready <= now && self.any_act_ready <= now)
        })
    }

    fn service(&mut self, req: Request, now: u64) {
        // Chaos: pretend the command was picked `stretch` cycles later
        // than it really was. One draw pair per serviced command (event-
        // driven), and purely a delay, so `next_event`'s poll-while-
        // queued contract is unaffected.
        let now = match &mut self.chaos {
            Some(c) => now + c.jitter(Site::DramCommand) + c.jitter(Site::DramRefresh),
            None => now,
        };
        let bank_idx = self.bank_of(req.line);
        let row = self.row_of(req.line);
        let burst = self.burst();
        let (t_rp, t_rc, t_rrd, t_ras, t_rcd) = (
            self.t(self.params.t_rp),
            self.t(self.params.t_rc),
            self.t(self.params.t_rrd),
            self.t(self.params.t_ras),
            self.t(self.params.t_rcd),
        );
        let (t_wl, t_wr, t_cdlr, t_ccd, t_cl) = (
            self.t(self.params.t_wl),
            self.t(self.params.t_wr),
            self.t(self.params.t_cdlr),
            self.t(self.params.t_ccd),
            self.t(self.params.t_cl),
        );
        let bank = &mut self.banks[bank_idx];

        let col_issue = if bank.open_row == Some(row) {
            self.row_hits += 1;
            bank.col_ready.max(now)
        } else {
            self.row_misses += 1;
            // Precharge (if a row is open) then activate.
            let pre_at = bank.pre_ready.max(now);
            let act_at = (pre_at + if bank.open_row.is_some() { t_rp } else { 0 })
                .max(bank.act_ready)
                .max(self.any_act_ready);
            bank.open_row = Some(row);
            bank.act_ready = act_at + t_rc;
            self.any_act_ready = act_at + t_rrd;
            // tRAS before the next precharge.
            bank.pre_ready = act_at + t_ras;
            act_at + t_rcd
        };

        if req.is_write {
            let data_at = col_issue.max(self.bus_free) + t_wl;
            self.bus_free = data_at + burst;
            bank.col_ready = data_at + burst + t_ccd;
            // Write recovery before precharge, turnaround before reads.
            bank.pre_ready = bank.pre_ready.max(data_at + burst + t_wr);
            bank.col_ready = bank.col_ready.max(data_at + burst + t_cdlr);
        } else {
            let data_at = col_issue.max(self.bus_free) + t_cl;
            self.bus_free = data_at + burst;
            bank.col_ready = col_issue + t_ccd.max(1);
            let finish = data_at + burst;
            self.total_read_latency += finish.saturating_sub(req.arrived);
            self.completions.push((finish, req.line));
        }
    }

    /// Outstanding requests (queued or awaiting completion report).
    pub fn pending(&self) -> usize {
        self.queue.len() + self.completions.len()
    }

    /// Earliest cycle at which something will complete or could issue,
    /// if known (lets the simulator skip idle cycles). While commands
    /// are queued the channel arbitrates every cycle (bank timing may
    /// free up at any point), so the queue takes precedence over any
    /// known completion time.
    pub fn next_event(&self) -> Option<Cycle> {
        if !self.queue.is_empty() {
            return Some(Cycle(0)); // work queued: poll every cycle
        }
        self.completions.iter().map(|(at, _)| *at).min().map(Cycle)
    }

    /// Reads serviced.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Writes serviced.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Row-buffer hit count.
    pub fn row_hits(&self) -> u64 {
        self.row_hits
    }

    /// Row-buffer miss count.
    pub fn row_misses(&self) -> u64 {
        self.row_misses
    }

    /// Mean read latency (enqueue → data) in core cycles.
    pub fn mean_read_latency(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.total_read_latency as f64 / self.reads as f64
        }
    }

    /// Folds the channel's full state — command queue, bank timing
    /// state, chaos stream, and statistics — into a cross-component
    /// state digest.
    pub fn digest_state(&self, d: &mut rcc_common::snap::StateDigest) {
        d.write_debug(self);
    }

    /// Peak queue occupancy.
    pub fn peak_queue(&self) -> usize {
        self.peak_queue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcc_common::config::GpuConfig;

    fn run_until_done(ch: &mut DramChannel, limit: u64) -> Vec<(u64, LineAddr)> {
        let mut done = Vec::new();
        for c in 0..limit {
            for line in ch.tick(Cycle(c)) {
                done.push((c, line));
            }
            if ch.pending() == 0 {
                break;
            }
        }
        done
    }

    #[test]
    fn single_read_completes_with_miss_latency() {
        let cfg = GpuConfig::small();
        let mut ch = DramChannel::new(&cfg.dram);
        ch.enqueue(Cycle(0), LineAddr(5), false);
        let done = run_until_done(&mut ch, 10_000);
        assert_eq!(done.len(), 1);
        let (t, line) = done[0];
        assert_eq!(line, LineAddr(5));
        // At least tRCD + tCL + burst after issue.
        let min = cfg.dram.t_rcd + cfg.dram.t_cl + 128 / cfg.dram.bytes_per_cycle as u64;
        assert!(t >= min, "completed at {t}, min {min}");
        assert_eq!(ch.row_misses(), 1);
    }

    #[test]
    fn row_hits_are_faster_than_misses() {
        let cfg = GpuConfig::small();
        let mut ch = DramChannel::new(&cfg.dram);
        // Two lines in the same row.
        ch.enqueue(Cycle(0), LineAddr(0), false);
        ch.enqueue(Cycle(0), LineAddr(1), false);
        let done = run_until_done(&mut ch, 10_000);
        assert_eq!(done.len(), 2);
        assert_eq!(ch.row_hits(), 1);
        assert_eq!(ch.row_misses(), 1);
        let gap_hit = done[1].0 - done[0].0;

        let mut ch2 = DramChannel::new(&cfg.dram);
        // Two rows in the same bank → miss + conflict.
        let lines_per_row = cfg.dram.row_bytes as u64 / 128;
        let same_bank_other_row = lines_per_row * cfg.dram.banks as u64;
        ch2.enqueue(Cycle(0), LineAddr(0), false);
        ch2.enqueue(Cycle(0), LineAddr(same_bank_other_row), false);
        let done2 = run_until_done(&mut ch2, 10_000);
        assert_eq!(done2.len(), 2);
        assert_eq!(ch2.row_misses(), 2);
        let gap_conflict = done2[1].0 - done2[0].0;
        assert!(
            gap_conflict > gap_hit,
            "row conflict ({gap_conflict}) must cost more than a hit ({gap_hit})"
        );
    }

    #[test]
    fn fr_fcfs_prefers_row_hits() {
        let cfg = GpuConfig::small();
        let mut ch = DramChannel::new(&cfg.dram);
        let lines_per_row = cfg.dram.row_bytes as u64 / 128;
        let conflict = lines_per_row * cfg.dram.banks as u64; // same bank, other row
                                                              // Open row 0 of bank 0 with the first request.
        ch.enqueue(Cycle(0), LineAddr(0), false);
        let mut t = 0;
        while ch.pending() > 0 && ch.reads() > 0 && ch.tick(Cycle(t)).is_empty() {
            t += 1;
            if t > 5000 {
                break;
            }
        }
        // Now enqueue a conflict first, then a row hit: the hit should
        // complete first despite arriving later.
        ch.enqueue(Cycle(t), LineAddr(conflict), false);
        ch.enqueue(Cycle(t), LineAddr(1), false);
        let mut order = Vec::new();
        for c in t..t + 10_000 {
            for l in ch.tick(Cycle(c)) {
                order.push(l);
            }
            if ch.pending() == 0 {
                break;
            }
        }
        assert_eq!(order.first(), Some(&LineAddr(1)), "row hit bypasses");
    }

    #[test]
    fn writes_complete_silently_but_occupy_the_bus() {
        let cfg = GpuConfig::small();
        let mut ch = DramChannel::new(&cfg.dram);
        ch.enqueue(Cycle(0), LineAddr(0), true);
        ch.enqueue(Cycle(0), LineAddr(1), false);
        let done = run_until_done(&mut ch, 10_000);
        assert_eq!(done.len(), 1, "only the read reports");
        assert_eq!(ch.writes(), 1);
        assert_eq!(ch.reads(), 1);
    }

    #[test]
    fn parallel_banks_overlap() {
        let cfg = GpuConfig::small();
        let lines_per_row = cfg.dram.row_bytes as u64 / 128;
        // Two misses in different banks vs two conflicting misses in one.
        let mut par = DramChannel::new(&cfg.dram);
        par.enqueue(Cycle(0), LineAddr(0), false);
        par.enqueue(Cycle(0), LineAddr(lines_per_row), false); // bank 1
        let done_par = run_until_done(&mut par, 10_000);

        let mut ser = DramChannel::new(&cfg.dram);
        ser.enqueue(Cycle(0), LineAddr(0), false);
        ser.enqueue(
            Cycle(0),
            LineAddr(lines_per_row * cfg.dram.banks as u64),
            false,
        );
        let done_ser = run_until_done(&mut ser, 10_000);
        assert!(done_par.last().unwrap().0 < done_ser.last().unwrap().0);
    }

    #[test]
    fn chaos_stretch_only_delays_completions() {
        use rcc_chaos::{ChaosProfile, ChaosSpec, Perturber};
        let cfg = GpuConfig::small();
        let mut clean = DramChannel::new(&cfg.dram);
        let mut slow = DramChannel::new(&cfg.dram);
        let mut always = ChaosProfile::heavy();
        always.dram_cmd_jitter_p = 1.0;
        always.dram_refresh_p = 1.0;
        slow.set_chaos(Box::new(Perturber::standalone(
            &ChaosSpec::new(2, always),
            0,
        )));
        for i in 0..4 {
            clean.enqueue(Cycle(0), LineAddr(i), false);
            slow.enqueue(Cycle(0), LineAddr(i), false);
        }
        let done_clean = run_until_done(&mut clean, 1_000_000);
        let done_slow = run_until_done(&mut slow, 1_000_000);
        assert_eq!(
            done_slow.len(),
            done_clean.len(),
            "chaos must not drop work"
        );
        assert!(
            done_slow.last().unwrap().0 > done_clean.last().unwrap().0,
            "stretch + refresh must delay the tail"
        );
    }

    #[test]
    fn stats_and_latency() {
        let cfg = GpuConfig::small();
        let mut ch = DramChannel::new(&cfg.dram);
        for i in 0..8 {
            ch.enqueue(Cycle(0), LineAddr(i), false);
        }
        assert_eq!(ch.peak_queue(), 8);
        run_until_done(&mut ch, 50_000);
        assert!(ch.mean_read_latency() > 0.0);
        assert_eq!(ch.pending(), 0);
        assert!(ch.next_event().is_none());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Conservation: every enqueued request completes exactly
            /// once, and the read/write counters account for all of them.
            #[test]
            fn every_request_completes(
                reqs in proptest::collection::vec((0u64..256, any::<bool>(), 0u64..40), 1..50),
            ) {
                let cfg = GpuConfig::small();
                let mut ch = DramChannel::new(&cfg.dram);
                let mut now = 0u64;
                let mut expected_reads = 0u64;
                for &(line, is_write, gap) in &reqs {
                    now += gap;
                    ch.enqueue(Cycle(now), LineAddr(line), is_write);
                    if !is_write {
                        expected_reads += 1;
                    }
                }
                let done = run_until_done(&mut ch, now + 1_000_000);
                prop_assert_eq!(ch.pending(), 0);
                // Only reads report completions (writes are fire-and-forget
                // for the caller but still occupy the channel).
                prop_assert_eq!(done.len() as u64, expected_reads);
                prop_assert_eq!(ch.reads(), expected_reads);
                prop_assert_eq!(ch.writes(), reqs.len() as u64 - expected_reads);
                prop_assert_eq!(ch.row_hits() + ch.row_misses(), reqs.len() as u64);
            }

            /// No read completes faster than the physical minimum
            /// (column access + burst), regardless of scheduling.
            #[test]
            fn reads_respect_minimum_latency(
                lines in proptest::collection::vec(0u64..64, 1..30),
            ) {
                let cfg = GpuConfig::small();
                let mut ch = DramChannel::new(&cfg.dram);
                for &line in &lines {
                    ch.enqueue(Cycle(0), LineAddr(line), false);
                }
                let done = run_until_done(&mut ch, 10_000_000);
                prop_assert_eq!(done.len(), lines.len());
                let burst = 128 / cfg.dram.bytes_per_cycle as u64;
                let min = cfg.dram.t_cl + burst;
                for &(t, line) in &done {
                    prop_assert!(t >= min, "{line} completed at {t} < minimum {min}");
                }
            }

            /// FR-FCFS never starves: with a steady row-hit stream and one
            /// conflicting request, the conflict still completes.
            #[test]
            fn row_conflicts_eventually_served(hot_row_reqs in 2u64..20) {
                let cfg = GpuConfig::small();
                let mut ch = DramChannel::new(&cfg.dram);
                // Hot row: consecutive lines share a row.
                for i in 0..hot_row_reqs {
                    ch.enqueue(Cycle(0), LineAddr(i % 2), false);
                }
                // Conflicting row in the same bank, far away.
                ch.enqueue(Cycle(0), LineAddr(10_000), false);
                let done = run_until_done(&mut ch, 10_000_000);
                prop_assert_eq!(done.len() as u64, hot_row_reqs + 1);
                prop_assert!(done.iter().any(|&(_, l)| l == LineAddr(10_000)));
            }
        }
    }
}
