#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! GDDR DRAM timing model with FR-FCFS scheduling (Table III).
//!
//! Each memory partition owns one [`channel::DramChannel`]: a command
//! queue scheduled first-ready-first-come-first-served (row-buffer hits
//! bypass older row misses), in front of a set of banks whose activate /
//! precharge / CAS timing follows the GDDR parameters of Table III
//! (tCL = 12, tRP = 12, tRC = 40, tRAS = 28, tCCD = 2, tWL = 4,
//! tRCD = 12, tRRD = 6, tCDLR = 5, tWR = 12). The data bus moves 8 bytes
//! per DRAM cycle, so a 128-byte line occupies the bus for 16 cycles.
//!
//! The model times *line-granular* requests — exactly what the write-back
//! L2 emits — and reports read completions; writes occupy banks and bus
//! but complete silently, as in the simulator the paper uses.
//!
//! # Example
//!
//! ```
//! use rcc_common::addr::LineAddr;
//! use rcc_common::config::GpuConfig;
//! use rcc_common::time::Cycle;
//! use rcc_dram::DramChannel;
//!
//! let cfg = GpuConfig::small();
//! let mut ch = DramChannel::new(&cfg.dram);
//! ch.enqueue(Cycle(0), LineAddr(3), false);
//! let mut done = Vec::new();
//! for c in 0..10_000 {
//!     done.extend(ch.tick(Cycle(c)));
//!     if !done.is_empty() { break; }
//! }
//! assert_eq!(done, vec![LineAddr(3)]);
//! ```

pub mod channel;

pub use channel::DramChannel;
