//! Property-based tests for the DRAM channel.

use proptest::prelude::*;
use rcc_common::addr::LineAddr;
use rcc_common::config::GpuConfig;
use rcc_common::time::Cycle;
use rcc_dram::DramChannel;

proptest! {
    /// Every read completes exactly once, no earlier than the minimum
    /// CAS + transfer time after enqueue, and the channel drains.
    #[test]
    fn reads_complete_exactly_once(
        reqs in prop::collection::vec((0u64..256, any::<bool>()), 1..60),
    ) {
        let cfg = GpuConfig::small();
        let mut ch = DramChannel::new(&cfg.dram);
        let mut expected = std::collections::HashMap::new();
        for (i, (line, is_write)) in reqs.iter().enumerate() {
            ch.enqueue(Cycle(i as u64), LineAddr(*line), *is_write);
            if !*is_write {
                *expected.entry(LineAddr(*line)).or_insert(0u32) += 1;
            }
        }
        let mut got = std::collections::HashMap::new();
        let mut t = 0u64;
        while ch.pending() > 0 {
            t += 1;
            prop_assert!(t < 1_000_000, "channel failed to drain");
            for line in ch.tick(Cycle(t)) {
                *got.entry(line).or_insert(0u32) += 1;
            }
        }
        prop_assert_eq!(got, expected);
        let min_service = cfg.dram.t_cl + 128 / cfg.dram.bytes_per_cycle as u64;
        if ch.reads() > 0 {
            prop_assert!(ch.mean_read_latency() >= min_service as f64);
        }
    }
}
