//! Set-associative tag array with LRU replacement.
//!
//! Each resident line carries protocol-defined metadata `S` (coherence
//! state and timestamps). Victim selection asks the protocol which lines
//! are replaceable — in RCC, a valid line whose lease has expired is
//! treated exactly like an invalid line for replacement (Section III-C),
//! which the protocol expresses through the `replaceable` predicate.

use crate::data::LineData;
use rcc_common::addr::LineAddr;

/// One resident cache line.
#[derive(Debug, Clone)]
pub struct Line<S> {
    /// Which memory line is cached here.
    pub addr: LineAddr,
    /// Protocol metadata (state + timestamps).
    pub state: S,
    /// Data payload.
    pub data: LineData,
    /// Dirty flag (used by the write-back L2; write-through L1s never set it).
    pub dirty: bool,
    /// LRU counter (larger = more recently used).
    last_use: u64,
}

/// A line displaced by [`TagArray::fill`].
#[derive(Debug, Clone)]
pub struct Evicted<S> {
    /// The displaced line.
    pub line: Line<S>,
}

/// A set-associative array of [`Line`]s with per-set LRU.
#[derive(Debug, Clone)]
pub struct TagArray<S> {
    sets: usize,
    ways: usize,
    /// Address stride between consecutive lines of this cache: 1 for an
    /// L1, the partition count for an L2 bank (partition-interleaved
    /// caches must strip the partition bits before indexing sets, or the
    /// bank aliases into a fraction of its sets).
    stride: u64,
    slots: Vec<Option<Line<S>>>,
    tick: u64,
}

impl<S> TagArray<S> {
    /// Creates an empty array with `sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        Self::with_stride(sets, ways, 1)
    }

    /// Creates an array whose set index is computed on `line / stride` —
    /// used by partition-interleaved L2 banks.
    ///
    /// # Panics
    ///
    /// Panics if `sets`, `ways` or `stride` is zero.
    pub fn with_stride(sets: usize, ways: usize, stride: u64) -> Self {
        assert!(sets > 0 && ways > 0, "cache must have sets and ways");
        assert!(stride > 0, "stride must be positive");
        TagArray {
            sets,
            ways,
            stride,
            slots: std::iter::repeat_with(|| None).take(sets * ways).collect(),
            tick: 0,
        }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn num_ways(&self) -> usize {
        self.ways
    }

    fn set_range(&self, addr: LineAddr) -> std::ops::Range<usize> {
        let set = LineAddr(addr.0 / self.stride).set_index(self.sets);
        set * self.ways..(set + 1) * self.ways
    }

    /// Looks up a line without updating LRU state.
    pub fn probe(&self, addr: LineAddr) -> Option<&Line<S>> {
        self.slots[self.set_range(addr)]
            .iter()
            .flatten()
            .find(|l| l.addr == addr)
    }

    /// Looks up a line mutably without updating LRU state.
    pub fn probe_mut(&mut self, addr: LineAddr) -> Option<&mut Line<S>> {
        let range = self.set_range(addr);
        self.slots[range]
            .iter_mut()
            .flatten()
            .find(|l| l.addr == addr)
    }

    /// Looks up a line and marks it most-recently-used.
    pub fn access(&mut self, addr: LineAddr) -> Option<&mut Line<S>> {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(addr);
        let line = self.slots[range]
            .iter_mut()
            .flatten()
            .find(|l| l.addr == addr)?;
        line.last_use = tick;
        Some(line)
    }

    /// Inserts (or replaces) a line, evicting if the set is full.
    ///
    /// Victim preference: an empty way, then the LRU line among those for
    /// which `replaceable(addr, &state)` is true. Returns the displaced
    /// line, or
    /// `Err(())` if every candidate way holds a non-replaceable line (the
    /// caller must stall the fill; this models lines pinned by transient
    /// coherence states).
    ///
    /// If `addr` is already resident its slot is overwritten in place.
    #[allow(clippy::result_unit_err)]
    pub fn fill(
        &mut self,
        addr: LineAddr,
        state: S,
        data: LineData,
        dirty: bool,
        replaceable: impl Fn(LineAddr, &S) -> bool,
    ) -> Result<Option<Evicted<S>>, ()> {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(addr);
        let new_line = Line {
            addr,
            state,
            data,
            dirty,
            last_use: tick,
        };

        // Already resident: replace in place (no eviction).
        if let Some(slot) = self.slots[range.clone()]
            .iter_mut()
            .find(|s| s.as_ref().is_some_and(|l| l.addr == addr))
        {
            let old = slot.replace(new_line).expect("slot checked non-empty");
            return Ok(Some(Evicted { line: old }));
        }

        // Empty way.
        if let Some(slot) = self.slots[range.clone()].iter_mut().find(|s| s.is_none()) {
            *slot = Some(new_line);
            return Ok(None);
        }

        // LRU among replaceable lines.
        let victim_idx = self.slots[range.clone()]
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|l| (i, l)))
            .filter(|(_, l)| replaceable(l.addr, &l.state))
            .min_by_key(|(_, l)| l.last_use)
            .map(|(i, _)| i);

        match victim_idx {
            Some(i) => {
                let slot = &mut self.slots[range][i];
                let old = slot.replace(new_line).expect("victim slot non-empty");
                Ok(Some(Evicted { line: old }))
            }
            None => Err(()),
        }
    }

    /// Returns the line that [`Self::fill`] would evict for `addr` among
    /// `replaceable` candidates, without modifying anything. `None` if a
    /// way is free (or `addr` is resident) — a fill would not evict.
    pub fn peek_victim(
        &self,
        addr: LineAddr,
        replaceable: impl Fn(LineAddr, &S) -> bool,
    ) -> Option<&Line<S>> {
        let range = self.set_range(addr);
        let slots = &self.slots[range];
        if slots
            .iter()
            .any(|s| s.is_none() || s.as_ref().is_some_and(|l| l.addr == addr))
        {
            return None;
        }
        slots
            .iter()
            .flatten()
            .filter(|l| replaceable(l.addr, &l.state))
            .min_by_key(|l| l.last_use)
    }

    /// Removes a line, returning it.
    pub fn invalidate(&mut self, addr: LineAddr) -> Option<Line<S>> {
        let range = self.set_range(addr);
        self.slots[range]
            .iter_mut()
            .find(|s| s.as_ref().is_some_and(|l| l.addr == addr))?
            .take()
    }

    /// Removes every line, returning them (used by the RCC rollover flush).
    pub fn drain(&mut self) -> Vec<Line<S>> {
        self.slots.iter_mut().filter_map(|s| s.take()).collect()
    }

    /// Iterates over all resident lines.
    pub fn iter(&self) -> impl Iterator<Item = &Line<S>> {
        self.slots.iter().flatten()
    }

    /// Iterates mutably over all resident lines.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Line<S>> {
        self.slots.iter_mut().flatten()
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.slots.iter().flatten().count()
    }

    /// Whether the array holds no lines.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arr() -> TagArray<u32> {
        TagArray::new(2, 2)
    }

    fn fill_ok(a: &mut TagArray<u32>, addr: u64, state: u32) -> Option<Evicted<u32>> {
        a.fill(LineAddr(addr), state, LineData::zeroed(), false, |_, _| {
            true
        })
        .expect("fill should not stall")
    }

    #[test]
    fn probe_miss_and_hit() {
        let mut a = arr();
        assert!(a.probe(LineAddr(0)).is_none());
        fill_ok(&mut a, 0, 7);
        assert_eq!(a.probe(LineAddr(0)).unwrap().state, 7);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn same_set_lines_conflict() {
        let mut a = arr(); // 2 sets: lines 0,2,4... map to set 0
        assert!(fill_ok(&mut a, 0, 1).is_none());
        assert!(fill_ok(&mut a, 2, 2).is_none());
        // Set 0 now full; line 4 evicts LRU (line 0).
        let ev = fill_ok(&mut a, 4, 3).expect("must evict");
        assert_eq!(ev.line.addr, LineAddr(0));
        assert!(a.probe(LineAddr(0)).is_none());
        assert!(a.probe(LineAddr(2)).is_some());
        assert!(a.probe(LineAddr(4)).is_some());
    }

    #[test]
    fn access_updates_lru() {
        let mut a = arr();
        fill_ok(&mut a, 0, 1);
        fill_ok(&mut a, 2, 2);
        a.access(LineAddr(0)); // 0 becomes MRU, so 2 is the victim
        let ev = fill_ok(&mut a, 4, 3).unwrap();
        assert_eq!(ev.line.addr, LineAddr(2));
    }

    #[test]
    fn refill_resident_line_replaces_in_place() {
        let mut a = arr();
        fill_ok(&mut a, 0, 1);
        let old = fill_ok(&mut a, 0, 9).expect("old copy returned");
        assert_eq!(old.line.state, 1);
        assert_eq!(a.probe(LineAddr(0)).unwrap().state, 9);
        assert_eq!(a.len(), 1, "no duplicate copies");
    }

    #[test]
    fn non_replaceable_lines_stall_fill() {
        let mut a = arr();
        fill_ok(&mut a, 0, 1);
        fill_ok(&mut a, 2, 2);
        // Nothing replaceable → fill must report a stall.
        let r = a.fill(LineAddr(4), 3, LineData::zeroed(), false, |_, _| false);
        assert!(r.is_err());
        assert!(a.probe(LineAddr(4)).is_none());
        // Only state 2 replaceable → it must be chosen despite LRU order.
        let r = a
            .fill(LineAddr(4), 3, LineData::zeroed(), false, |_, s| *s == 2)
            .unwrap()
            .unwrap();
        assert_eq!(r.line.state, 2);
    }

    #[test]
    fn invalidate_removes() {
        let mut a = arr();
        fill_ok(&mut a, 0, 5);
        let line = a.invalidate(LineAddr(0)).unwrap();
        assert_eq!(line.state, 5);
        assert!(a.probe(LineAddr(0)).is_none());
        assert!(a.invalidate(LineAddr(0)).is_none());
    }

    #[test]
    fn drain_empties_everything() {
        let mut a = arr();
        fill_ok(&mut a, 0, 1);
        fill_ok(&mut a, 1, 2);
        fill_ok(&mut a, 2, 3);
        let drained = a.drain();
        assert_eq!(drained.len(), 3);
        assert!(a.is_empty());
    }

    #[test]
    fn dirty_bit_round_trips() {
        let mut a = arr();
        a.fill(LineAddr(0), 0u32, LineData::zeroed(), true, |_, _| true)
            .unwrap();
        assert!(a.probe(LineAddr(0)).unwrap().dirty);
    }

    #[test]
    #[should_panic(expected = "sets and ways")]
    fn zero_geometry_panics() {
        let _: TagArray<u8> = TagArray::new(0, 4);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;
        use std::collections::HashSet;

        proptest! {
            /// Residency model: after any fill sequence (all lines
            /// replaceable), the array holds exactly the lines not yet
            /// evicted, never more than sets × ways of them, and never
            /// more than `ways` per set.
            #[test]
            fn fills_respect_geometry_and_track_residency(
                addrs in proptest::collection::vec(0u64..64, 1..80),
                sets in 1usize..5,
                ways in 1usize..4,
            ) {
                let mut a: TagArray<u32> = TagArray::new(sets, ways);
                let mut resident: HashSet<u64> = HashSet::new();
                for (i, &addr) in addrs.iter().enumerate() {
                    let ev = a
                        .fill(LineAddr(addr), i as u32, LineData::zeroed(), false, |_, _| true)
                        .expect("all lines replaceable");
                    resident.insert(addr);
                    if let Some(ev) = ev {
                        if ev.line.addr.0 != addr {
                            resident.remove(&ev.line.addr.0);
                        }
                    }
                    prop_assert!(a.len() <= sets * ways);
                    prop_assert!(a.probe(LineAddr(addr)).is_some());
                }
                prop_assert_eq!(a.len(), resident.len());
                for &r in &resident {
                    prop_assert!(a.probe(LineAddr(r)).is_some(), "line {} lost", r);
                }
                // Per-set occupancy never exceeds the way count.
                for s in 0..sets {
                    let in_set = resident
                        .iter()
                        .filter(|&&r| (r as usize) % sets == s)
                        .count();
                    prop_assert!(in_set <= ways, "set {} holds {} > {} lines", s, in_set, ways);
                }
            }

            /// Partition-stride indexing: a bank that only ever sees lines
            /// of its own partition (line ≡ p mod stride) must use every
            /// set — filling sets × ways such lines evicts nothing.
            #[test]
            fn stride_uses_every_set(
                stride in 1u64..9,
                p in 0u64..8,
                sets in 1usize..6,
                ways in 1usize..4,
            ) {
                let p = p % stride;
                let mut a: TagArray<()> = TagArray::with_stride(sets, ways, stride);
                for i in 0..(sets * ways) as u64 {
                    let addr = p + stride * i;
                    let ev = a
                        .fill(LineAddr(addr), (), LineData::zeroed(), false, |_, _| true)
                        .expect("replaceable");
                    prop_assert!(ev.is_none(), "eviction before capacity at line {}", addr);
                }
                prop_assert_eq!(a.len(), sets * ways);
            }

            /// The fill victim is always the least-recently-used line of
            /// the set, and `peek_victim` agrees with `fill`.
            #[test]
            fn lru_and_peek_agree(
                accesses in proptest::collection::vec(0u64..4, 0..12),
                ways in 2usize..5,
            ) {
                let mut a: TagArray<()> = TagArray::new(1, ways);
                for i in 0..ways as u64 {
                    a.fill(LineAddr(i), (), LineData::zeroed(), false, |_, _| true)
                        .unwrap();
                }
                let mut order: Vec<u64> = (0..ways as u64).collect();
                for &x in accesses.iter().filter(|&&x| (x as usize) < ways) {
                    if a.access(LineAddr(x)).is_some() {
                        order.retain(|&o| o != x);
                        order.push(x);
                    }
                }
                let lru = order[0];
                let peeked = a.peek_victim(LineAddr(99), |_, _| true).map(|l| l.addr);
                prop_assert_eq!(peeked, Some(LineAddr(lru)));
                let ev = a
                    .fill(LineAddr(99), (), LineData::zeroed(), false, |_, _| true)
                    .unwrap()
                    .expect("full set must evict");
                prop_assert_eq!(ev.line.addr, LineAddr(lru));
            }

            /// A fill whose set has no replaceable line stalls with
            /// `Err(())` and modifies nothing.
            #[test]
            fn pinned_set_stalls_fills(ways in 1usize..5) {
                let mut a: TagArray<()> = TagArray::new(1, ways);
                for i in 0..ways as u64 {
                    a.fill(LineAddr(i), (), LineData::zeroed(), false, |_, _| true)
                        .unwrap();
                }
                let r = a.fill(LineAddr(99), (), LineData::zeroed(), false, |_, _| false);
                prop_assert!(r.is_err());
                prop_assert_eq!(a.len(), ways);
                prop_assert!(a.probe(LineAddr(99)).is_none());
            }
        }
    }
}
