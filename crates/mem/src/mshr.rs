//! Miss Status Holding Register (MSHR) files.
//!
//! An MSHR file tracks outstanding misses per cache line. Requests to a
//! line that already has an entry are *merged* into it (up to a merge
//! cap); when the file is full, or an entry's merge list is full, new
//! requests must stall — a structural hazard the paper identifies as one
//! of the ways long store latencies hurt GPU throughput (Section I).
//!
//! The per-entry record type `E` is protocol-defined: the RCC L2, for
//! example, stores `lastrd`/`lastwr` logical timestamps and merged store
//! data in its entries (Section III-D).

use rcc_chaos::{PerturbPoint, Site};
use rcc_common::addr::LineAddr;
use rcc_common::FxHashMap;

/// Why an MSHR allocation or merge was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrRejection {
    /// No free entries: the whole file is occupied.
    Full,
    /// The line has an entry but its merge list is at capacity.
    MergeListFull,
}

/// A file of MSHR entries keyed by line address.
#[derive(Debug, Clone)]
pub struct MshrFile<E> {
    capacity: usize,
    merge_cap: usize,
    entries: FxHashMap<LineAddr, (E, usize)>,
    high_water: usize,
    /// Chaos hook: when set, allocations/merges may be transiently
    /// refused as if the file were full (`Site::MshrSqueeze`). Callers
    /// already handle both rejections (structural stall + retry), so a
    /// squeeze only perturbs timing, never correctness.
    chaos: Option<Box<dyn PerturbPoint>>,
}

impl<E> MshrFile<E> {
    /// Creates a file with `capacity` entries, each allowing `merge_cap`
    /// merged requests (including the original).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `merge_cap` is zero.
    pub fn new(capacity: usize, merge_cap: usize) -> Self {
        assert!(capacity > 0 && merge_cap > 0);
        MshrFile {
            capacity,
            merge_cap,
            entries: FxHashMap::default(),
            high_water: 0,
            chaos: None,
        }
    }

    /// Installs a perturbation hook (see [`Site::MshrSqueeze`]). Only
    /// safe on files whose callers tolerate rejection on *every*
    /// allocate/merge path — L1 controllers do; L2 banks re-dispatch
    /// deferred requests with `expect(no rejection)` and must not be
    /// squeezed.
    pub fn set_chaos(&mut self, hook: Box<dyn PerturbPoint>) {
        self.chaos = Some(hook);
    }

    fn squeezed(&mut self) -> bool {
        match &mut self.chaos {
            Some(c) => c.fires(Site::MshrSqueeze),
            None => false,
        }
    }

    /// Looks up the entry for a line.
    pub fn get(&self, addr: LineAddr) -> Option<&E> {
        self.entries.get(&addr).map(|(e, _)| e)
    }

    /// Looks up the entry for a line mutably (does not count as a merge).
    pub fn get_mut(&mut self, addr: LineAddr) -> Option<&mut E> {
        self.entries.get_mut(&addr).map(|(e, _)| e)
    }

    /// Allocates a fresh entry for `addr`.
    ///
    /// # Errors
    ///
    /// [`MshrRejection::Full`] if no entry is free.
    ///
    /// # Panics
    ///
    /// Panics if an entry for `addr` already exists (callers must merge
    /// instead — this is a protocol bug, not a runtime condition).
    pub fn allocate(&mut self, addr: LineAddr, entry: E) -> Result<(), MshrRejection> {
        assert!(
            !self.entries.contains_key(&addr),
            "MSHR double-allocation for {addr}"
        );
        if self.entries.len() >= self.capacity {
            return Err(MshrRejection::Full);
        }
        if self.squeezed() {
            return Err(MshrRejection::Full);
        }
        self.entries.insert(addr, (entry, 1));
        self.high_water = self.high_water.max(self.entries.len());
        Ok(())
    }

    /// Merges an additional request into the entry for `addr`, applying
    /// `f` to the entry.
    ///
    /// # Errors
    ///
    /// [`MshrRejection::MergeListFull`] if the merge list is at capacity
    /// (the entry is left unchanged).
    ///
    /// # Panics
    ///
    /// Panics if no entry exists for `addr`.
    pub fn merge(&mut self, addr: LineAddr, f: impl FnOnce(&mut E)) -> Result<(), MshrRejection> {
        assert!(
            self.entries.contains_key(&addr),
            "MSHR merge into missing entry {addr}"
        );
        if self.entries[&addr].1 >= self.merge_cap {
            return Err(MshrRejection::MergeListFull);
        }
        if self.squeezed() {
            return Err(MshrRejection::MergeListFull);
        }
        let (entry, count) = self.entries.get_mut(&addr).expect("checked above");
        *count += 1;
        f(entry);
        Ok(())
    }

    /// Releases the entry for `addr`, returning it.
    pub fn release(&mut self, addr: LineAddr) -> Option<E> {
        self.entries.remove(&addr).map(|(e, _)| e)
    }

    /// Whether an entry exists for `addr`.
    pub fn contains(&self, addr: LineAddr) -> bool {
        self.entries.contains_key(&addr)
    }

    /// Number of occupied entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the file has no free entries.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Maximum simultaneous occupancy observed (for stats).
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Drains all entries (used by the RCC rollover flush). The order is
    /// sorted by line address so downstream effects are deterministic.
    pub fn drain_sorted(&mut self) -> Vec<(LineAddr, E)> {
        let mut v: Vec<(LineAddr, E)> = self
            .entries
            .drain()
            .map(|(addr, (e, _))| (addr, e))
            .collect();
        v.sort_by_key(|(addr, _)| *addr);
        v
    }

    /// Applies `f` to every entry, in address order (deterministic).
    pub fn for_each_sorted(&mut self, mut f: impl FnMut(LineAddr, &mut E)) {
        let mut addrs: Vec<LineAddr> = self.entries.keys().copied().collect();
        addrs.sort_unstable();
        for addr in addrs {
            let (e, _) = self.entries.get_mut(&addr).expect("key just listed");
            f(addr, e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_and_release() {
        let mut m: MshrFile<Vec<u32>> = MshrFile::new(2, 4);
        m.allocate(LineAddr(1), vec![10]).unwrap();
        assert!(m.contains(LineAddr(1)));
        assert_eq!(m.get(LineAddr(1)).unwrap(), &vec![10]);
        assert_eq!(m.release(LineAddr(1)).unwrap(), vec![10]);
        assert!(!m.contains(LineAddr(1)));
        assert!(m.release(LineAddr(1)).is_none());
    }

    #[test]
    fn capacity_enforced() {
        let mut m: MshrFile<()> = MshrFile::new(2, 1);
        m.allocate(LineAddr(1), ()).unwrap();
        m.allocate(LineAddr(2), ()).unwrap();
        assert!(m.is_full());
        assert_eq!(m.allocate(LineAddr(3), ()), Err(MshrRejection::Full));
        m.release(LineAddr(1));
        m.allocate(LineAddr(3), ()).unwrap();
    }

    #[test]
    fn merge_updates_entry_up_to_cap() {
        let mut m: MshrFile<Vec<u32>> = MshrFile::new(1, 3);
        m.allocate(LineAddr(5), vec![1]).unwrap();
        m.merge(LineAddr(5), |e| e.push(2)).unwrap();
        m.merge(LineAddr(5), |e| e.push(3)).unwrap();
        assert_eq!(
            m.merge(LineAddr(5), |e| e.push(4)),
            Err(MshrRejection::MergeListFull)
        );
        assert_eq!(m.get(LineAddr(5)).unwrap(), &vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "double-allocation")]
    fn double_allocate_is_a_bug() {
        let mut m: MshrFile<()> = MshrFile::new(4, 1);
        m.allocate(LineAddr(1), ()).unwrap();
        let _ = m.allocate(LineAddr(1), ());
    }

    #[test]
    #[should_panic(expected = "missing entry")]
    fn merge_into_missing_is_a_bug() {
        let mut m: MshrFile<()> = MshrFile::new(4, 2);
        let _ = m.merge(LineAddr(1), |_| ());
    }

    #[test]
    fn chaos_squeeze_rejects_transiently() {
        use rcc_chaos::{ChaosProfile, ChaosSpec, Perturber};
        let mut squeeze = ChaosProfile::light();
        squeeze.mshr_squeeze_p = 1.0;
        let spec = ChaosSpec::new(1, squeeze);
        let mut m: MshrFile<()> = MshrFile::new(4, 2);
        m.set_chaos(Box::new(Perturber::standalone(&spec, 0)));
        // Empty file, but every allocate/merge is squeezed.
        assert_eq!(m.allocate(LineAddr(1), ()), Err(MshrRejection::Full));
        assert!(m.is_empty());
        // With p = 0 the hook is transparent.
        let spec = ChaosSpec::new(1, ChaosProfile::reorder());
        m.set_chaos(Box::new(Perturber::standalone(&spec, 0)));
        m.allocate(LineAddr(1), ()).unwrap();
        m.merge(LineAddr(1), |_| ()).unwrap();
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut m: MshrFile<()> = MshrFile::new(8, 1);
        m.allocate(LineAddr(1), ()).unwrap();
        m.allocate(LineAddr(2), ()).unwrap();
        m.release(LineAddr(1));
        m.allocate(LineAddr(3), ()).unwrap();
        assert_eq!(m.high_water(), 2);
    }

    #[test]
    fn drain_sorted_is_ordered() {
        let mut m: MshrFile<u32> = MshrFile::new(8, 1);
        for a in [5u64, 1, 3] {
            m.allocate(LineAddr(a), a as u32).unwrap();
        }
        let drained = m.drain_sorted();
        assert_eq!(
            drained,
            vec![(LineAddr(1), 1), (LineAddr(3), 3), (LineAddr(5), 5)]
        );
        assert!(m.is_empty());
    }

    #[test]
    fn for_each_sorted_visits_all_in_order() {
        let mut m: MshrFile<u32> = MshrFile::new(8, 1);
        for a in [9u64, 2, 4] {
            m.allocate(LineAddr(a), 0).unwrap();
        }
        let mut seen = Vec::new();
        m.for_each_sorted(|addr, e| {
            *e += 1;
            seen.push(addr.0);
        });
        assert_eq!(seen, vec![2, 4, 9]);
        assert_eq!(m.get(LineAddr(9)), Some(&1));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;
        use std::collections::HashMap;

        #[derive(Debug, Clone)]
        enum Op {
            Allocate(u64),
            Merge(u64),
            Release(u64),
        }

        fn op_strategy() -> impl Strategy<Value = Op> {
            prop_oneof![
                (0u64..8).prop_map(Op::Allocate),
                (0u64..8).prop_map(Op::Merge),
                (0u64..8).prop_map(Op::Release),
            ]
        }

        proptest! {
            /// Model-check MshrFile against a plain map: residency,
            /// merge counts, capacity and merge-cap rejections all agree.
            #[test]
            fn matches_reference_model(
                ops in proptest::collection::vec(op_strategy(), 1..60),
                capacity in 1usize..5,
                merge_cap in 1usize..4,
            ) {
                let mut m: MshrFile<usize> = MshrFile::new(capacity, merge_cap);
                // Reference: addr -> merge count (1 = just allocated).
                let mut model: HashMap<u64, usize> = HashMap::new();
                for op in ops {
                    match op {
                        // Allocating over an existing entry and merging
                        // into a missing one are caller bugs (they
                        // panic), so the model steers around them the
                        // way controllers do: check `contains` first.
                        Op::Allocate(a) => {
                            if model.contains_key(&a) {
                                continue;
                            }
                            let r = m.allocate(LineAddr(a), 1);
                            if model.len() == capacity {
                                prop_assert_eq!(r, Err(MshrRejection::Full));
                            } else {
                                prop_assert!(r.is_ok());
                                model.insert(a, 1);
                            }
                        }
                        Op::Merge(a) => {
                            if !model.contains_key(&a) {
                                continue;
                            }
                            let r = m.merge(LineAddr(a), |e| *e += 1);
                            match model.get_mut(&a) {
                                Some(n) if *n >= merge_cap => {
                                    prop_assert_eq!(r, Err(MshrRejection::MergeListFull));
                                }
                                Some(n) => {
                                    prop_assert!(r.is_ok());
                                    *n += 1;
                                }
                                None => unreachable!(),
                            }
                        }
                        Op::Release(a) => {
                            let got = m.release(LineAddr(a));
                            prop_assert_eq!(got, model.remove(&a));
                        }
                    }
                    prop_assert_eq!(m.len(), model.len());
                    prop_assert_eq!(m.is_full(), model.len() == capacity);
                    for (&a, &n) in &model {
                        prop_assert_eq!(m.get(LineAddr(a)), Some(&n));
                    }
                }
            }
        }
    }
}
