#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Cache building blocks: line data, set-associative tag arrays, and MSHR
//! files.
//!
//! These structures are protocol-agnostic: each tag-array line carries a
//! protocol-defined metadata value (the coherence state plus timestamps),
//! and each MSHR entry carries a protocol-defined record (merge lists,
//! `lastrd`/`lastwr` logical times, pending store data). The protocols in
//! `rcc-core` instantiate them for their own state types.
//!
//! # Example
//!
//! ```
//! use rcc_common::addr::LineAddr;
//! use rcc_mem::{LineData, TagArray};
//!
//! let mut tags: TagArray<u8> = TagArray::new(4, 2);
//! tags.fill(LineAddr(12), 0u8, LineData::zeroed(), false, |_, _| true).unwrap();
//! assert!(tags.probe(LineAddr(12)).is_some());
//! ```

pub mod data;
pub mod mshr;
pub mod tag_array;

pub use data::LineData;
pub use mshr::{MshrFile, MshrRejection};
pub use tag_array::{Evicted, Line, TagArray};
