//! Cache line payloads.
//!
//! The simulator tracks data values at 4-byte-word granularity so the
//! consistency scoreboard and litmus tests can check *which write* every
//! load observed. A word value is a `u64` token: workloads encode
//! (core, warp, sequence) into store tokens, and lock words hold small
//! integers that atomics operate on.

use rcc_common::addr::{WordAddr, WORDS_PER_LINE};
use std::fmt;

/// The data payload of one 128-byte cache line: 32 word values.
#[derive(Clone, PartialEq, Eq)]
pub struct LineData {
    words: [u64; WORDS_PER_LINE],
}

impl LineData {
    /// A line with all words zero (the initial value of all memory).
    pub fn zeroed() -> Self {
        LineData {
            words: [0; WORDS_PER_LINE],
        }
    }

    /// Reads the word at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= WORDS_PER_LINE`.
    #[inline]
    pub fn word(&self, idx: usize) -> u64 {
        self.words[idx]
    }

    /// Writes the word at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= WORDS_PER_LINE`.
    #[inline]
    pub fn set_word(&mut self, idx: usize, value: u64) {
        self.words[idx] = value;
    }

    /// Reads the word for a full [`WordAddr`] (the caller guarantees the
    /// word is in this line).
    #[inline]
    pub fn word_at(&self, addr: WordAddr) -> u64 {
        self.words[addr.line_word_index()]
    }

    /// Writes the word for a full [`WordAddr`].
    #[inline]
    pub fn set_word_at(&mut self, addr: WordAddr, value: u64) {
        self.words[addr.line_word_index()] = value;
    }

    /// Iterates over (index, value) pairs of non-zero words.
    pub fn nonzero_words(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.words
            .iter()
            .enumerate()
            .filter(|(_, &v)| v != 0)
            .map(|(i, &v)| (i, v))
    }

    /// Folds every word of the line into a cross-component state digest
    /// (raw values, not the sparse `Debug` rendering).
    pub fn digest_state(&self, d: &mut rcc_common::snap::StateDigest) {
        for &w in &self.words {
            d.write_u64(w);
        }
    }
}

impl Default for LineData {
    fn default() -> Self {
        Self::zeroed()
    }
}

impl fmt::Debug for LineData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Only show non-zero words; most lines are sparse in practice.
        let mut map = f.debug_map();
        for (i, v) in self.nonzero_words() {
            map.entry(&i, &v);
        }
        map.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcc_common::addr::Addr;

    #[test]
    fn zeroed_line_reads_zero() {
        let line = LineData::zeroed();
        for i in 0..WORDS_PER_LINE {
            assert_eq!(line.word(i), 0);
        }
    }

    #[test]
    fn word_roundtrip() {
        let mut line = LineData::zeroed();
        line.set_word(4, 0xdead_beef);
        assert_eq!(line.word(4), 0xdead_beef);
        assert_eq!(line.word(5), 0);
    }

    #[test]
    fn word_addr_roundtrip() {
        let mut line = LineData::zeroed();
        let w = Addr(128 * 3 + 16).word();
        line.set_word_at(w, 77);
        assert_eq!(line.word_at(w), 77);
        assert_eq!(line.word(w.line_word_index()), 77);
    }

    #[test]
    fn debug_shows_only_nonzero() {
        let mut line = LineData::zeroed();
        line.set_word(2, 9);
        let s = format!("{line:?}");
        assert!(s.contains('2') && s.contains('9'));
        assert_eq!(format!("{:?}", LineData::zeroed()), "{}");
    }

    #[test]
    fn nonzero_iteration() {
        let mut line = LineData::zeroed();
        line.set_word(0, 1);
        line.set_word(31, 2);
        let v: Vec<_> = line.nonzero_words().collect();
        assert_eq!(v, vec![(0, 1), (31, 2)]);
    }
}
