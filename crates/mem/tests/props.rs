//! Property-based tests for the cache building blocks.

use proptest::prelude::*;
use rcc_common::addr::LineAddr;
use rcc_mem::{LineData, MshrFile, TagArray};
use std::collections::HashSet;

proptest! {
    /// After any fill sequence, the array never holds duplicates, never
    /// exceeds capacity, and every most-recently-filled line that was not
    /// displaced is still findable.
    #[test]
    fn tag_array_structural_invariants(
        sets in 1usize..8,
        ways in 1usize..8,
        addrs in prop::collection::vec(0u64..64, 1..200),
    ) {
        let mut tags: TagArray<u32> = TagArray::new(sets, ways);
        for (i, a) in addrs.iter().enumerate() {
            let _ = tags.fill(LineAddr(*a), i as u32, LineData::zeroed(), false, |_, _| true);
            prop_assert!(tags.len() <= sets * ways);
            prop_assert!(tags.probe(LineAddr(*a)).is_some(), "just-filled line resident");
        }
        let mut seen = HashSet::new();
        for line in tags.iter() {
            prop_assert!(seen.insert(line.addr), "duplicate resident line");
        }
    }

    /// With stride S, lines that differ only in their partition bits land
    /// in the same set; the array still distinguishes them by tag.
    #[test]
    fn tag_array_stride_keeps_distinct_tags(
        stride in 1u64..9,
        base in 0u64..32,
    ) {
        let mut tags: TagArray<u8> = TagArray::with_stride(4, 8, stride);
        for p in 0..stride.min(4) {
            let line = LineAddr(base * stride + p);
            tags.fill(line, p as u8, LineData::zeroed(), false, |_, _| true).unwrap();
        }
        for p in 0..stride.min(4) {
            let line = LineAddr(base * stride + p);
            prop_assert_eq!(tags.probe(line).unwrap().state, p as u8);
        }
    }

    /// Alloc/merge/release sequences keep occupancy within capacity and
    /// merges never exceed the merge cap.
    #[test]
    fn mshr_capacity_and_merge_caps(
        capacity in 1usize..8,
        merge_cap in 1usize..6,
        ops in prop::collection::vec((0u64..16, 0u8..3), 1..200),
    ) {
        let mut m: MshrFile<u32> = MshrFile::new(capacity, merge_cap);
        let mut merges = std::collections::HashMap::new();
        for (addr, op) in ops {
            let line = LineAddr(addr);
            match op {
                0 => {
                    if !m.contains(line) && m.allocate(line, 0).is_ok() {
                        merges.insert(line, 1usize);
                    }
                }
                1 => {
                    if m.contains(line) {
                        let before = merges[&line];
                        let ok = m.merge(line, |e| *e += 1).is_ok();
                        if ok {
                            *merges.get_mut(&line).unwrap() += 1;
                        }
                        prop_assert_eq!(ok, before < merge_cap);
                    }
                }
                _ => {
                    m.release(line);
                    merges.remove(&line);
                }
            }
            prop_assert!(m.len() <= capacity);
        }
    }
}
