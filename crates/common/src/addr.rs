//! Byte, word, and cache-line addresses.
//!
//! The simulated machine uses 128-byte cache lines (Table III) and tracks
//! data values at 4-byte word granularity, which is what the consistency
//! scoreboard and the litmus tests operate on.

use std::fmt;

/// Cache line size in bytes (Table III: 128-byte lines for both L1 and L2).
pub const LINE_BYTES: u64 = 128;

/// Word size in bytes; data values are tracked per 32-bit word.
pub const WORD_BYTES: u64 = 4;

/// Number of words in a cache line.
pub const WORDS_PER_LINE: usize = (LINE_BYTES / WORD_BYTES) as usize;

/// A byte address in the simulated global memory space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// The cache line containing this address.
    #[inline]
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 / LINE_BYTES)
    }

    /// The 4-byte word containing this address.
    #[inline]
    pub fn word(self) -> WordAddr {
        WordAddr(self.0 / WORD_BYTES)
    }

    /// Byte offset within the cache line.
    #[inline]
    pub fn line_offset(self) -> u64 {
        self.0 % LINE_BYTES
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

/// A cache-line-granular address (byte address divided by [`LINE_BYTES`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// First byte address of this line.
    #[inline]
    pub fn base(self) -> Addr {
        Addr(self.0 * LINE_BYTES)
    }

    /// The `idx`-th word of this line (`idx < WORDS_PER_LINE`).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= WORDS_PER_LINE`.
    #[inline]
    pub fn word(self, idx: usize) -> WordAddr {
        assert!(idx < WORDS_PER_LINE, "word index {idx} out of line");
        WordAddr(self.0 * WORDS_PER_LINE as u64 + idx as u64)
    }

    /// Cache set index for a cache with `num_sets` sets.
    #[inline]
    pub fn set_index(self, num_sets: usize) -> usize {
        (self.0 % num_sets as u64) as usize
    }

    /// Memory/L2 partition that owns this line, for `num_partitions`
    /// line-interleaved partitions (Table III: 8 partitions).
    ///
    /// The partition bits are taken *above* the set-index bits of the L2 so
    /// that consecutive lines spread across partitions, matching the
    /// address hashing GPGPU-Sim uses for Fermi.
    #[inline]
    pub fn partition(self, num_partitions: usize) -> usize {
        (self.0 % num_partitions as u64) as usize
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L0x{:x}", self.0)
    }
}

/// A word-granular address (byte address divided by [`WORD_BYTES`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct WordAddr(pub u64);

impl WordAddr {
    /// The cache line containing this word.
    #[inline]
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 / WORDS_PER_LINE as u64)
    }

    /// Index of this word within its cache line.
    #[inline]
    pub fn line_word_index(self) -> usize {
        (self.0 % WORDS_PER_LINE as u64) as usize
    }

    /// First byte address of this word.
    #[inline]
    pub fn base(self) -> Addr {
        Addr(self.0 * WORD_BYTES)
    }
}

impl fmt::Display for WordAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "W0x{:x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_decomposition() {
        let a = Addr(128 * 5 + 17);
        assert_eq!(a.line(), LineAddr(5));
        assert_eq!(a.line_offset(), 17);
        assert_eq!(a.line().base(), Addr(128 * 5));
    }

    #[test]
    fn word_decomposition() {
        let a = Addr(128 * 5 + 16);
        let w = a.word();
        assert_eq!(w.line(), LineAddr(5));
        assert_eq!(w.line_word_index(), 4);
        assert_eq!(w.base(), a);
    }

    #[test]
    fn words_per_line_matches_config() {
        assert_eq!(WORDS_PER_LINE, 32);
        assert_eq!(LineAddr(3).word(0).line(), LineAddr(3));
        assert_eq!(LineAddr(3).word(31).line(), LineAddr(3));
    }

    #[test]
    #[should_panic(expected = "out of line")]
    fn word_index_bounds_checked() {
        let _ = LineAddr(0).word(32);
    }

    #[test]
    fn partition_interleaving_covers_all() {
        let mut seen = [false; 8];
        for i in 0..8 {
            seen[LineAddr(i).partition(8)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "consecutive lines hit all partitions"
        );
    }

    #[test]
    fn set_index_in_range() {
        for i in 0..1000 {
            assert!(LineAddr(i).set_index(64) < 64);
        }
    }
}
