//! A small, fast, deterministic PRNG (PCG-XSH-RR 32).
//!
//! Whole-system simulations must be reproducible from a seed so that every
//! figure in EXPERIMENTS.md can be regenerated bit-identically; `Pcg32`
//! keeps the hot path free of trait dispatch. The `rand` crate is still
//! used in tests and property-based tests where ergonomics matter more.

/// PCG-XSH-RR with 64-bit state and 32-bit output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

impl Pcg32 {
    /// Creates a generator from a seed and a stream selector.
    pub fn new(seed: u64, stream: u64) -> Self {
        let mut rng = Pcg32 {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Creates a generator from a seed on the default stream.
    pub fn seeded(seed: u64) -> Self {
        Self::new(seed, 0xda3e_39cb_94b9_5bdb)
    }

    /// Next 32 random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }

    /// Uniform value in `[0, bound)` using Lemire-style rejection.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // 64-bit multiply-shift; bias is negligible for simulation purposes
        // but we reject to keep the distribution exactly uniform.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u64();
            let (hi, lo) = {
                let wide = (r as u128) * (bound as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= threshold {
                return hi;
            }
        }
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Bernoulli draw: true with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        (self.next_u32() as f64) < p * (u32::MAX as f64 + 1.0)
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    #[inline]
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot pick from empty slice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Pcg32::seeded(42);
        let mut b = Pcg32::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Pcg32::seeded(1);
        let mut b = Pcg32::seeded(2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4);
    }

    #[test]
    fn below_is_in_range() {
        let mut rng = Pcg32::seeded(7);
        for bound in [1, 2, 3, 10, 1000, u32::MAX as u64] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_covers_small_ranges() {
        let mut rng = Pcg32::seeded(11);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Pcg32::seeded(3);
        assert!((0..100).all(|_| rng.chance(1.0)));
        assert!((0..100).all(|_| !rng.chance(0.0)));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut rng = Pcg32::seeded(5);
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits} hits of 25%");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Pcg32::seeded(9);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_panics() {
        Pcg32::seeded(0).below(0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// `below(n)` stays in range and the generator is
            /// deterministic per (seed, stream).
            #[test]
            fn below_in_range_and_deterministic(
                seed: u64, stream: u64, bound in 1u64..1_000_000, n in 1usize..50,
            ) {
                let mut a = Pcg32::new(seed, stream);
                let mut b = Pcg32::new(seed, stream);
                for _ in 0..n {
                    let x = a.below(bound);
                    prop_assert!(x < bound);
                    prop_assert_eq!(x, b.below(bound));
                }
            }

            /// Different streams from the same seed diverge (the whole
            /// point of the stream parameter).
            #[test]
            fn streams_diverge(seed: u64) {
                let mut a = Pcg32::new(seed, 1);
                let mut b = Pcg32::new(seed, 2);
                let same = (0..16).all(|_| a.next_u32() == b.next_u32());
                prop_assert!(!same);
            }

            /// `range(lo, hi)` is inclusive-exclusive and in bounds.
            #[test]
            fn range_in_bounds(seed: u64, lo in 0u64..1000, width in 1u64..1000) {
                let mut r = Pcg32::seeded(seed);
                let x = r.range(lo, lo + width);
                prop_assert!(x >= lo && x < lo + width);
            }
        }
    }
}
