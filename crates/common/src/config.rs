//! Machine configuration, reproducing Table III of the paper.
//!
//! The default [`GpuConfig::gtx480`] models NVIDIA's GTX 480 (Fermi) with
//! latencies from the microbenchmark study the paper cites [Wong et al.,
//! ISPASS 2010]: 16 SMs at 1.4 GHz with 48 warps of 32 threads each,
//! 32 KB 4-way write-through L1s, a 1 MB L2 in 8 partitions, a flit-level
//! crossbar NoC at 700 MHz, and GDDR DRAM with FR-FCFS scheduling.
//!
//! Tests use [`GpuConfig::small`], a scaled-down machine with the same
//! structure, so that full-system simulations stay fast in debug builds.

/// Parameters of one cache (an L1 or one L2 partition).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheParams {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (128 in Table III).
    pub line_bytes: usize,
    /// Number of MSHR entries.
    pub mshrs: usize,
    /// Maximum merged requests per MSHR entry.
    pub mshr_merge: usize,
    /// Access (tag + data) latency in core cycles.
    pub latency: u64,
}

impl CacheParams {
    /// Number of sets implied by size / (ways × line).
    pub fn num_sets(&self) -> usize {
        self.size_bytes / (self.ways * self.line_bytes)
    }

    /// Number of lines in the cache.
    pub fn num_lines(&self) -> usize {
        self.size_bytes / self.line_bytes
    }
}

/// L2 organization: `num_partitions` independent banks, line-interleaved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct L2Params {
    /// Number of L2 partitions (each paired with a memory channel).
    pub num_partitions: usize,
    /// Per-partition cache parameters.
    pub partition: CacheParams,
}

/// Interconnect topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NocTopology {
    /// One crossbar per direction (Table III's configuration).
    #[default]
    Crossbar,
    /// 2D mesh with XY dimension-order routing; cores and L2 partitions
    /// are interleaved over a near-square grid. Hop count scales both
    /// latency and the dynamic energy of Fig. 9b.
    Mesh,
}

/// Interconnect parameters (Table III: one crossbar per direction, one
/// 32-bit flit per cycle per direction at 700 MHz).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NocParams {
    /// Topology.
    pub topology: NocTopology,
    /// Flit width in bytes.
    pub flit_bytes: usize,
    /// Core cycles per NoC cycle (1400 MHz core / 700 MHz NoC = 2).
    pub core_cycles_per_noc_cycle: u64,
    /// Zero-load traversal latency in NoC cycles (crossbar + buffering).
    pub traversal_latency: u64,
    /// Buffer depth per virtual channel, in flits (8 in Table III).
    pub vc_buffer_flits: usize,
    /// Control-message payload size in bytes (header + address + timestamps).
    pub control_bytes: usize,
}

/// GDDR DRAM timing (Table III), in DRAM cycles unless noted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DramParams {
    /// Core cycles per DRAM cycle (1400 MHz core vs 1400 MHz GDDR command
    /// clock in Table III — ratio 1, with 8 bytes transferred per cycle).
    pub core_cycles_per_dram_cycle: u64,
    /// Data bus bytes per DRAM cycle (8 in Table III, 175 GB/s peak).
    pub bytes_per_cycle: usize,
    /// Minimum total latency in core cycles for a DRAM access, including
    /// controller queues (460 in Table III).
    pub min_latency: u64,
    /// Banks per memory partition.
    pub banks: usize,
    /// Row size in bytes.
    pub row_bytes: usize,
    /// CAS latency.
    pub t_cl: u64,
    /// Row precharge.
    pub t_rp: u64,
    /// Row cycle.
    pub t_rc: u64,
    /// Row active time.
    pub t_ras: u64,
    /// Column-to-column delay.
    pub t_ccd: u64,
    /// Write latency.
    pub t_wl: u64,
    /// RAS-to-CAS delay.
    pub t_rcd: u64,
    /// Row-to-row activation delay.
    pub t_rrd: u64,
    /// Last-data to read command (write-to-read turnaround).
    pub t_cdlr: u64,
    /// Write recovery.
    pub t_wr: u64,
}

/// Parameters specific to the RCC protocol (Section III).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RccParams {
    /// Minimum predicted lease (8 in Section III-E).
    pub lease_min: u64,
    /// Maximum / initial predicted lease (2048 in Section III-E).
    pub lease_max: u64,
    /// If set, disables the predictor and uses this fixed lease everywhere.
    pub fixed_lease: Option<u64>,
    /// Enables the lease-extension (RENEW) mechanism (Section III-E).
    pub renew_enabled: bool,
    /// Enables the per-block lease predictor (Section III-E); when
    /// disabled, all leases are `lease_max`.
    pub predictor_enabled: bool,
    /// Timestamp value at which the rollover/flush protocol of
    /// Section III-D triggers. Hardware uses 32-bit timestamps; tests use
    /// tiny thresholds to exercise rollover frequently.
    pub rollover_threshold: u64,
    /// Cores bump their logical `now` by 1 every this many cycles to break
    /// read-only spin livelock (Section III-E, "Potential livelock";
    /// the paper suggests 1 every 10,000 cycles).
    pub livelock_bump_interval: u64,
}

impl Default for RccParams {
    fn default() -> Self {
        RccParams {
            lease_min: 8,
            lease_max: 2048,
            fixed_lease: None,
            renew_enabled: true,
            predictor_enabled: true,
            rollover_threshold: u32::MAX as u64,
            livelock_bump_interval: 10_000,
        }
    }
}

/// Parameters for the physical-timestamp baselines TC-Strong and TC-Weak
/// (Singh et al., HPCA 2013).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcParams {
    /// Initial per-line read lease in core cycles.
    pub lease_cycles: u64,
    /// Lower bound of the per-line lifetime predictor.
    pub lease_min: u64,
    /// Upper bound of the per-line lifetime predictor.
    pub lease_max: u64,
}

impl Default for TcParams {
    fn default() -> Self {
        // The TC paper pairs its fixed-lease baseline with a per-line
        // lifetime predictor: leases grow additively while a line is only
        // read and halve whenever a write finds an unexpired lease, so
        // read-only data caches well while write-shared lines stop
        // stalling TC-Strong stores.
        TcParams {
            lease_cycles: 6144,
            lease_min: 16,
            lease_max: 16384,
        }
    }
}

/// Full machine configuration (Table III).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GpuConfig {
    /// Number of SM cores (16).
    pub num_cores: usize,
    /// Warp contexts per core (48).
    pub warps_per_core: usize,
    /// Threads per warp (32).
    pub threads_per_warp: usize,
    /// Private L1 data cache (32 KB, 4-way, 128 B lines, 128 MSHRs).
    pub l1: CacheParams,
    /// Shared L2 (8 × 128 KB, 8-way, 128 B lines, 128 MSHRs; 340-cycle
    /// minimum round-trip latency).
    pub l2: L2Params,
    /// Interconnect.
    pub noc: NocParams,
    /// DRAM.
    pub dram: DramParams,
    /// RCC-specific knobs.
    pub rcc: RccParams,
    /// TC-Strong / TC-Weak knobs.
    pub tc: TcParams,
    /// Simulation safety valve: abort if no instruction retires for this
    /// many cycles (deadlock/livelock watchdog).
    pub watchdog_cycles: u64,
}

impl GpuConfig {
    /// The paper's simulated machine (Table III): GTX 480-like.
    pub fn gtx480() -> Self {
        GpuConfig {
            num_cores: 16,
            warps_per_core: 48,
            threads_per_warp: 32,
            l1: CacheParams {
                size_bytes: 32 * 1024,
                ways: 4,
                line_bytes: 128,
                mshrs: 128,
                mshr_merge: 8,
                latency: 1,
            },
            l2: L2Params {
                num_partitions: 8,
                partition: CacheParams {
                    size_bytes: 128 * 1024,
                    ways: 8,
                    line_bytes: 128,
                    mshrs: 128,
                    mshr_merge: 8,
                    // Table III gives a 340-cycle *minimum round trip* to
                    // L2; the round trip decomposes as NoC request
                    // serialization + traversal, L2 pipeline, and the reply
                    // path. The L2 pipeline occupies the remainder.
                    latency: 120,
                },
            },
            noc: NocParams {
                topology: NocTopology::Crossbar,
                flit_bytes: 4,
                core_cycles_per_noc_cycle: 2,
                traversal_latency: 50,
                vc_buffer_flits: 8,
                control_bytes: 8,
            },
            dram: DramParams {
                core_cycles_per_dram_cycle: 1,
                bytes_per_cycle: 8,
                min_latency: 460,
                banks: 16,
                row_bytes: 2048,
                t_cl: 12,
                t_rp: 12,
                t_rc: 40,
                t_ras: 28,
                t_ccd: 2,
                t_wl: 4,
                t_rcd: 12,
                t_rrd: 6,
                t_cdlr: 5,
                t_wr: 12,
            },
            rcc: RccParams::default(),
            tc: TcParams::default(),
            watchdog_cycles: 2_000_000,
        }
    }

    /// A scaled-down machine with the same structure, for fast tests:
    /// 4 cores × 8 warps, 4 KB L1s, 2 × 16 KB L2 partitions, short
    /// latencies.
    pub fn small() -> Self {
        GpuConfig {
            num_cores: 4,
            warps_per_core: 8,
            threads_per_warp: 32,
            l1: CacheParams {
                size_bytes: 4 * 1024,
                ways: 4,
                line_bytes: 128,
                mshrs: 16,
                mshr_merge: 8,
                latency: 1,
            },
            l2: L2Params {
                num_partitions: 2,
                partition: CacheParams {
                    size_bytes: 16 * 1024,
                    ways: 8,
                    line_bytes: 128,
                    mshrs: 16,
                    mshr_merge: 8,
                    latency: 12,
                },
            },
            noc: NocParams {
                topology: NocTopology::Crossbar,
                flit_bytes: 4,
                core_cycles_per_noc_cycle: 2,
                traversal_latency: 6,
                vc_buffer_flits: 8,
                control_bytes: 8,
            },
            dram: DramParams {
                core_cycles_per_dram_cycle: 1,
                bytes_per_cycle: 8,
                min_latency: 60,
                banks: 4,
                row_bytes: 1024,
                t_cl: 6,
                t_rp: 6,
                t_rc: 20,
                t_ras: 14,
                t_ccd: 2,
                t_wl: 2,
                t_rcd: 6,
                t_rrd: 3,
                t_cdlr: 3,
                t_wr: 6,
            },
            rcc: RccParams::default(),
            tc: TcParams {
                lease_cycles: 200,
                ..TcParams::default()
            },
            watchdog_cycles: 500_000,
        }
    }

    /// Total number of warps in the machine.
    pub fn total_warps(&self) -> usize {
        self.num_cores * self.warps_per_core
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig::gtx480()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_constants() {
        let cfg = GpuConfig::gtx480();
        assert_eq!(cfg.num_cores, 16);
        assert_eq!(cfg.warps_per_core, 48);
        assert_eq!(cfg.threads_per_warp, 32);
        assert_eq!(cfg.l1.size_bytes, 32 * 1024);
        assert_eq!(cfg.l1.ways, 4);
        assert_eq!(cfg.l1.line_bytes, 128);
        assert_eq!(cfg.l1.mshrs, 128);
        assert_eq!(cfg.l2.num_partitions, 8);
        assert_eq!(cfg.l2.partition.size_bytes, 128 * 1024);
        assert_eq!(cfg.l2.partition.ways, 8);
        assert_eq!(
            cfg.l2.num_partitions * cfg.l2.partition.size_bytes,
            1024 * 1024,
            "total L2 is 1 MB"
        );
        assert_eq!(cfg.dram.min_latency, 460);
        assert_eq!(cfg.dram.bytes_per_cycle, 8);
        assert_eq!(cfg.noc.flit_bytes, 4);
        // GDDR timing row from Table III.
        assert_eq!(cfg.dram.t_cl, 12);
        assert_eq!(cfg.dram.t_rp, 12);
        assert_eq!(cfg.dram.t_rc, 40);
        assert_eq!(cfg.dram.t_ras, 28);
    }

    #[test]
    fn rcc_lease_bounds_match_section_iii_e() {
        let rcc = RccParams::default();
        assert_eq!(rcc.lease_min, 8);
        assert_eq!(rcc.lease_max, 2048);
        assert!(rcc.renew_enabled && rcc.predictor_enabled);
        assert_eq!(rcc.rollover_threshold, u32::MAX as u64);
    }

    #[test]
    fn cache_geometry() {
        let cfg = GpuConfig::gtx480();
        assert_eq!(cfg.l1.num_sets(), 64);
        assert_eq!(cfg.l1.num_lines(), 256);
        assert_eq!(cfg.l2.partition.num_sets(), 128);
    }

    #[test]
    fn small_config_is_structurally_same() {
        let cfg = GpuConfig::small();
        assert!(cfg.num_cores >= 2, "needs ≥2 cores for sharing tests");
        assert!(cfg.l2.num_partitions >= 2);
        assert_eq!(cfg.l1.line_bytes, 128);
        assert!(cfg.total_warps() >= 16);
    }
}
