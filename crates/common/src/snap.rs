//! Versioned binary snapshot codec and cross-component state digest.
//!
//! The checkpoint format (see `rcc-sim`'s `checkpoint` module) is a
//! little-endian byte stream written with [`SnapWriter`] and read back
//! with [`SnapReader`]. The workspace carries no serialization
//! dependencies, so the codec is deliberately tiny: fixed-width integers,
//! length-prefixed strings and byte blobs, and `Result`-based decoding so
//! a truncated or corrupted snapshot surfaces as a typed error instead of
//! a panic.
//!
//! [`StateDigest`] is the companion attestation primitive: an FNV-1a
//! 64-bit accumulator every simulated component folds its
//! architectural state into. Two `System`s built from the same inputs and
//! stepped to the same cycle produce the same digest; checkpoint restore
//! verifies the digest before continuing, and hang-dumps embed it so a
//! replay can prove it reconstructed the stuck state.

/// Error produced when decoding a snapshot fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapError(pub String);

impl std::fmt::Display for SnapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "snapshot decode error: {}", self.0)
    }
}

impl std::error::Error for SnapError {}

/// Little-endian binary writer for snapshot payloads.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// A fresh, empty writer.
    pub fn new() -> Self {
        SnapWriter::default()
    }

    /// Consumes the writer into its byte buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Writes a `u32` little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64` little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` as its IEEE-754 bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes an `Option<u64>` as a presence byte plus the value.
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.bool(true);
                self.u64(x);
            }
            None => self.bool(false),
        }
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes a length-prefixed byte blob.
    pub fn bytes(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }
}

/// Little-endian binary reader over a snapshot payload.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError(format!(
                "truncated reading {what}: need {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a bool (rejecting anything but 0 or 1).
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.take(1, "bool")?[0] {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapError(format!("invalid bool byte {other}"))),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes(b.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads an `Option<u64>` written by [`SnapWriter::opt_u64`].
    pub fn opt_u64(&mut self) -> Result<Option<u64>, SnapError> {
        if self.bool()? {
            Ok(Some(self.u64()?))
        } else {
            Ok(None)
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapError> {
        let n = self.u32()? as usize;
        let b = self.take(n, "string")?;
        String::from_utf8(b.to_vec()).map_err(|e| SnapError(format!("invalid UTF-8 string: {e}")))
    }

    /// Reads a length-prefixed byte blob.
    pub fn bytes(&mut self) -> Result<Vec<u8>, SnapError> {
        let n = self.u32()? as usize;
        Ok(self.take(n, "bytes")?.to_vec())
    }

    /// Asserts the whole payload was consumed.
    pub fn done(&self) -> Result<(), SnapError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapError(format!(
                "{} trailing bytes after snapshot payload",
                self.remaining()
            )))
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit accumulator for cross-component state attestation.
///
/// Components fold their state in via the typed `write_*` methods;
/// [`StateDigest::write_debug`] streams a value's `Debug` rendering
/// through the hash without allocating, which covers deep structures
/// (controllers, MSHR files, PRNG streams) in one line. `Debug` output is
/// stable for a given binary, and the in-repo hash maps iterate in
/// insertion order under deterministic replay, so equal histories imply
/// equal digests.
#[must_use = "a digest is only useful compared against another"]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateDigest {
    h: u64,
}

impl Default for StateDigest {
    fn default() -> Self {
        StateDigest::new()
    }
}

impl StateDigest {
    /// A fresh digest at the FNV offset basis.
    pub fn new() -> Self {
        StateDigest { h: FNV_OFFSET }
    }

    /// Folds raw bytes into the digest.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.h ^= b as u64;
            self.h = self.h.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds a `u64` (little-endian) into the digest.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Folds a string (with a terminator so concatenations can't
    /// collide) into the digest.
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
        self.write_bytes(&[0xff]);
    }

    /// Streams `value`'s `Debug` rendering through the digest without
    /// building the intermediate string.
    pub fn write_debug<T: std::fmt::Debug + ?Sized>(&mut self, value: &T) {
        use std::fmt::Write as _;
        let mut sink = FnvSink(self);
        let _ = write!(sink, "{value:?}");
        self.write_bytes(&[0xff]);
    }

    /// The current digest value.
    pub fn finish(&self) -> u64 {
        self.h
    }
}

struct FnvSink<'a>(&'a mut StateDigest);

impl std::fmt::Write for FnvSink<'_> {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.0.write_bytes(s.as_bytes());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_round_trips() {
        let mut w = SnapWriter::new();
        w.u8(7);
        w.bool(true);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 3);
        w.f64(1.5);
        w.opt_u64(Some(42));
        w.opt_u64(None);
        w.str("hello snapshot");
        w.bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();

        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.f64().unwrap(), 1.5);
        assert_eq!(r.opt_u64().unwrap(), Some(42));
        assert_eq!(r.opt_u64().unwrap(), None);
        assert_eq!(r.str().unwrap(), "hello snapshot");
        assert_eq!(r.bytes().unwrap(), vec![1, 2, 3]);
        r.done().unwrap();
    }

    #[test]
    fn truncation_is_a_typed_error() {
        let mut w = SnapWriter::new();
        w.u64(99);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes[..4]);
        let err = r.u64().unwrap_err();
        assert!(err.0.contains("truncated"), "{err}");
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut w = SnapWriter::new();
        w.u8(1);
        w.u8(2);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        r.u8().unwrap();
        assert!(r.done().is_err());
    }

    #[test]
    fn bad_bool_and_bad_utf8_are_errors() {
        let mut r = SnapReader::new(&[9]);
        assert!(r.bool().is_err());
        // length 1, invalid UTF-8 byte
        let mut r = SnapReader::new(&[1, 0, 0, 0, 0xff]);
        assert!(r.str().is_err());
    }

    #[test]
    fn digest_is_order_sensitive_and_stable() {
        let mut a = StateDigest::new();
        a.write_u64(1);
        a.write_str("x");
        let mut b = StateDigest::new();
        b.write_str("x");
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());

        let mut c = StateDigest::new();
        c.write_u64(1);
        c.write_str("x");
        assert_eq!(a.finish(), c.finish());
    }

    #[test]
    fn debug_digest_matches_string_hash() {
        #[derive(Debug)]
        #[allow(dead_code)] // fields are read via the Debug rendering
        struct S {
            x: u64,
            label: &'static str,
        }
        let s = S { x: 3, label: "hi" };
        let mut a = StateDigest::new();
        a.write_debug(&s);
        let mut b = StateDigest::new();
        b.write_str(&format!("{s:?}"));
        assert_eq!(a.finish(), b.finish());
    }
}
