//! Identifiers for hardware structures and software entities.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub usize);

        impl $name {
            /// Returns the raw index.
            #[inline]
            pub fn index(self) -> usize {
                self.0
            }
        }

        impl From<usize> for $name {
            fn from(v: usize) -> Self {
                $name(v)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// A streaming multiprocessor (SM) / GPU core; also identifies its
    /// private L1 cache, since L1s are per-core.
    CoreId,
    "core"
);

id_type!(
    /// A warp within a core (0..warps_per_core).
    WarpId,
    "warp"
);

id_type!(
    /// An L2/memory partition (Table III: 8 partitions).
    PartitionId,
    "part"
);

id_type!(
    /// A workgroup (threadblock / CTA). The paper's benchmark taxonomy is
    /// built on whether data is shared *within* a workgroup (intra) or
    /// *across* workgroups (inter).
    WorkgroupId,
    "wg"
);

/// A globally unique warp identifier (core, warp) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GlobalWarpId {
    /// Core hosting the warp.
    pub core: CoreId,
    /// Warp slot within the core.
    pub warp: WarpId,
}

impl GlobalWarpId {
    /// Creates a global warp id.
    pub fn new(core: CoreId, warp: WarpId) -> Self {
        GlobalWarpId { core, warp }
    }

    /// Flattens to a dense index, given the number of warps per core.
    pub fn flatten(self, warps_per_core: usize) -> usize {
        self.core.0 * warps_per_core + self.warp.0
    }
}

impl fmt::Display for GlobalWarpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.core, self.warp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(CoreId(3).to_string(), "core3");
        assert_eq!(WarpId(7).to_string(), "warp7");
        assert_eq!(PartitionId(1).to_string(), "part1");
        assert_eq!(WorkgroupId(2).to_string(), "wg2");
        assert_eq!(
            GlobalWarpId::new(CoreId(3), WarpId(7)).to_string(),
            "core3/warp7"
        );
    }

    #[test]
    fn flatten_is_dense_and_injective() {
        let mut seen = std::collections::HashSet::new();
        for c in 0..4 {
            for w in 0..48 {
                let g = GlobalWarpId::new(CoreId(c), WarpId(w));
                assert!(seen.insert(g.flatten(48)));
            }
        }
        assert_eq!(seen.len(), 4 * 48);
        assert_eq!(*seen.iter().max().unwrap(), 4 * 48 - 1);
    }

    #[test]
    fn from_usize() {
        assert_eq!(CoreId::from(5), CoreId(5));
        assert_eq!(CoreId(5).index(), 5);
    }
}
