//! Physical cycles and logical (Lamport) timestamps.
//!
//! RCC maintains sequential consistency in *logical* time (Section III of
//! the paper); the baselines TC-Strong and TC-Weak use *physical* time from
//! a globally synchronized on-chip clock. Both are represented by
//! [`Timestamp`] — the interpretation (logical vs. physical) belongs to the
//! protocol, not the type. [`Cycle`] is always physical simulation time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A physical simulation cycle (core clock domain, 1.4 GHz in Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(pub u64);

impl Cycle {
    /// The first cycle of a simulation.
    pub const ZERO: Cycle = Cycle(0);

    /// Returns the raw cycle count.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Saturating difference `self - earlier` in cycles.
    #[inline]
    pub fn since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: Cycle) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}", self.0)
    }
}

/// A coherence timestamp: a core's logical `now`, a block's write version
/// `ver`, a lease expiration `exp`, or a memory partition's `mnow`
/// (Table II in the paper).
///
/// Hardware RCC uses 32-bit timestamps and handles arithmetic rollover with
/// an explicit flush protocol (Section III-D). The simulator stores
/// timestamps in a `u64` but the rollover protocol is still implemented and
/// tested against a configurable rollover threshold
/// ([`crate::config::RccParams::rollover_threshold`]), which defaults to
/// `u32::MAX` to match the hardware width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// Logical time zero — the value every clock is reset to at rollover.
    pub const ZERO: Timestamp = Timestamp(0);

    /// Returns the raw timestamp value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The larger of two timestamps (used pervasively by the RCC rules:
    /// "advance X to Y if Y > X" is `x = x.join(y)`).
    #[inline]
    #[must_use]
    pub fn join(self, other: Timestamp) -> Timestamp {
        if other > self {
            other
        } else {
            self
        }
    }

    /// This timestamp advanced by a lease duration or other delta.
    ///
    /// Saturates at the top of the range; in practice the rollover
    /// protocol quiesces the machine long before timestamps get there.
    #[inline]
    #[must_use]
    pub fn plus(self, delta: u64) -> Timestamp {
        Timestamp(self.0.saturating_add(delta))
    }

    /// The immediately following logical instant (`exp + 1` in the L2 write
    /// rule of Fig. 5: `D.ver = max(M.now, D.ver, D.exp + 1)`). Saturates
    /// at the top of the range like [`Timestamp::plus`].
    #[inline]
    #[must_use]
    pub fn succ(self) -> Timestamp {
        Timestamp(self.0.saturating_add(1))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic() {
        let c = Cycle(10);
        assert_eq!(c + 5, Cycle(15));
        assert_eq!(Cycle(15) - c, 5);
        assert_eq!(c.since(Cycle(3)), 7);
        assert_eq!(Cycle(3).since(c), 0, "since saturates");
        let mut c = c;
        c += 2;
        assert_eq!(c.raw(), 12);
    }

    #[test]
    fn timestamp_join_picks_max() {
        let a = Timestamp(5);
        let b = Timestamp(9);
        assert_eq!(a.join(b), b);
        assert_eq!(b.join(a), b);
        assert_eq!(a.join(a), a);
    }

    #[test]
    fn timestamp_succ_and_plus() {
        assert_eq!(Timestamp(41).succ(), Timestamp(42));
        assert_eq!(Timestamp(8).plus(8), Timestamp(16));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Cycle(7).to_string(), "cycle 7");
        assert_eq!(Timestamp(7).to_string(), "t7");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Timestamp(2) < Timestamp(10));
        assert!(Cycle(2) < Cycle(10));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// `join` is the lattice max: commutative, associative,
            /// idempotent, and an upper bound of both operands.
            #[test]
            fn join_is_a_semilattice(a: u64, b: u64, c: u64) {
                let (a, b, c) = (Timestamp(a), Timestamp(b), Timestamp(c));
                prop_assert_eq!(a.join(b), b.join(a));
                prop_assert_eq!(a.join(b).join(c), a.join(b.join(c)));
                prop_assert_eq!(a.join(a), a);
                prop_assert!(a.join(b) >= a && a.join(b) >= b);
            }

            /// `succ` is strictly monotone and saturates only at the top.
            #[test]
            fn succ_strictly_increases(a in 0u64..u64::MAX) {
                let t = Timestamp(a);
                prop_assert!(t.succ() > t);
                prop_assert_eq!(t.succ().raw(), a + 1);
            }

            /// `plus` saturates instead of wrapping.
            #[test]
            fn plus_never_wraps(a: u64, d: u64) {
                let t = Timestamp(a).plus(d);
                prop_assert!(t >= Timestamp(a));
                prop_assert_eq!(t.raw(), a.saturating_add(d));
            }
        }
    }
}
