//! A small, fast, deterministic hasher for simulator-internal maps.
//!
//! The standard library's default `SipHash` is keyed per process for
//! HashDoS resistance — protection the simulator does not need for maps
//! keyed by line addresses and warp ids it generated itself. Profiles
//! show the per-access maps (MSHRs, deferred-request queues, the
//! scoreboard feed) spend a visible share of their time hashing, so the
//! hot paths use this multiply-xor hash (the `FxHasher` scheme from the
//! Firefox/rustc family) instead: one rotate, one xor, and one multiply
//! per word of input, with a fixed seed so behaviour is identical on
//! every run.
//!
//! Note that iteration order over an `FxHashMap` is *deterministic given
//! the insertion sequence* but still arbitrary; code that needs a
//! canonical order must sort (see `MshrFile::for_each_sorted`).

// rcc-lint: allow(default-hasher, this is the Fx alias definition site; the seed is fixed below)
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the FxHash scheme: a 64-bit constant derived from
/// pi with good bit-mixing behaviour under multiplication.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The hasher state: a single 64-bit accumulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let (chunk, rest) = bytes.split_at(8);
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
            bytes = rest;
        }
        if bytes.len() >= 4 {
            let (chunk, rest) = bytes.split_at(4);
            self.add_to_hash(u64::from(u32::from_le_bytes(
                chunk.try_into().expect("4 bytes"),
            )));
            bytes = rest;
        }
        for &b in bytes {
            self.add_to_hash(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`] (zero-sized, fixed seed).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>; // rcc-lint: allow(default-hasher, the hasher parameter replaces the default seed)

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>; // rcc-lint: allow(default-hasher, the hasher parameter replaces the default seed)

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(&0x1234_5678_u64), hash_of(&0x1234_5678_u64));
        assert_eq!(hash_of(&"warp"), hash_of(&"warp"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        let a = hash_of(&1_u64);
        let b = hash_of(&2_u64);
        let c = hash_of(&3_u64);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut map: FxHashMap<u64, &str> = FxHashMap::default();
        map.insert(7, "seven");
        map.insert(11, "eleven");
        assert_eq!(map.get(&7), Some(&"seven"));
        assert_eq!(map.len(), 2);

        let mut set: FxHashSet<(usize, usize)> = FxHashSet::default();
        set.insert((1, 2));
        assert!(set.contains(&(1, 2)));
        assert!(!set.contains(&(2, 1)));
    }

    #[test]
    fn mixed_width_writes() {
        // 12 bytes exercises the 8-byte and 4-byte chunks; 3 bytes the
        // tail loop.
        assert_ne!(hash_of(&[1u8; 12]), 0);
        assert_ne!(hash_of(&[1u8; 3]), hash_of(&[1u8; 12]));
    }
}
