#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Foundation types shared by every crate in the RCC reproduction.
//!
//! This crate deliberately contains no simulation logic: it defines the
//! vocabulary — [addresses](addr), [identifiers](ids), [timestamps](time),
//! the [machine configuration](config) of Table III in the paper, the
//! [statistics](stats) plumbing that every figure is computed from, and a
//! tiny deterministic [RNG](rng) so that whole-system simulations are
//! bit-reproducible from a seed.
//!
//! # Example
//!
//! ```
//! use rcc_common::config::GpuConfig;
//!
//! let cfg = GpuConfig::gtx480();
//! assert_eq!(cfg.num_cores, 16);
//! assert_eq!(cfg.l2.num_partitions, 8);
//! ```

pub mod addr;
pub mod config;
pub mod hash;
pub mod ids;
pub mod rng;
pub mod snap;
pub mod stats;
pub mod time;
pub mod trace;

pub use addr::{Addr, LineAddr, WordAddr};
pub use config::GpuConfig;
pub use hash::{FxHashMap, FxHashSet};
pub use ids::{CoreId, PartitionId, WarpId, WorkgroupId};
pub use rng::Pcg32;
pub use snap::{SnapError, SnapReader, SnapWriter, StateDigest};
pub use time::{Cycle, Timestamp};
