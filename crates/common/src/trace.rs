//! Lightweight, env-gated event tracing.
//!
//! Set `RCC_TRACE=1` to stream protocol events (L2 serves, fills,
//! evictions, rollovers, invalidations) to stderr. The gate is read once
//! and cached, so disabled tracing costs a single boolean load per site.
//!
//! ```
//! rcc_common::trace!("cycle {}: something interesting", 42);
//! ```

use std::sync::OnceLock;

static ENABLED: OnceLock<bool> = OnceLock::new();

/// Whether tracing is enabled (`RCC_TRACE` set in the environment).
pub fn enabled() -> bool {
    *ENABLED.get_or_init(|| std::env::var_os("RCC_TRACE").is_some())
}

/// Emits a trace line to stderr when `RCC_TRACE` is set.
#[macro_export]
macro_rules! trace {
    ($($arg:tt)*) => {
        if $crate::trace::enabled() {
            eprintln!("[rcc-trace] {}", format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn gate_is_stable() {
        let first = super::enabled();
        assert_eq!(super::enabled(), first);
    }

    #[test]
    fn macro_compiles_in_statement_position() {
        crate::trace!("value {}", 1);
    }
}
