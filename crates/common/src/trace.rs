//! Lightweight, env-gated event tracing.
//!
//! Set `RCC_TRACE=1` to stream protocol events (L2 serves, fills,
//! evictions, rollovers, invalidations) to stderr. The environment is
//! consulted once; after that every site pays exactly one relaxed atomic
//! load and a predictable branch, so `trace!` is safe to leave in hot
//! loops (the L2 serve path, the system drain loop).
//!
//! ```
//! rcc_common::trace!("cycle {}: something interesting", 42);
//! ```
//!
//! All emission funnels through [`emit`], which counts lines — that is
//! what lets a test *prove* disabled tracing adds no output instead of
//! eyeballing stderr.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

const UNKNOWN: u8 = 0;
const OFF: u8 = 1;
const ON: u8 = 2;

/// Tri-state gate: unresolved until the first site asks, then pinned to
/// the environment's answer (or a test's [`force`]).
static GATE: AtomicU8 = AtomicU8::new(UNKNOWN);

/// Trace lines emitted since process start.
static EMITTED: AtomicU64 = AtomicU64::new(0);

/// Whether tracing is enabled (`RCC_TRACE` set in the environment). The
/// first call reads the environment; every later call is a cached load.
#[inline]
pub fn enabled() -> bool {
    match GATE.load(Ordering::Relaxed) {
        ON => true,
        OFF => false,
        _ => {
            let on = std::env::var_os("RCC_TRACE").is_some();
            GATE.store(if on { ON } else { OFF }, Ordering::Relaxed);
            on
        }
    }
}

/// Overrides the gate: `Some(on)` pins it, `None` re-arms the
/// environment read. Test hook — production code never toggles tracing.
#[doc(hidden)]
pub fn force(state: Option<bool>) {
    let v = match state {
        Some(true) => ON,
        Some(false) => OFF,
        None => UNKNOWN,
    };
    GATE.store(v, Ordering::Relaxed);
}

/// Number of trace lines emitted so far.
pub fn emitted_lines() -> u64 {
    EMITTED.load(Ordering::Relaxed)
}

/// Sink for the `trace!` macro: counts, then writes to stderr.
#[doc(hidden)]
pub fn emit(args: std::fmt::Arguments<'_>) {
    EMITTED.fetch_add(1, Ordering::Relaxed);
    eprintln!("[rcc-trace] {args}");
}

/// Emits a trace line to stderr when `RCC_TRACE` is set.
#[macro_export]
macro_rules! trace {
    ($($arg:tt)*) => {
        if $crate::trace::enabled() {
            $crate::trace::emit(format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // The gate is process-global, so every assertion that toggles it
    // lives in this one #[test] — tests in a binary run concurrently,
    // and a second gate-toggling test would race this one.
    #[test]
    fn disabled_tracing_adds_no_output() {
        force(Some(false));
        let before = emitted_lines();
        crate::trace!("suppressed {}", 1);
        crate::trace!("also suppressed {}", 2);
        assert_eq!(
            emitted_lines(),
            before,
            "disabled tracing must emit nothing"
        );

        force(Some(true));
        crate::trace!("counted {}", 3);
        assert_eq!(emitted_lines(), before + 1);

        force(None);
        let first = enabled();
        assert_eq!(super::enabled(), first, "gate must pin after resolving");
        force(Some(false));
    }
}
