//! Statistics plumbing: counters, latency histograms, and traffic
//! accounting by message class.
//!
//! Every figure in the paper's evaluation is a function of these
//! aggregates: Fig. 1 and Fig. 8 come from stall counters and latency
//! histograms, Fig. 9b/9c from [`TrafficStats`] (flits by [`MsgClass`]),
//! and Fig. 6/7 from protocol event counters.

use std::fmt;

/// Classes of coherence messages, used for traffic breakdown (Fig. 9c) and
/// virtual-channel assignment. Every protocol maps its messages onto this
/// shared taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MsgClass {
    /// Load request (GETS).
    LoadReq,
    /// Load data reply (full cache line).
    LoadData,
    /// Store request (write-through data).
    StoreReq,
    /// Store acknowledgement.
    StoreAck,
    /// Atomic read-modify-write request.
    AtomicReq,
    /// Atomic reply (data word).
    AtomicResp,
    /// Invalidation request (MESI only).
    Inv,
    /// Invalidation acknowledgement (MESI only).
    InvAck,
    /// Lease renewal grant — expiration time, no data (RCC only).
    Renew,
    /// Dirty L2 line written back to DRAM (accounted, not NoC traffic).
    Writeback,
    /// Rollover flush control (RCC only).
    Flush,
}

impl MsgClass {
    /// All message classes, in display order.
    pub const ALL: [MsgClass; 11] = [
        MsgClass::LoadReq,
        MsgClass::LoadData,
        MsgClass::StoreReq,
        MsgClass::StoreAck,
        MsgClass::AtomicReq,
        MsgClass::AtomicResp,
        MsgClass::Inv,
        MsgClass::InvAck,
        MsgClass::Renew,
        MsgClass::Writeback,
        MsgClass::Flush,
    ];

    /// Whether this class carries a full cache line of data.
    pub fn carries_line(self) -> bool {
        matches!(
            self,
            MsgClass::LoadData | MsgClass::StoreReq | MsgClass::Writeback
        )
    }

    /// Short label used in figure output.
    pub fn label(self) -> &'static str {
        match self {
            MsgClass::LoadReq => "ld-req",
            MsgClass::LoadData => "ld-data",
            MsgClass::StoreReq => "st-req",
            MsgClass::StoreAck => "st-ack",
            MsgClass::AtomicReq => "at-req",
            MsgClass::AtomicResp => "at-resp",
            MsgClass::Inv => "inv",
            MsgClass::InvAck => "inv-ack",
            MsgClass::Renew => "renew",
            MsgClass::Writeback => "wback",
            MsgClass::Flush => "flush",
        }
    }

    fn idx(self) -> usize {
        match self {
            MsgClass::LoadReq => 0,
            MsgClass::LoadData => 1,
            MsgClass::StoreReq => 2,
            MsgClass::StoreAck => 3,
            MsgClass::AtomicReq => 4,
            MsgClass::AtomicResp => 5,
            MsgClass::Inv => 6,
            MsgClass::InvAck => 7,
            MsgClass::Renew => 8,
            MsgClass::Writeback => 9,
            MsgClass::Flush => 10,
        }
    }
}

impl fmt::Display for MsgClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Flit and message counts broken down by [`MsgClass`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrafficStats {
    msgs: [u64; 11],
    flits: [u64; 11],
}

impl TrafficStats {
    /// Creates empty traffic statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one message of `class` consisting of `flits` flits.
    pub fn record(&mut self, class: MsgClass, flits: u64) {
        self.msgs[class.idx()] += 1;
        self.flits[class.idx()] += flits;
    }

    /// Messages sent in a class.
    pub fn msgs(&self, class: MsgClass) -> u64 {
        self.msgs[class.idx()]
    }

    /// Flits sent in a class.
    pub fn flits(&self, class: MsgClass) -> u64 {
        self.flits[class.idx()]
    }

    /// Total flits over all classes — the paper's "interconnect traffic".
    pub fn total_flits(&self) -> u64 {
        self.flits.iter().sum()
    }

    /// Total messages over all classes.
    pub fn total_msgs(&self) -> u64 {
        self.msgs.iter().sum()
    }

    /// Merges another traffic record into this one.
    pub fn merge(&mut self, other: &TrafficStats) {
        for i in 0..self.msgs.len() {
            self.msgs[i] += other.msgs[i];
            self.flits[i] += other.flits[i];
        }
    }
}

/// A streaming latency/size histogram with mean, min and max.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Geometric mean of a sequence of positive ratios — the aggregation used
/// for every speedup figure in the paper ("gmean").
///
/// Returns `None` if the input is empty or contains a non-positive value.
pub fn gmean<I: IntoIterator<Item = f64>>(values: I) -> Option<f64> {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        if v <= 0.0 || !v.is_finite() {
            return None;
        }
        log_sum += v.ln();
        n += 1;
    }
    (n > 0).then(|| (log_sum / n as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_accumulates_by_class() {
        let mut t = TrafficStats::new();
        t.record(MsgClass::LoadReq, 2);
        t.record(MsgClass::LoadReq, 2);
        t.record(MsgClass::LoadData, 34);
        assert_eq!(t.msgs(MsgClass::LoadReq), 2);
        assert_eq!(t.flits(MsgClass::LoadReq), 4);
        assert_eq!(t.flits(MsgClass::LoadData), 34);
        assert_eq!(t.total_flits(), 38);
        assert_eq!(t.total_msgs(), 3);
        assert_eq!(t.msgs(MsgClass::Inv), 0);
    }

    #[test]
    fn traffic_merge() {
        let mut a = TrafficStats::new();
        a.record(MsgClass::StoreReq, 34);
        let mut b = TrafficStats::new();
        b.record(MsgClass::StoreAck, 2);
        b.record(MsgClass::StoreReq, 34);
        a.merge(&b);
        assert_eq!(a.flits(MsgClass::StoreReq), 68);
        assert_eq!(a.msgs(MsgClass::StoreAck), 1);
    }

    #[test]
    fn msg_class_taxonomy() {
        assert!(MsgClass::LoadData.carries_line());
        assert!(MsgClass::StoreReq.carries_line());
        assert!(!MsgClass::Renew.carries_line());
        assert!(!MsgClass::StoreAck.carries_line());
        // idx() must be a bijection onto 0..ALL.len().
        let mut seen = [false; MsgClass::ALL.len()];
        for c in MsgClass::ALL {
            assert!(!seen[c.idx()]);
            seen[c.idx()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
        for v in [10, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.mean(), 20.0);
        assert_eq!(h.min(), Some(10));
        assert_eq!(h.max(), Some(30));
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        a.record(5);
        let mut b = Histogram::new();
        b.record(15);
        b.record(25);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.mean(), 15.0);
        assert_eq!(a.min(), Some(5));
        assert_eq!(a.max(), Some(25));
        let mut empty = Histogram::new();
        empty.merge(&a);
        assert_eq!(empty, a);
    }

    #[test]
    fn gmean_matches_hand_computation() {
        let g = gmean([1.0, 4.0]).unwrap();
        assert!((g - 2.0).abs() < 1e-12);
        assert_eq!(gmean(std::iter::empty()), None);
        assert_eq!(gmean([1.0, 0.0]), None);
        assert_eq!(gmean([1.0, -2.0]), None);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Histogram invariants: count/sum/min/max/mean agree with a
            /// direct computation, and merging equals recording the
            /// concatenation.
            #[test]
            fn histogram_matches_direct_computation(
                xs in proptest::collection::vec(0u64..1_000_000, 1..100),
                ys in proptest::collection::vec(0u64..1_000_000, 0..100),
            ) {
                let mut h = Histogram::new();
                for &x in &xs {
                    h.record(x);
                }
                prop_assert_eq!(h.count(), xs.len() as u64);
                prop_assert_eq!(h.sum(), xs.iter().sum::<u64>());
                prop_assert_eq!(h.min(), xs.iter().min().copied());
                prop_assert_eq!(h.max(), xs.iter().max().copied());
                let mean = xs.iter().sum::<u64>() as f64 / xs.len() as f64;
                prop_assert!((h.mean() - mean).abs() < 1e-6);

                let mut h2 = Histogram::new();
                for &y in &ys {
                    h2.record(y);
                }
                let mut merged = h.clone();
                merged.merge(&h2);
                let mut all = Histogram::new();
                for &v in xs.iter().chain(ys.iter()) {
                    all.record(v);
                }
                prop_assert_eq!(merged.count(), all.count());
                prop_assert_eq!(merged.sum(), all.sum());
                prop_assert_eq!(merged.min(), all.min());
                prop_assert_eq!(merged.max(), all.max());
            }

            /// gmean lies between min and max and is scale-equivariant.
            #[test]
            fn gmean_bounds_and_scaling(
                xs in proptest::collection::vec(0.01f64..100.0, 1..20),
                k in 0.1f64..10.0,
            ) {
                let g = gmean(xs.iter().copied()).expect("positive inputs");
                let lo = xs.iter().copied().fold(f64::MAX, f64::min);
                let hi = xs.iter().copied().fold(f64::MIN, f64::max);
                prop_assert!(g >= lo * 0.999 && g <= hi * 1.001);
                let gk = gmean(xs.iter().map(|x| x * k)).expect("positive");
                prop_assert!((gk - g * k).abs() / (g * k) < 1e-9);
            }

            /// Traffic totals equal the per-class sums.
            #[test]
            fn traffic_totals_are_consistent(
                events in proptest::collection::vec((0usize..11, 1u64..64), 0..60),
            ) {
                let mut t = TrafficStats::new();
                for &(class, flits) in &events {
                    t.record(MsgClass::ALL[class], flits);
                }
                prop_assert_eq!(t.total_msgs(), events.len() as u64);
                prop_assert_eq!(
                    t.total_flits(),
                    events.iter().map(|e| e.1).sum::<u64>()
                );
                let per_class: u64 = MsgClass::ALL.iter().map(|&c| t.flits(c)).sum();
                prop_assert_eq!(per_class, t.total_flits());
            }
        }
    }
}
