//! Statistics plumbing: counters, latency histograms, and traffic
//! accounting by message class.
//!
//! Every figure in the paper's evaluation is a function of these
//! aggregates: Fig. 1 and Fig. 8 come from stall counters and latency
//! histograms, Fig. 9b/9c from [`TrafficStats`] (flits by [`MsgClass`]),
//! and Fig. 6/7 from protocol event counters.

use std::fmt;

/// Classes of coherence messages, used for traffic breakdown (Fig. 9c) and
/// virtual-channel assignment. Every protocol maps its messages onto this
/// shared taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MsgClass {
    /// Load request (GETS).
    LoadReq,
    /// Load data reply (full cache line).
    LoadData,
    /// Store request (write-through data).
    StoreReq,
    /// Store acknowledgement.
    StoreAck,
    /// Atomic read-modify-write request.
    AtomicReq,
    /// Atomic reply (data word).
    AtomicResp,
    /// Invalidation request (MESI only).
    Inv,
    /// Invalidation acknowledgement (MESI only).
    InvAck,
    /// Lease renewal grant — expiration time, no data (RCC only).
    Renew,
    /// Dirty L2 line written back to DRAM (accounted, not NoC traffic).
    Writeback,
    /// Rollover flush control (RCC only).
    Flush,
}

impl MsgClass {
    /// All message classes, in display order.
    pub const ALL: [MsgClass; 11] = [
        MsgClass::LoadReq,
        MsgClass::LoadData,
        MsgClass::StoreReq,
        MsgClass::StoreAck,
        MsgClass::AtomicReq,
        MsgClass::AtomicResp,
        MsgClass::Inv,
        MsgClass::InvAck,
        MsgClass::Renew,
        MsgClass::Writeback,
        MsgClass::Flush,
    ];

    /// Whether this class carries a full cache line of data.
    pub fn carries_line(self) -> bool {
        matches!(
            self,
            MsgClass::LoadData | MsgClass::StoreReq | MsgClass::Writeback
        )
    }

    /// Short label used in figure output.
    pub fn label(self) -> &'static str {
        match self {
            MsgClass::LoadReq => "ld-req",
            MsgClass::LoadData => "ld-data",
            MsgClass::StoreReq => "st-req",
            MsgClass::StoreAck => "st-ack",
            MsgClass::AtomicReq => "at-req",
            MsgClass::AtomicResp => "at-resp",
            MsgClass::Inv => "inv",
            MsgClass::InvAck => "inv-ack",
            MsgClass::Renew => "renew",
            MsgClass::Writeback => "wback",
            MsgClass::Flush => "flush",
        }
    }

    fn idx(self) -> usize {
        match self {
            MsgClass::LoadReq => 0,
            MsgClass::LoadData => 1,
            MsgClass::StoreReq => 2,
            MsgClass::StoreAck => 3,
            MsgClass::AtomicReq => 4,
            MsgClass::AtomicResp => 5,
            MsgClass::Inv => 6,
            MsgClass::InvAck => 7,
            MsgClass::Renew => 8,
            MsgClass::Writeback => 9,
            MsgClass::Flush => 10,
        }
    }
}

impl fmt::Display for MsgClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Flit and message counts broken down by [`MsgClass`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrafficStats {
    msgs: [u64; 11],
    flits: [u64; 11],
}

impl TrafficStats {
    /// Creates empty traffic statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one message of `class` consisting of `flits` flits.
    pub fn record(&mut self, class: MsgClass, flits: u64) {
        self.msgs[class.idx()] += 1;
        self.flits[class.idx()] += flits;
    }

    /// Messages sent in a class.
    pub fn msgs(&self, class: MsgClass) -> u64 {
        self.msgs[class.idx()]
    }

    /// Flits sent in a class.
    pub fn flits(&self, class: MsgClass) -> u64 {
        self.flits[class.idx()]
    }

    /// Total flits over all classes — the paper's "interconnect traffic".
    pub fn total_flits(&self) -> u64 {
        self.flits.iter().sum()
    }

    /// Total messages over all classes.
    pub fn total_msgs(&self) -> u64 {
        self.msgs.iter().sum()
    }

    /// Merges another traffic record into this one.
    pub fn merge(&mut self, other: &TrafficStats) {
        for i in 0..self.msgs.len() {
            self.msgs[i] += other.msgs[i];
            self.flits[i] += other.flits[i];
        }
    }
}

/// A streaming latency/size histogram with mean, min, max and
/// percentiles.
///
/// Samples are binned into power-of-two (log2) buckets: bucket 0 holds
/// the value 0 and bucket `i` (i ≥ 1) holds `[2^(i-1), 2^i)`. That keeps
/// the footprint at O(log max) while making tail percentiles (p99 of a
/// load-latency distribution) answerable after the fact. The bucket
/// vector grows on demand, so two histograms fed the same samples compare
/// equal.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: Vec<u64>,
}

/// Bucket index for a sample: 0 for 0, else `floor(log2(v)) + 1`.
fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Inclusive value range `[lo, hi]` covered by bucket `i`.
fn bucket_range(i: usize) -> (u64, u64) {
    if i == 0 {
        (0, 0)
    } else {
        let lo = 1u64 << (i - 1);
        let hi = if i >= 64 { u64::MAX } else { (1u64 << i) - 1 };
        (lo, hi)
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
        let idx = bucket_index(value);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Per-bucket sample counts (log2 buckets; see type docs). Exposed so
    /// digests and dumps can cover the full distribution, not just the
    /// moments.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// The `p`-th percentile (`0 < p <= 100`) by the nearest-rank method
    /// with linear interpolation inside the winning log2 bucket, clamped
    /// to the observed `[min, max]`.
    ///
    /// The clamp makes boundary queries exact where the data allows it: a
    /// 1-element histogram returns that element for every `p`, and a
    /// sample at its bucket's lower bound (any power of two) is returned
    /// exactly when it is the bucket's lowest-ranked sample.
    ///
    /// Returns `None` when the histogram is empty or `p` is out of range.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 || !(0.0..=100.0).contains(&p) || p == 0.0 {
            return None;
        }
        // Nearest rank: k-th smallest sample, 1-based.
        let k = ((p / 100.0 * self.count as f64).ceil() as u64).clamp(1, self.count);
        // The extreme ranks are known exactly — don't interpolate them.
        if k == 1 {
            return Some(self.min);
        }
        if k == self.count {
            return Some(self.max);
        }
        let mut before = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if before + c >= k {
                let (lo, hi) = bucket_range(i);
                let r = k - before; // rank within this bucket, 1..=c
                let v = lo + (hi - lo) / c * (r - 1);
                return Some(v.clamp(self.min, self.max));
            }
            before += c;
        }
        // Unreachable: bucket counts always sum to `count`.
        Some(self.max)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (i, &c) in other.buckets.iter().enumerate() {
            self.buckets[i] += c;
        }
    }
}

/// Geometric mean of a sequence of positive ratios — the aggregation used
/// for every speedup figure in the paper ("gmean").
///
/// Returns `None` if the input is empty or contains a non-positive value.
pub fn gmean<I: IntoIterator<Item = f64>>(values: I) -> Option<f64> {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        if v <= 0.0 || !v.is_finite() {
            return None;
        }
        log_sum += v.ln();
        n += 1;
    }
    (n > 0).then(|| (log_sum / n as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_accumulates_by_class() {
        let mut t = TrafficStats::new();
        t.record(MsgClass::LoadReq, 2);
        t.record(MsgClass::LoadReq, 2);
        t.record(MsgClass::LoadData, 34);
        assert_eq!(t.msgs(MsgClass::LoadReq), 2);
        assert_eq!(t.flits(MsgClass::LoadReq), 4);
        assert_eq!(t.flits(MsgClass::LoadData), 34);
        assert_eq!(t.total_flits(), 38);
        assert_eq!(t.total_msgs(), 3);
        assert_eq!(t.msgs(MsgClass::Inv), 0);
    }

    #[test]
    fn traffic_merge() {
        let mut a = TrafficStats::new();
        a.record(MsgClass::StoreReq, 34);
        let mut b = TrafficStats::new();
        b.record(MsgClass::StoreAck, 2);
        b.record(MsgClass::StoreReq, 34);
        a.merge(&b);
        assert_eq!(a.flits(MsgClass::StoreReq), 68);
        assert_eq!(a.msgs(MsgClass::StoreAck), 1);
    }

    #[test]
    fn msg_class_taxonomy() {
        assert!(MsgClass::LoadData.carries_line());
        assert!(MsgClass::StoreReq.carries_line());
        assert!(!MsgClass::Renew.carries_line());
        assert!(!MsgClass::StoreAck.carries_line());
        // idx() must be a bijection onto 0..ALL.len().
        let mut seen = [false; MsgClass::ALL.len()];
        for c in MsgClass::ALL {
            assert!(!seen[c.idx()]);
            seen[c.idx()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
        for v in [10, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.mean(), 20.0);
        assert_eq!(h.min(), Some(10));
        assert_eq!(h.max(), Some(30));
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        a.record(5);
        let mut b = Histogram::new();
        b.record(15);
        b.record(25);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.mean(), 15.0);
        assert_eq!(a.min(), Some(5));
        assert_eq!(a.max(), Some(25));
        let mut empty = Histogram::new();
        empty.merge(&a);
        assert_eq!(empty, a);
    }

    #[test]
    fn percentile_one_element_is_exact_for_every_p() {
        // The smallest boundary case: with a single sample every
        // percentile must return exactly that sample, including values
        // that sit on a log2 bucket boundary (powers of two).
        for v in [0u64, 1, 2, 7, 8, 42, 64, 1 << 20] {
            let mut h = Histogram::new();
            h.record(v);
            for p in [1.0, 50.0, 99.0, 100.0] {
                assert_eq!(h.percentile(p), Some(v), "p{p} of single sample {v}");
            }
        }
    }

    #[test]
    fn percentile_power_of_two_element_boundaries() {
        // 8 samples, each a power of two, each the lower boundary of its
        // own log2 bucket — p50 and p99 land exactly on samples 4 and 8
        // by the nearest-rank rule and must come back exact.
        let mut h = Histogram::new();
        for v in [1u64, 2, 4, 8, 16, 32, 64, 128] {
            h.record(v);
        }
        assert_eq!(h.percentile(50.0), Some(8), "p50 = 4th of 8 samples");
        assert_eq!(h.percentile(99.0), Some(128), "p99 = 8th of 8 samples");
        assert_eq!(h.percentile(100.0), Some(128));
        assert_eq!(h.percentile(12.5), Some(1), "p12.5 = 1st of 8 samples");
    }

    #[test]
    fn percentile_edge_inputs() {
        let h = Histogram::new();
        assert_eq!(h.percentile(50.0), None, "empty histogram");
        let mut h = Histogram::new();
        h.record(16);
        h.record(16);
        h.record(16);
        h.record(16);
        // All samples equal at a bucket boundary: interpolation inside
        // [16, 31] must be clamped back to the observed max.
        assert_eq!(h.percentile(50.0), Some(16));
        assert_eq!(h.percentile(99.0), Some(16));
        assert_eq!(h.percentile(0.0), None, "p0 is out of range");
        assert_eq!(h.percentile(100.1), None);
        assert_eq!(h.percentile(-3.0), None);
    }

    #[test]
    fn merge_preserves_buckets_and_percentiles() {
        let mut a = Histogram::new();
        a.record(1);
        a.record(2);
        let mut b = Histogram::new();
        b.record(64);
        b.record(128);
        a.merge(&b);
        let total: u64 = a.buckets().iter().sum();
        assert_eq!(total, 4);
        assert_eq!(a.percentile(50.0), Some(2));
        assert_eq!(a.percentile(100.0), Some(128));
    }

    #[test]
    fn gmean_matches_hand_computation() {
        let g = gmean([1.0, 4.0]).unwrap();
        assert!((g - 2.0).abs() < 1e-12);
        assert_eq!(gmean(std::iter::empty()), None);
        assert_eq!(gmean([1.0, 0.0]), None);
        assert_eq!(gmean([1.0, -2.0]), None);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Histogram invariants: count/sum/min/max/mean agree with a
            /// direct computation, and merging equals recording the
            /// concatenation.
            #[test]
            fn histogram_matches_direct_computation(
                xs in proptest::collection::vec(0u64..1_000_000, 1..100),
                ys in proptest::collection::vec(0u64..1_000_000, 0..100),
            ) {
                let mut h = Histogram::new();
                for &x in &xs {
                    h.record(x);
                }
                prop_assert_eq!(h.count(), xs.len() as u64);
                prop_assert_eq!(h.sum(), xs.iter().sum::<u64>());
                prop_assert_eq!(h.min(), xs.iter().min().copied());
                prop_assert_eq!(h.max(), xs.iter().max().copied());
                let mean = xs.iter().sum::<u64>() as f64 / xs.len() as f64;
                prop_assert!((h.mean() - mean).abs() < 1e-6);

                let mut h2 = Histogram::new();
                for &y in &ys {
                    h2.record(y);
                }
                let mut merged = h.clone();
                merged.merge(&h2);
                let mut all = Histogram::new();
                for &v in xs.iter().chain(ys.iter()) {
                    all.record(v);
                }
                prop_assert_eq!(merged.count(), all.count());
                prop_assert_eq!(merged.sum(), all.sum());
                prop_assert_eq!(merged.min(), all.min());
                prop_assert_eq!(merged.max(), all.max());
                prop_assert_eq!(merged, all, "merge must equal concatenation, buckets included");
            }

            /// Percentiles are bounded by [min, max], monotone in p, and
            /// bucket counts always sum to the sample count.
            #[test]
            fn percentile_invariants(
                xs in proptest::collection::vec(0u64..1_000_000, 1..100),
            ) {
                let mut h = Histogram::new();
                for &x in &xs {
                    h.record(x);
                }
                prop_assert_eq!(h.buckets().iter().sum::<u64>(), h.count());
                let mut prev = h.min().unwrap();
                for p in [1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
                    let v = h.percentile(p).expect("non-empty");
                    prop_assert!(v >= h.min().unwrap() && v <= h.max().unwrap());
                    prop_assert!(v >= prev, "percentile must be monotone in p");
                    prev = v;
                }
                prop_assert_eq!(h.percentile(100.0), h.max());
            }

            /// gmean lies between min and max and is scale-equivariant.
            #[test]
            fn gmean_bounds_and_scaling(
                xs in proptest::collection::vec(0.01f64..100.0, 1..20),
                k in 0.1f64..10.0,
            ) {
                let g = gmean(xs.iter().copied()).expect("positive inputs");
                let lo = xs.iter().copied().fold(f64::MAX, f64::min);
                let hi = xs.iter().copied().fold(f64::MIN, f64::max);
                prop_assert!(g >= lo * 0.999 && g <= hi * 1.001);
                let gk = gmean(xs.iter().map(|x| x * k)).expect("positive");
                prop_assert!((gk - g * k).abs() / (g * k) < 1e-9);
            }

            /// Traffic totals equal the per-class sums.
            #[test]
            fn traffic_totals_are_consistent(
                events in proptest::collection::vec((0usize..11, 1u64..64), 0..60),
            ) {
                let mut t = TrafficStats::new();
                for &(class, flits) in &events {
                    t.record(MsgClass::ALL[class], flits);
                }
                prop_assert_eq!(t.total_msgs(), events.len() as u64);
                prop_assert_eq!(
                    t.total_flits(),
                    events.iter().map(|e| e.1).sum::<u64>()
                );
                let per_class: u64 = MsgClass::ALL.iter().map(|&c| t.flits(c)).sum();
                prop_assert_eq!(per_class, t.total_flits());
            }
        }
    }
}
