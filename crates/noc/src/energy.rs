//! ORION-2.0-style interconnect energy model.
//!
//! Fig. 9b of the paper compares interconnect energy broken down by
//! component across protocols. The trends it shows are driven by (a) how
//! many flits each protocol moves (MESI adds invalidations, recalls and
//! their acks; RCC's RENEW replaces many data transfers), and (b) static
//! leakage, which scales with the number of virtual-channel buffers (5
//! for MESI vs 2 for the timestamp protocols). An affine model — energy
//! per flit through a router, energy per flit over a link, leakage per
//! buffer per cycle — captures both effects; the coefficients are in the
//! ballpark of ORION 2.0 at 45 nm and only relative values matter.

/// Energy coefficients (picojoules).
#[derive(Debug, Clone, PartialEq)]
pub struct NocEnergyModel {
    /// Dynamic energy per flit traversing a router (buffer write/read,
    /// arbitration, crossbar).
    pub router_pj_per_flit: f64,
    /// Dynamic energy per flit traversing an inter-node link.
    pub link_pj_per_flit: f64,
    /// Leakage per virtual-channel buffer per core cycle.
    pub static_pj_per_buffer_cycle: f64,
}

impl Default for NocEnergyModel {
    fn default() -> Self {
        // ORION 2.0-flavoured coefficients for a 32-bit-flit crossbar at
        // 45 nm: a few pJ of router energy and ~1 pJ of link energy per
        // flit, with per-buffer leakage orders of magnitude below the
        // dynamic cost of a flit.
        NocEnergyModel {
            router_pj_per_flit: 4.0,
            link_pj_per_flit: 1.5,
            static_pj_per_buffer_cycle: 0.002,
        }
    }
}

/// Interconnect energy split by component (the stacks of Fig. 9b).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Router dynamic energy (pJ).
    pub router_pj: f64,
    /// Link dynamic energy (pJ).
    pub link_pj: f64,
    /// Static/leakage energy (pJ).
    pub static_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.router_pj + self.link_pj + self.static_pj
    }

    /// Componentwise sum.
    #[must_use]
    pub fn plus(&self, other: &EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            router_pj: self.router_pj + other.router_pj,
            link_pj: self.link_pj + other.link_pj,
            static_pj: self.static_pj + other.static_pj,
        }
    }
}

impl NocEnergyModel {
    /// Computes the energy of a run in which `flits` flits crossed the
    /// interconnect over `cycles` core cycles, with `ports` router ports
    /// each holding `num_vcs` virtual-channel buffers.
    pub fn energy(&self, flits: u64, cycles: u64, ports: usize, num_vcs: usize) -> EnergyBreakdown {
        EnergyBreakdown {
            router_pj: flits as f64 * self.router_pj_per_flit,
            link_pj: flits as f64 * self.link_pj_per_flit,
            static_pj: cycles as f64
                * ports as f64
                * num_vcs as f64
                * self.static_pj_per_buffer_cycle,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_scales_with_flits() {
        let m = NocEnergyModel::default();
        let a = m.energy(1000, 1000, 16, 2);
        let b = m.energy(2000, 1000, 16, 2);
        assert!((b.router_pj - 2.0 * a.router_pj).abs() < 1e-9);
        assert!((b.link_pj - 2.0 * a.link_pj).abs() < 1e-9);
        assert_eq!(a.static_pj, b.static_pj, "static is traffic-independent");
    }

    #[test]
    fn five_vcs_leak_more_than_two() {
        let m = NocEnergyModel::default();
        let mesi = m.energy(1000, 100_000, 16, 5);
        let rcc = m.energy(1000, 100_000, 16, 2);
        assert!(mesi.static_pj > rcc.static_pj);
        assert!((mesi.static_pj / rcc.static_pj - 2.5).abs() < 1e-9);
    }

    #[test]
    fn breakdown_sums() {
        let m = NocEnergyModel::default();
        let e = m.energy(10, 10, 1, 1);
        assert!((e.total_pj() - (e.router_pj + e.link_pj + e.static_pj)).abs() < 1e-12);
        let sum = e.plus(&e);
        assert!((sum.total_pj() - 2.0 * e.total_pj()).abs() < 1e-9);
    }

    #[test]
    fn zero_traffic_still_leaks() {
        let m = NocEnergyModel::default();
        let e = m.energy(0, 1000, 16, 2);
        assert_eq!(e.router_pj, 0.0);
        assert!(e.static_pj > 0.0);
    }
}
