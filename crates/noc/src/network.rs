//! Timed network: crossbar or 2D mesh, selected by
//! [`NocParams::topology`].
//!
//! Both topologies model injection/ejection serialization and per-packet
//! traversal latency; the mesh additionally scales latency and energy
//! with the XY hop count between the source and destination tiles
//! (cores and L2 partitions interleaved over a near-square grid).
//! Per-(src,dst) FIFO delivery holds in both cases, which every protocol
//! in this suite relies on.

use rcc_chaos::{PerturbPoint, Site};
use rcc_common::config::{NocParams, NocTopology};
use rcc_common::snap::StateDigest;
use rcc_common::time::Cycle;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A packet in flight (internal).
struct InFlight<T> {
    deliver_at: u64,
    /// Monotonic tiebreaker so equal-time deliveries keep injection order.
    order: u64,
    dst: usize,
    payload: T,
}

impl<T> PartialEq for InFlight<T> {
    fn eq(&self, other: &Self) -> bool {
        (self.deliver_at, self.order) == (other.deliver_at, other.order)
    }
}
impl<T> Eq for InFlight<T> {}
impl<T> PartialOrd for InFlight<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for InFlight<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.order).cmp(&(other.deliver_at, other.order))
    }
}

/// Tile coordinates of every endpoint on a near-square grid, for the
/// mesh topology. Sources occupy tiles `0..num_srcs` and destinations
/// the following tiles, row-major.
#[derive(Debug, Clone)]
struct MeshMap {
    width: usize,
    src_base: usize,
    dst_base: usize,
    /// Per-hop latency in core cycles (router pipeline + link).
    per_hop: u64,
}

impl MeshMap {
    fn new(num_srcs: usize, num_dsts: usize, per_hop: u64) -> Self {
        let nodes = num_srcs + num_dsts;
        let width = (nodes as f64).sqrt().ceil() as usize;
        MeshMap {
            width: width.max(1),
            src_base: 0,
            dst_base: num_srcs,
            per_hop: per_hop.max(1),
        }
    }

    fn coords(&self, tile: usize) -> (i64, i64) {
        ((tile % self.width) as i64, (tile / self.width) as i64)
    }

    /// XY hop count from source `src` to destination `dst` (≥ 1).
    fn hops(&self, src: usize, dst: usize) -> u64 {
        let (sx, sy) = self.coords(self.src_base + src);
        let (dx, dy) = self.coords(self.dst_base + dst);
        ((sx - dx).unsigned_abs() + (sy - dy).unsigned_abs()).max(1)
    }
}

/// One direction of the interconnect: `num_srcs` injection ports,
/// `num_dsts` ejection ports, each serializing one flit per NoC cycle.
pub struct Network<T> {
    /// Core cycles per flit on a port.
    cycles_per_flit: u64,
    /// Crossbar traversal latency in core cycles.
    traversal: u64,
    mesh: Option<MeshMap>,
    num_vcs: usize,
    src_free_at: Vec<u64>,
    dst_free_at: Vec<u64>,
    in_flight: BinaryHeap<Reverse<InFlight<T>>>,
    next_order: u64,
    /// Chaos hook: adds bounded jitter to a packet's traversal latency
    /// (`Site::NocTraversal`). Applied *before* ejection-port
    /// serialization, so per-(src,dst) FIFO — which the protocols rely
    /// on — is preserved; only cross-flow arrival order is perturbed.
    chaos: Option<Box<dyn PerturbPoint>>,
    // Statistics.
    flits_injected: u64,
    packets_injected: u64,
    /// Flit × hop products (= flits for the crossbar) — the quantity
    /// dynamic NoC energy scales with.
    flit_hops: u64,
    total_packet_latency: u64,
    peak_in_flight: usize,
}

impl<T> Network<T> {
    /// Creates a network with `num_srcs` sources, `num_dsts` destinations
    /// and `num_vcs` virtual channels per port.
    pub fn new(params: &NocParams, num_srcs: usize, num_dsts: usize, num_vcs: usize) -> Self {
        let mesh = match params.topology {
            NocTopology::Crossbar => None,
            NocTopology::Mesh => {
                // Split the crossbar's lumped traversal latency into a
                // per-hop cost over the mesh diameter, so the two
                // topologies have comparable average zero-load latency.
                let nodes = num_srcs + num_dsts;
                let width = (nodes as f64).sqrt().ceil() as u64;
                let per_hop = (params.traversal_latency * params.core_cycles_per_noc_cycle
                    / width.max(1))
                .max(1);
                Some(MeshMap::new(num_srcs, num_dsts, per_hop))
            }
        };
        Network {
            cycles_per_flit: params.core_cycles_per_noc_cycle,
            traversal: params.traversal_latency * params.core_cycles_per_noc_cycle,
            mesh,
            num_vcs,
            src_free_at: vec![0; num_srcs],
            dst_free_at: vec![0; num_dsts],
            in_flight: BinaryHeap::new(),
            next_order: 0,
            chaos: None,
            flits_injected: 0,
            packets_injected: 0,
            flit_hops: 0,
            total_packet_latency: 0,
            peak_in_flight: 0,
        }
    }

    /// Number of virtual channels (for energy accounting).
    pub fn num_vcs(&self) -> usize {
        self.num_vcs
    }

    /// Installs a perturbation hook (see [`Site::NocTraversal`]).
    pub fn set_chaos(&mut self, hook: Box<dyn PerturbPoint>) {
        self.chaos = Some(hook);
    }

    /// Injects a packet of `flits` flits from `src` to `dst` on `vc`.
    /// The virtual channel affects statistics only; see the module docs.
    pub fn inject(
        &mut self,
        now: Cycle,
        src: usize,
        dst: usize,
        _vc: usize,
        flits: u64,
        payload: T,
    ) {
        let start = self.src_free_at[src].max(now.raw());
        let serialized = start + flits * self.cycles_per_flit;
        self.src_free_at[src] = serialized;
        let (traversal, hops) = match &self.mesh {
            None => (self.traversal, 1),
            Some(m) => {
                let hops = m.hops(src, dst);
                (hops * m.per_hop, hops)
            }
        };
        let jitter = match &mut self.chaos {
            Some(c) => c.jitter(Site::NocTraversal),
            None => 0,
        };
        let at_output = serialized + traversal + jitter;
        let delivered = self.dst_free_at[dst].max(at_output) + flits * self.cycles_per_flit;
        self.dst_free_at[dst] = delivered;
        self.flits_injected += flits;
        self.flit_hops += flits * hops;
        self.packets_injected += 1;
        self.total_packet_latency += delivered - now.raw();
        self.in_flight.push(Reverse(InFlight {
            deliver_at: delivered,
            order: self.next_order,
            dst,
            payload,
        }));
        self.next_order += 1;
        self.peak_in_flight = self.peak_in_flight.max(self.in_flight.len());
    }

    /// Removes and returns all packets whose delivery time has arrived,
    /// as `(dst, payload)` pairs in delivery order.
    pub fn deliver(&mut self, now: Cycle) -> Vec<(usize, T)> {
        let mut out = Vec::new();
        while let Some(Reverse(head)) = self.in_flight.peek() {
            if head.deliver_at > now.raw() {
                break;
            }
            let Reverse(p) = self.in_flight.pop().expect("peeked");
            out.push((p.dst, p.payload));
        }
        out
    }

    /// Earliest pending delivery time, if any (lets the simulator skip
    /// idle cycles).
    pub fn next_event(&self) -> Option<Cycle> {
        self.in_flight.peek().map(|Reverse(p)| Cycle(p.deliver_at))
    }

    /// Packets currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// High-water mark of packets simultaneously in flight — the
    /// VC-queue-depth figure the time-series sampler records.
    pub fn peak_in_flight(&self) -> usize {
        self.peak_in_flight
    }

    /// Whether nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.in_flight.is_empty()
    }

    /// Total flits injected so far.
    pub fn flits_injected(&self) -> u64 {
        self.flits_injected
    }

    /// Total flit×hop products (equals [`Self::flits_injected`] on the
    /// crossbar) — what dynamic interconnect energy scales with.
    pub fn flit_hops(&self) -> u64 {
        self.flit_hops
    }

    /// Total packets injected so far.
    pub fn packets_injected(&self) -> u64 {
        self.packets_injected
    }

    /// Mean end-to-end packet latency in core cycles.
    pub fn mean_latency(&self) -> f64 {
        if self.packets_injected == 0 {
            0.0
        } else {
            self.total_packet_latency as f64 / self.packets_injected as f64
        }
    }

    /// Folds the network's full state — port serialization horizons, the
    /// set of in-flight packets (payloads included), the chaos stream,
    /// and statistics — into a cross-component state digest.
    pub fn digest_state(&self, d: &mut StateDigest)
    where
        T: std::fmt::Debug,
    {
        d.write_u64(self.cycles_per_flit);
        d.write_u64(self.traversal);
        d.write_u64(self.num_vcs as u64);
        d.write_debug(&self.src_free_at);
        d.write_debug(&self.dst_free_at);
        d.write_u64(self.next_order);
        // The heap's internal layout depends on its push/pop history, so
        // fold the packets order-independently: the digest reflects the
        // *set* of in-flight packets, not the heap's array order.
        let mut acc: u64 = 0;
        for Reverse(p) in &self.in_flight {
            let mut e = StateDigest::new();
            e.write_u64(p.deliver_at);
            e.write_u64(p.order);
            e.write_u64(p.dst as u64);
            e.write_debug(&p.payload);
            acc ^= e.finish();
        }
        d.write_u64(acc);
        if let Some(c) = &self.chaos {
            d.write_debug(c);
        }
        d.write_u64(self.flits_injected);
        d.write_u64(self.packets_injected);
        d.write_u64(self.flit_hops);
        d.write_u64(self.total_packet_latency);
        d.write_u64(self.peak_in_flight as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcc_common::config::GpuConfig;

    fn net() -> Network<u32> {
        // small(): 2 core cycles/flit, traversal 6 NoC cycles = 12 core.
        Network::new(&GpuConfig::small().noc, 4, 2, 2)
    }

    #[test]
    fn zero_load_latency_is_serialization_plus_traversal() {
        let mut n = net();
        n.inject(Cycle(0), 0, 1, 0, 2, 7);
        // 2 flits × 2 + 12 + 2 flits × 2 = 20.
        assert!(n.deliver(Cycle(19)).is_empty());
        let got = n.deliver(Cycle(20));
        assert_eq!(got, vec![(1, 7)]);
        assert!(n.is_empty());
    }

    #[test]
    fn src_port_serializes_packets() {
        let mut n = net();
        n.inject(Cycle(0), 0, 0, 0, 10, 1);
        n.inject(Cycle(0), 0, 1, 0, 10, 2);
        // Second packet starts only after the first's 20 cycles of flits.
        let first = n.next_event().unwrap();
        let all = n.deliver(Cycle(1000));
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].1, 1);
        assert_eq!(all[1].1, 2);
        assert!(first >= Cycle(10 * 2 + 12 + 10 * 2));
    }

    #[test]
    fn different_sources_proceed_in_parallel() {
        let mut n = net();
        n.inject(Cycle(0), 0, 0, 0, 4, 1);
        n.inject(Cycle(0), 1, 1, 0, 4, 2);
        // Both delivered at the same zero-load time (no shared port).
        let t = 4 * 2 + 12 + 4 * 2;
        let got = n.deliver(Cycle(t));
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn dst_port_contends() {
        let mut n = net();
        n.inject(Cycle(0), 0, 0, 0, 4, 1);
        n.inject(Cycle(0), 1, 0, 0, 4, 2);
        let t = 4 * 2 + 12 + 4 * 2;
        assert_eq!(n.deliver(Cycle(t)).len(), 1, "ejection port serializes");
        assert_eq!(n.deliver(Cycle(t + 8)).len(), 1);
    }

    #[test]
    fn same_pair_fifo_order() {
        let mut n = net();
        for i in 0..10 {
            n.inject(Cycle(i), 2, 1, (i % 2) as usize, 3, i as u32);
        }
        let got = n.deliver(Cycle(100_000));
        let vals: Vec<u32> = got.into_iter().map(|(_, v)| v).collect();
        assert_eq!(vals, (0..10).collect::<Vec<u32>>());
    }

    #[test]
    fn stats_accumulate() {
        let mut n = net();
        n.inject(Cycle(0), 0, 0, 0, 5, 1);
        n.inject(Cycle(0), 1, 1, 1, 7, 2);
        assert_eq!(n.flits_injected(), 12);
        assert_eq!(n.packets_injected(), 2);
        assert!(n.mean_latency() > 0.0);
        assert_eq!(n.in_flight(), 2);
        n.deliver(Cycle(100_000));
        assert!(n.is_empty());
    }

    #[test]
    fn mesh_latency_scales_with_distance() {
        let mut params = GpuConfig::small().noc;
        params.topology = rcc_common::config::NocTopology::Mesh;
        // 16 sources + 8 destinations → 5-wide grid.
        let mut near: Network<u8> = Network::new(&params, 16, 8, 2);
        let mut far: Network<u8> = Network::new(&params, 16, 8, 2);
        // Source 16-1=15 sits right before destination tile 16 → near;
        // source 0 to destination 7 (tile 23) is far.
        near.inject(Cycle(0), 15, 0, 0, 4, 1);
        far.inject(Cycle(0), 0, 7, 0, 4, 1);
        let t_near = near.next_event().unwrap();
        let t_far = far.next_event().unwrap();
        assert!(
            t_far > t_near,
            "more hops, more latency: {t_far:?} vs {t_near:?}"
        );
        assert!(far.flit_hops() > near.flit_hops());
    }

    #[test]
    fn crossbar_hops_equal_flits() {
        let mut n = net();
        n.inject(Cycle(0), 0, 1, 0, 7, 1);
        assert_eq!(n.flit_hops(), n.flits_injected());
    }

    #[test]
    fn mesh_keeps_per_pair_fifo() {
        let mut params = GpuConfig::small().noc;
        params.topology = rcc_common::config::NocTopology::Mesh;
        let mut n: Network<u32> = Network::new(&params, 4, 4, 2);
        for i in 0..10 {
            n.inject(Cycle(i), 1, 3, 0, 3, i as u32);
        }
        let got: Vec<u32> = n
            .deliver(Cycle(1_000_000))
            .into_iter()
            .map(|(_, v)| v)
            .collect();
        assert_eq!(got, (0..10).collect::<Vec<u32>>());
    }

    #[test]
    fn chaos_jitter_delays_but_keeps_fifo() {
        use rcc_chaos::{ChaosProfile, ChaosSpec, Perturber};
        let mut always = ChaosProfile::heavy();
        always.noc_jitter_p = 1.0;
        let spec = ChaosSpec::new(3, always);
        let mut jittered = net();
        jittered.set_chaos(Box::new(Perturber::standalone(&spec, 0)));
        let mut clean = net();
        for i in 0..10 {
            jittered.inject(Cycle(i), 2, 1, 0, 3, i as u32);
            clean.inject(Cycle(i), 2, 1, 0, 3, i as u32);
        }
        // Jitter only delays: first delivery is no earlier than clean.
        assert!(jittered.next_event().unwrap() >= clean.next_event().unwrap());
        // Per-(src,dst) FIFO still holds under jitter.
        let vals: Vec<u32> = jittered
            .deliver(Cycle(100_000))
            .into_iter()
            .map(|(_, v)| v)
            .collect();
        assert_eq!(vals, (0..10).collect::<Vec<u32>>());
    }

    #[test]
    fn injection_after_idle_uses_current_time() {
        let mut n = net();
        n.inject(Cycle(1000), 0, 0, 0, 1, 1);
        let t = 1000 + 2 + 12 + 2;
        assert!(n.deliver(Cycle(t - 1)).is_empty());
        assert_eq!(n.deliver(Cycle(t)).len(), 1);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Conservation and FIFO: every injected packet is delivered
            /// exactly once, to the right port, and packets sharing a
            /// (src, dst) pair arrive in injection order.
            #[test]
            fn delivers_everything_in_fifo_order(
                pkts in proptest::collection::vec(
                    (0usize..4, 0usize..2, 1u64..40, 0u64..50),
                    1..40,
                ),
            ) {
                let mut n: Network<(usize, usize, usize)> =
                    Network::new(&GpuConfig::small().noc, 4, 2, 2);
                let mut now = 0u64;
                for (i, &(src, dst, flits, gap)) in pkts.iter().enumerate() {
                    now += gap;
                    n.inject(Cycle(now), src, dst, 0, flits, (src, dst, i));
                }
                let delivered = n.deliver(Cycle(u64::MAX / 2));
                prop_assert!(n.is_empty());
                prop_assert_eq!(delivered.len(), pkts.len());
                prop_assert_eq!(n.packets_injected(), pkts.len() as u64);
                let total_flits: u64 = pkts.iter().map(|p| p.2).sum();
                prop_assert_eq!(n.flits_injected(), total_flits);
                // FIFO per (src, dst): sequence numbers increase.
                for s in 0..4 {
                    for d in 0..2 {
                        let seqs: Vec<usize> = delivered
                            .iter()
                            .filter(|(port, (ps, pd, _))| *port == d && *ps == s && *pd == d)
                            .map(|(_, (_, _, i))| *i)
                            .collect();
                        prop_assert!(
                            seqs.windows(2).all(|w| w[0] < w[1]),
                            "out-of-order delivery on ({}, {}): {:?}", s, d, seqs
                        );
                    }
                }
            }

            /// A lone packet's latency is at least its serialization time
            /// plus the traversal latency; delivering early yields nothing.
            #[test]
            fn latency_lower_bound(flits in 1u64..64, start in 0u64..1000) {
                let cfg = GpuConfig::small();
                let mut n: Network<u8> = Network::new(&cfg.noc, 2, 2, 2);
                n.inject(Cycle(start), 0, 1, 0, flits, 9);
                let earliest = n.next_event().expect("one packet in flight");
                // Serialization happens twice (injection + ejection port).
                prop_assert!(earliest.raw() >= start + 2 * flits);
                prop_assert!(n.deliver(Cycle(earliest.raw() - 1)).is_empty());
                let got = n.deliver(earliest);
                prop_assert_eq!(got, vec![(1usize, 9u8)]);
            }

            /// Mesh topology: delivered count and flit-hop accounting are
            /// consistent (hops ≥ 1 per flit, ≤ diameter per flit).
            #[test]
            fn mesh_flit_hops_are_bounded(
                pkts in proptest::collection::vec((0usize..16, 0usize..8, 1u64..35), 1..30),
            ) {
                let mut params = GpuConfig::gtx480().noc;
                params.topology = rcc_common::config::NocTopology::Mesh;
                let mut n: Network<usize> = Network::new(&params, 16, 8, 2);
                for (i, &(src, dst, flits)) in pkts.iter().enumerate() {
                    n.inject(Cycle(0), src, dst, 0, flits, i);
                }
                let delivered = n.deliver(Cycle(u64::MAX / 2));
                prop_assert_eq!(delivered.len(), pkts.len());
                let total_flits: u64 = pkts.iter().map(|p| p.2).sum();
                // A 16+8-node mesh has a small diameter; hops per flit lie
                // within [1, 16].
                prop_assert!(n.flit_hops() >= total_flits);
                prop_assert!(n.flit_hops() <= 16 * total_flits);
            }
        }
    }
}
