#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Interconnect model: one flit-level crossbar per direction (Table III)
//! plus an ORION-2.0-style energy model for Fig. 9b.
//!
//! The [`network::Network`] models injection-port serialization (one
//! 32-bit flit per NoC cycle per port at half the core clock), crossbar
//! traversal latency, and ejection-port serialization. Packets between a
//! given source and destination are delivered in injection order, which
//! is stronger than real virtual-channel routers guarantee but safe for
//! every protocol in this suite; virtual channels are tracked for
//! occupancy statistics and leakage energy (MESI needs 5 VCs for deadlock
//! freedom, the timestamp protocols 2 — Table III).
//!
//! # Example
//!
//! ```
//! use rcc_common::config::GpuConfig;
//! use rcc_common::time::Cycle;
//! use rcc_noc::Network;
//!
//! let cfg = GpuConfig::small();
//! let mut net: Network<&'static str> = Network::new(&cfg.noc, 4, 2, 2);
//! net.inject(Cycle(0), 0, 1, 0, 34, "a full cache line");
//! // Nothing arrives before serialization + traversal completes.
//! assert!(net.deliver(Cycle(1)).is_empty());
//! ```

pub mod energy;
pub mod network;

pub use energy::{EnergyBreakdown, NocEnergyModel};
pub use network::Network;
