//! Property-based tests for the crossbar network.

use proptest::prelude::*;
use rcc_common::config::GpuConfig;
use rcc_common::time::Cycle;
use rcc_noc::Network;

proptest! {
    /// Every injected packet is delivered exactly once, to the right
    /// destination, and per-(src,dst) pairs arrive in injection order.
    #[test]
    fn exactly_once_in_order_delivery(
        packets in prop::collection::vec((0usize..4, 0usize..3, 1u64..40), 1..100),
    ) {
        let cfg = GpuConfig::small();
        let mut net: Network<(usize, usize, usize)> = Network::new(&cfg.noc, 4, 3, 2);
        for (i, (src, dst, flits)) in packets.iter().enumerate() {
            net.inject(Cycle(i as u64), *src, *dst, 0, *flits, (*src, *dst, i));
        }
        let delivered = net.deliver(Cycle(u64::MAX / 2));
        prop_assert_eq!(delivered.len(), packets.len());
        prop_assert!(net.is_empty());
        let mut last_index = std::collections::HashMap::new();
        for (dst, (s, d, i)) in delivered {
            prop_assert_eq!(dst, d);
            if let Some(p) = last_index.insert((s, d), i) {
                prop_assert!(i > p, "per-pair FIFO violated");
            }
        }
    }

    /// Delivery never happens before the zero-load latency.
    #[test]
    fn latency_lower_bound(flits in 1u64..64, start in 0u64..1000) {
        let cfg = GpuConfig::small();
        let mut net: Network<u8> = Network::new(&cfg.noc, 2, 2, 2);
        net.inject(Cycle(start), 0, 1, 0, flits, 1);
        let cpf = cfg.noc.core_cycles_per_noc_cycle;
        let min = start + flits * cpf + cfg.noc.traversal_latency * cpf + flits * cpf;
        prop_assert!(net.deliver(Cycle(min - 1)).is_empty());
        prop_assert_eq!(net.deliver(Cycle(min)).len(), 1);
    }
}
