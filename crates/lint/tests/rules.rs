//! Every invariant rule pinned by a firing fixture, plus the suppression
//! machinery (used, unused, malformed) and a clean tree.
//!
//! Each fixture under `tests/fixtures/` is a miniature workspace root
//! (`src/` + `crates/*/src/` + the `msg.rs` the table analyzer expects),
//! so these tests drive the same [`rcc_lint::run`] entry point the CLI
//! uses.

use rcc_lint::{run, LintConfig, LintOutput};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn lint(name: &str) -> LintOutput {
    run(&LintConfig {
        root: fixture(name),
        coverage: None,
    })
    .expect("fixture lints")
}

fn rules_of(out: &LintOutput) -> Vec<&str> {
    out.findings.iter().map(|f| f.rule).collect()
}

#[test]
fn default_hasher_fires() {
    let out = lint("default-hasher");
    assert!(!out.findings.is_empty());
    assert!(rules_of(&out).iter().all(|r| *r == "default-hasher"));
    assert!(out
        .findings
        .iter()
        .all(|f| f.file == "crates/mem/src/lib.rs"));
}

#[test]
fn wall_clock_fires() {
    let out = lint("wall-clock");
    // Instant::now and the SystemTime uses each fire.
    assert!(out.findings.len() >= 2, "{:?}", out.findings);
    assert!(rules_of(&out).iter().all(|r| *r == "wall-clock"));
}

#[test]
fn ambient_randomness_fires() {
    let out = lint("ambient-randomness");
    assert_eq!(rules_of(&out), ["ambient-randomness"]);
}

#[test]
fn sim_panic_fires() {
    let out = lint("sim-panic");
    // .unwrap(), panic!, and todo! each fire.
    assert_eq!(rules_of(&out), ["sim-panic", "sim-panic", "sim-panic"]);
}

#[test]
fn lib_print_fires_but_eprintln_is_fine() {
    let out = lint("lib-print");
    assert_eq!(rules_of(&out), ["lib-print"]);
    assert!(out.findings[0].message.contains("println"));
}

#[test]
fn unjournaled_write_fires_outside_the_durable_layer() {
    let out = lint("unjournaled-write");
    // fs::write, File::create, OpenOptions fire in server.rs; the
    // journal's own raw calls and the allowed remove_file do not.
    assert_eq!(
        rules_of(&out),
        [
            "unjournaled-write",
            "unjournaled-write",
            "unjournaled-write"
        ]
    );
    assert!(out
        .findings
        .iter()
        .all(|f| f.file == "crates/serve/src/server.rs"));
    assert_eq!(out.suppressed, 1, "the annotated exception is honored");
    assert!(out.findings[0].help.contains("journal"));
}

#[test]
fn allow_directive_suppresses_and_counts() {
    let out = lint("allowed");
    assert!(out.findings.is_empty(), "{:?}", out.findings);
    assert_eq!(out.suppressed, 1);
}

#[test]
fn unused_allow_fires() {
    let out = lint("unused-allow");
    assert_eq!(rules_of(&out), ["unused-allow"]);
    assert!(out.findings[0].message.contains("default-hasher"));
}

#[test]
fn malformed_allow_fires() {
    let out = lint("bad-allow");
    assert_eq!(rules_of(&out), ["bad-allow"]);
    assert!(out.findings[0].message.contains("reason"));
}

#[test]
fn clean_tree_is_clean_and_test_code_is_exempt() {
    // The fixture's `#[cfg(test)]` module uses a std HashMap; the linter
    // must not look inside it.
    let out = lint("clean");
    assert!(out.findings.is_empty(), "{:?}", out.findings);
    assert_eq!(out.suppressed, 0);
}

#[test]
fn deny_rendering_mentions_rule_and_location() {
    let out = lint("lib-print");
    let rendered = rcc_lint::render_all(&out);
    assert!(rendered.contains("error[lib-print]"));
    assert!(rendered.contains("crates/noc/src/lib.rs:4"));
    assert!(rendered.contains("1 finding(s)"));
}
