//! The protocol-table analyzer against fixture controllers: structural
//! rules (incomplete-match, dead-arm, unknown-variant, unreachable-state)
//! and the coverage diff against an `rcc-verify` census.

use rcc_lint::{run, LintConfig, LintOutput};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn lint(name: &str, coverage: Option<&str>) -> Result<LintOutput, String> {
    run(&LintConfig {
        root: fixture(name),
        coverage: coverage.map(|c| fixture(name).join(c)),
    })
}

#[test]
fn table_rules_fire() {
    let out = lint("table", None).expect("fixture lints");
    let rules: Vec<&str> = out.findings.iter().map(|f| f.rule).collect();
    for expected in [
        "incomplete-match",
        "dead-arm",
        "unknown-variant",
        "unreachable-state",
    ] {
        assert!(rules.contains(&expected), "missing {expected}: {rules:?}");
    }
    // The duplicate Data arm is the dead one; Phantom is the unknown
    // variant; Ghost is the unreferenced state; the ignored wildcard
    // leaves the unnamed response events uncovered.
    let msg_of = |rule: &str| -> String {
        out.findings
            .iter()
            .filter(|f| f.rule == rule)
            .map(|f| f.message.clone())
            .collect::<Vec<_>>()
            .join("; ")
    };
    assert!(msg_of("dead-arm").contains("Data"));
    assert!(msg_of("unknown-variant").contains("Phantom"));
    assert!(msg_of("unreachable-state").contains("Ghost"));
    assert!(msg_of("incomplete-match").contains("StoreAck"));
}

#[test]
fn matrix_reflects_the_fixture_controller() {
    let out = lint("table", None).expect("fixture lints");
    assert_eq!(out.controllers.len(), 1);
    let ct = &out.controllers[0];
    assert_eq!(
        (ct.protocol.as_str(), ct.controller.as_str()),
        ("rcc", "l1")
    );
    assert!(ct.states.iter().any(|s| s == "Ghost"));
    assert!(out.matrix_json.contains("\"RespPayload\""));
    assert!(out.matrix_json.contains("\"wildcard\": true"));
}

#[test]
fn full_coverage_has_no_gaps() {
    let out = lint("coverage", Some("full.tsv")).expect("fixture lints");
    assert!(out.gaps.is_empty(), "{:?}", out.gaps);
    assert!(out.findings.is_empty(), "{:?}", out.findings);
    assert!(out.matrix_json.contains("\"coverage\""));
}

#[test]
fn missing_transition_becomes_a_named_gap() {
    let out = lint("coverage", Some("partial.tsv")).expect("fixture lints");
    assert_eq!(out.gaps.len(), 1);
    assert_eq!(out.gaps[0].event, "Atomic");
    let gap_findings: Vec<_> = out
        .findings
        .iter()
        .filter(|f| f.rule == "coverage-gap")
        .collect();
    assert_eq!(gap_findings.len(), 1);
    assert!(gap_findings[0].message.contains("Atomic"));
    assert!(out.matrix_json.contains("\"gaps\": [\n"));
}

#[test]
fn malformed_coverage_is_rejected() {
    let err = lint("coverage", Some("malformed.tsv")).expect_err("must reject");
    assert!(err.contains("count"), "unexpected error: {err}");
}
