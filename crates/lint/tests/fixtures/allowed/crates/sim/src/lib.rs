//! Fixture: a violation suppressed by a well-formed directive.

use std::time::Instant;

pub fn stamp() -> Instant {
    // rcc-lint: allow(wall-clock, fixture probe; never feeds simulated state)
    Instant::now()
}
