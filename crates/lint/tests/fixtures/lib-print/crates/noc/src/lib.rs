//! Fixture: stdout printing from a library crate.

pub fn report(x: u64) {
    println!("{x}");
    eprintln!("stderr is fine: {x}");
}
