//! Fixture controller: statically complete dispatch over `AccessKind`.

pub fn access(a: Access) {
    match a.kind {
        AccessKind::Load => on_load(),
        AccessKind::Store { value } => on_store(value),
        AccessKind::Atomic => on_atomic(),
    }
}
