//! Fixture: std HashMap in a non-test file.

use std::collections::HashMap;

pub fn build() -> HashMap<u64, u64> {
    HashMap::new()
}
