//! Fixture: wall-clock reads in a result-affecting crate.

use std::time::{Instant, SystemTime};

pub fn stamp() -> u64 {
    let t = Instant::now();
    t.elapsed().as_nanos() as u64
}

pub fn epoch() -> SystemTime {
    SystemTime::now()
}
