//! Fixture: a directive that suppresses nothing.

// rcc-lint: allow(default-hasher, nothing on the next line needs this)
pub fn clean() -> u64 {
    7
}
