//! Fixture workspace root (scanned but clean).
