//! Fixture: raw filesystem mutation on the service's durable path.

pub fn persist(path: &str, bytes: &[u8]) {
    fs::write(path, bytes).unwrap_or(());
    let _ = File::create(path);
    let _ = OpenOptions::new();
    // Reads never fire the rule.
    let _ = fs::read(path);
    // A deliberate, explained exception is allowed through:
    // rcc-lint: allow(unjournaled-write, scratch file outside the durable state)
    fs::remove_file(path).unwrap_or(());
}
