//! Fixture: the durable layer itself owns the raw calls.

pub fn append(path: &str, bytes: &[u8]) {
    let _ = OpenOptions::new();
    fs::write(path, bytes).unwrap_or(());
}
