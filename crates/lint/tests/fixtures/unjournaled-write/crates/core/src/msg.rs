//! Fixture message enums (mirrors the real `msg.rs` shape).

/// What a warp asks its L1 to do.
pub enum AccessKind {
    Load,
    Store { value: u64 },
    Atomic,
}

/// L1-to-L2 requests.
pub enum ReqPayload {
    Gets,
    Write,
    Atomic,
    InvAck,
    FlushAck,
    GetX,
    WbData,
}

/// L2-to-L1 responses.
pub enum RespPayload {
    Data,
    Renew,
    StoreAck,
    AtomicResp,
    Inv,
    Flush,
    DataEx,
    Recall,
    WbAck,
}
