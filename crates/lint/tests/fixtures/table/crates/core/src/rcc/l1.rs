//! Fixture controller: one of everything the table analyzer flags.

/// Fixture L1 states; `Ghost` is never referenced.
pub enum L1State {
    I,
    V,
    Ghost,
}

pub fn handle_resp(msg: RespMsg) {
    match msg.payload {
        RespPayload::Data => on_data(),
        RespPayload::Renew => {}
        RespPayload::Data => on_data_again(),
        RespPayload::Phantom => on_phantom(),
        _ => {}
    }
}

pub fn reset() -> L1State {
    L1State::I
}

pub fn fill() -> L1State {
    L1State::V
}
