//! Fixture: nothing to report; test code may use std maps freely.

use rcc_common::FxHashMap;

pub fn build() -> FxHashMap<u64, u64> {
    FxHashMap::default()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn std_maps_are_fine_in_tests() {
        let mut m = HashMap::new();
        m.insert(1, 2);
        assert_eq!(m[&1], 2);
    }
}
