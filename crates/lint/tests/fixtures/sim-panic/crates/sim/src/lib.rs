//! Fixture: panicking constructs inside `crates/sim`.

pub fn boom(v: Option<u64>) -> u64 {
    v.unwrap()
}

pub fn bail() {
    panic!("fixture");
}

pub fn later() {
    todo!()
}
