//! Fixture: a malformed directive (missing reason).

// rcc-lint: allow(default-hasher)
pub fn clean() -> u64 {
    7
}
