//! Fixture: ambient randomness in a result-affecting crate.

pub fn seed() -> u64 {
    let mut r = rand::thread_rng();
    r.next_u64()
}
