//! `rcc-lint` CLI: run both analyzers over the workspace.
//!
//! ```text
//! rcc-lint [--root PATH] [--deny] [--coverage FILE] [--matrix-out FILE]
//! ```
//!
//! * `--root PATH`        workspace root (default: discovered by walking
//!   up from the current directory to a `[workspace]` Cargo.toml)
//! * `--deny`             exit non-zero when any finding survives
//! * `--coverage FILE`    TSV from `rcc-verify --transitions`; enables the
//!   static-vs-dynamic RCC transition diff (`coverage-gap` findings)
//! * `--matrix-out FILE`  write the transition-matrix JSON artifact
//! * `--rules`            print the rule catalog and exit

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    let mut deny = false;
    let mut coverage: Option<PathBuf> = None;
    let mut matrix_out: Option<PathBuf> = None;

    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--deny" => deny = true,
            "--coverage" => coverage = args.next().map(PathBuf::from),
            "--matrix-out" => matrix_out = args.next().map(PathBuf::from),
            "--rules" => {
                for (id, desc) in rcc_lint::RULES {
                    println!("{id:20} {desc}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "rcc-lint [--root PATH] [--deny] [--coverage FILE] [--matrix-out FILE] [--rules]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("rcc-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match rcc_lint::discover_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "rcc-lint: no [workspace] Cargo.toml above {}",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let cfg = rcc_lint::LintConfig { root, coverage };
    let out = match rcc_lint::run(&cfg) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("rcc-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = matrix_out {
        if let Err(e) = std::fs::write(&path, &out.matrix_json) {
            eprintln!("rcc-lint: write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("rcc-lint: wrote transition matrix to {}", path.display());
    }

    print!("{}", rcc_lint::render_all(&out));

    if deny && !out.findings.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
