//! A minimal Rust token scanner.
//!
//! `rcc-lint` deliberately has no dependencies (no `syn`, no `proc-macro2`),
//! in the same spirit as `rcc_obs::json`: the linter must build before
//! anything it checks. This module turns a source file into a flat stream
//! of identifier/punctuation tokens with line numbers, while
//!
//! * stripping comments (and capturing `// rcc-lint: allow(rule, reason)`
//!   suppression directives),
//! * stripping string / char literals (so `"panic!"` in a message never
//!   fires a rule), including raw and byte strings,
//! * disambiguating lifetimes (`'a`) from char literals (`'a'`),
//! * dropping items gated behind `#[cfg(test)]` / `#[test]`, and
//! * reporting *out-of-line* test modules (`#[cfg(test)] mod foo;`) so the
//!   driver can exclude `foo.rs` / `foo/` entirely.
//!
//! The scanner is intentionally approximate — it does not parse Rust — but
//! every approximation errs toward *fewer* tokens surviving (comments,
//! strings, test code), which for our deny-lints means false negatives in
//! pathological code, never false positives in clean code.

/// One token: an identifier/keyword/number, or a single punctuation char.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Token text. Punctuation is a single char; idents/numbers are whole.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
}

impl Tok {
    /// True when the token is the identifier `s`.
    pub fn is(&self, s: &str) -> bool {
        self.text == s
    }
}

/// A parsed `// rcc-lint: allow(rule, reason)` suppression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directive {
    /// Rule id the directive suppresses, e.g. `default-hasher`.
    pub rule: String,
    /// Free-text justification (required).
    pub reason: String,
    /// Line the comment itself sits on.
    pub comment_line: u32,
    /// Line the directive applies to: its own line when trailing code,
    /// otherwise the next line that carries code.
    pub applies_line: u32,
}

/// A malformed `rcc-lint:` comment (wrong syntax, missing reason, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadDirective {
    /// Line of the malformed comment.
    pub line: u32,
    /// What is wrong with it.
    pub detail: String,
}

/// Lexer output for one file.
#[derive(Debug, Default)]
pub struct Source {
    /// Token stream with test-gated items removed.
    pub toks: Vec<Tok>,
    /// Well-formed suppression directives.
    pub directives: Vec<Directive>,
    /// Malformed `rcc-lint:` comments.
    pub bad_directives: Vec<BadDirective>,
    /// Module names declared as `#[cfg(test)] mod name;` (out-of-line):
    /// the driver must treat `name.rs` / `name/` as test code.
    pub test_mods: Vec<String>,
}

/// Lexes `text` into tokens + directives, then strips test-gated items.
pub fn lex(text: &str) -> Source {
    let raw = scan(text);
    strip_test_items(raw)
}

/// Raw scan: tokens (including attributes) plus comment directives.
fn scan(text: &str) -> Source {
    let b = text.as_bytes();
    let mut out = Source::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    // Directives seen on lines with no preceding code; they bind to the
    // next line that produces a token.
    let mut pending: Vec<Directive> = Vec::new();
    let mut line_had_code = false;

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                line_had_code = false;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                let mut j = start;
                while j < b.len() && b[j] != b'\n' {
                    j += 1;
                }
                // Directives live in plain `//` comments only; doc
                // comments (`///`, `//!`) may *talk about* the syntax.
                let is_doc = matches!(b.get(start), Some(b'/') | Some(b'!'));
                if !is_doc {
                    let comment = std::str::from_utf8(&b[start..j]).unwrap_or("");
                    parse_directive(comment, line, line_had_code, &mut out, &mut pending);
                }
                i = j;
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                // Nested block comments, per Rust.
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                i = skip_string(b, i, &mut line);
                emit_code(&mut line_had_code, line, &mut pending, &mut out);
            }
            b'r' | b'b' if starts_raw_or_byte_string(b, i) => {
                i = skip_raw_or_byte_string(b, i, &mut line);
                emit_code(&mut line_had_code, line, &mut pending, &mut out);
            }
            b'\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                if b.get(i + 1) == Some(&b'\\') {
                    // Escaped char literal.
                    i += 2; // skip ' and backslash
                    while i < b.len() && b[i] != b'\'' {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                    i += 1;
                } else if is_ident_char(b.get(i + 1).copied())
                    && b.get(i + 2) == Some(&b'\'')
                    && !is_ident_char(b.get(i + 3).copied())
                {
                    // 'x' — single-char literal ('x'' would be a lifetime
                    // followed by a stray quote; not valid Rust anyway).
                    i += 3;
                } else {
                    // Lifetime: consume the quote, the ident lexes next.
                    i += 1;
                }
                emit_code(&mut line_had_code, line, &mut pending, &mut out);
            }
            _ if is_ident_start(c) || c.is_ascii_digit() => {
                let start = i;
                i += 1;
                while i < b.len() && is_ident_char(Some(b[i])) {
                    i += 1;
                }
                // Float literals: keep `1.5` as one token so `.` punct
                // never splits a number (but stop at `..` ranges).
                if c.is_ascii_digit()
                    && b.get(i) == Some(&b'.')
                    && b.get(i + 1).is_some_and(|d| d.is_ascii_digit())
                {
                    i += 1;
                    while i < b.len() && is_ident_char(Some(b[i])) {
                        i += 1;
                    }
                }
                let text = std::str::from_utf8(&b[start..i]).unwrap_or("").to_string();
                emit_code(&mut line_had_code, line, &mut pending, &mut out);
                out.toks.push(Tok { text, line });
            }
            _ => {
                emit_code(&mut line_had_code, line, &mut pending, &mut out);
                out.toks.push(Tok {
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    // Directives trailing at EOF bind to their own line (will show as
    // unused, which is the right outcome for a dangling allow).
    out.directives.append(&mut pending);
    out
}

/// First code on this line: flush pending standalone directives to it.
fn emit_code(line_had_code: &mut bool, line: u32, pending: &mut Vec<Directive>, out: &mut Source) {
    if !*line_had_code {
        *line_had_code = true;
        for mut d in pending.drain(..) {
            d.applies_line = line;
            out.directives.push(d);
        }
    }
}

/// Parses an `rcc-lint:` comment body, if the comment is one.
fn parse_directive(
    comment: &str,
    line: u32,
    line_had_code: bool,
    out: &mut Source,
    pending: &mut Vec<Directive>,
) {
    let Some(idx) = comment.find("rcc-lint:") else {
        return;
    };
    let body = comment[idx + "rcc-lint:".len()..].trim();
    let Some(rest) = body.strip_prefix("allow") else {
        out.bad_directives.push(BadDirective {
            line,
            detail: format!("expected `allow(rule, reason)` after `rcc-lint:`, got `{body}`"),
        });
        return;
    };
    let rest = rest.trim_start();
    let inner = rest.strip_prefix('(').and_then(|r| r.strip_suffix(')'));
    let Some(inner) = inner else {
        out.bad_directives.push(BadDirective {
            line,
            detail: "expected `allow(rule, reason)` with parentheses".to_string(),
        });
        return;
    };
    let Some((rule, reason)) = inner.split_once(',') else {
        out.bad_directives.push(BadDirective {
            line,
            detail: "suppression needs a reason: `allow(rule, reason)`".to_string(),
        });
        return;
    };
    let rule = rule.trim().to_string();
    let reason = reason.trim().to_string();
    if rule.is_empty() || reason.is_empty() {
        out.bad_directives.push(BadDirective {
            line,
            detail: "rule and reason must both be non-empty".to_string(),
        });
        return;
    }
    let d = Directive {
        rule,
        reason,
        comment_line: line,
        applies_line: line,
    };
    if line_had_code {
        out.directives.push(d);
    } else {
        pending.push(d);
    }
}

fn is_ident_start(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphabetic()
}

fn is_ident_char(c: Option<u8>) -> bool {
    matches!(c, Some(c) if c == b'_' || c.is_ascii_alphanumeric())
}

/// Does `b[i..]` start a raw string (`r"`, `r#"`) or byte string
/// (`b"`, `br"`, `b'`)? `i` points at the `r`/`b`.
fn starts_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    // Must not be inside an identifier (e.g. `number` ends in `r`): the
    // caller only reaches us when the previous token boundary was emitted,
    // but `for r in ...` style idents are handled because the ident arm
    // matches first only when the char *starts* an ident run. Here we are
    // at an ident start, so check what follows.
    match b[i] {
        b'r' => {
            let mut j = i + 1;
            while b.get(j) == Some(&b'#') {
                j += 1;
            }
            b.get(j) == Some(&b'"') && (j > i + 1 || b.get(i + 1) == Some(&b'"'))
        }
        b'b' => match b.get(i + 1) {
            Some(b'"') | Some(b'\'') => true,
            Some(b'r') => {
                let mut j = i + 2;
                while b.get(j) == Some(&b'#') {
                    j += 1;
                }
                b.get(j) == Some(&b'"')
            }
            _ => false,
        },
        _ => false,
    }
}

/// Skips a plain `"..."` string starting at `i` (the opening quote).
fn skip_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skips `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, or `b'…'` starting at `i`.
fn skip_raw_or_byte_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    if b[i] == b'b' {
        i += 1;
        if b.get(i) == Some(&b'\'') {
            // byte char literal b'x' / b'\n'
            i += 1;
            while i < b.len() && b[i] != b'\'' {
                if b[i] == b'\\' {
                    i += 1;
                }
                i += 1;
            }
            return i + 1;
        }
        if b.get(i) == Some(&b'"') {
            return skip_string(b, i, line);
        }
    }
    // raw (byte) string: r###"…"###
    debug_assert_eq!(b[i], b'r');
    i += 1;
    let mut hashes = 0;
    while b.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    debug_assert_eq!(b.get(i), Some(&b'"'));
    i += 1;
    while i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
            i += 1;
        } else if b[i] == b'"' {
            let mut j = i + 1;
            let mut n = 0;
            while n < hashes && b.get(j) == Some(&b'#') {
                n += 1;
                j += 1;
            }
            if n == hashes {
                return j;
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    i
}

/// Removes items gated behind test-only attributes from the token stream
/// and records out-of-line `#[cfg(test)] mod name;` declarations.
///
/// An attribute is test-only when its tokens contain the ident `test` not
/// wrapped in `not(...)` — this covers `#[cfg(test)]`, `#[test]`, and
/// `#[cfg(any(test, feature = "x"))]`, while `#[cfg(not(test))]` survives.
fn strip_test_items(src: Source) -> Source {
    let toks = src.toks;
    let mut kept: Vec<Tok> = Vec::with_capacity(toks.len());
    let mut test_mods = src.test_mods;
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is("#") && toks.get(i + 1).is_some_and(|t| t.is("[")) {
            let (attr_end, attr_toks) = read_attr(&toks, i);
            if attr_is_test(attr_toks) {
                // Skip any further attributes, then the item itself.
                let mut j = attr_end;
                while j < toks.len()
                    && toks[j].is("#")
                    && toks.get(j + 1).is_some_and(|t| t.is("["))
                {
                    let (e, _) = read_attr(&toks, j);
                    j = e;
                }
                i = skip_item(&toks, j, &mut test_mods);
                continue;
            }
        }
        kept.push(toks[i].clone());
        i += 1;
    }
    Source {
        toks: kept,
        directives: src.directives,
        bad_directives: src.bad_directives,
        test_mods,
    }
}

/// Reads an attribute `#[...]` starting at `i` (the `#`). Returns the
/// index one past `]` and the inner token slice.
fn read_attr(toks: &[Tok], i: usize) -> (usize, &[Tok]) {
    let start = i + 2; // past `#` `[`
    let mut depth = 1;
    let mut j = start;
    while j < toks.len() && depth > 0 {
        if toks[j].is("[") {
            depth += 1;
        } else if toks[j].is("]") {
            depth -= 1;
        }
        j += 1;
    }
    (j, &toks[start..j.saturating_sub(1)])
}

/// True when attribute tokens gate on `test` (outside `not(...)`).
fn attr_is_test(attr: &[Tok]) -> bool {
    for (k, t) in attr.iter().enumerate() {
        if t.is("test") {
            let negated = k >= 2 && attr[k - 2].is("not") && attr[k - 1].is("(");
            if !negated {
                return true;
            }
        }
    }
    false
}

/// Skips one item starting at `i`: up to a top-level `;` or through a
/// brace-matched `{ ... }`. Records `mod name;` targets into `test_mods`.
fn skip_item(toks: &[Tok], i: usize, test_mods: &mut Vec<String>) -> usize {
    // Detect `mod name ;` / `mod name { ... }`.
    let is_mod = toks.get(i).is_some_and(|t| t.is("mod"))
        || (toks.get(i).is_some_and(|t| t.is("pub")) && {
            // pub mod, pub(crate) mod, pub(in path) mod
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is("(")) {
                let mut depth = 1;
                j += 1;
                while j < toks.len() && depth > 0 {
                    if toks[j].is("(") {
                        depth += 1;
                    } else if toks[j].is(")") {
                        depth -= 1;
                    }
                    j += 1;
                }
            }
            toks.get(j).is_some_and(|t| t.is("mod"))
        });
    let mut j = i;
    let mut depth = 0usize;
    let mut last_ident_before_body: Option<String> = None;
    while j < toks.len() {
        let t = &toks[j];
        if depth == 0 {
            if t.is(";") {
                if is_mod {
                    if let Some(name) = last_ident_before_body.take() {
                        test_mods.push(name);
                    }
                }
                return j + 1;
            }
            if t.is("{") {
                depth = 1;
                j += 1;
                continue;
            }
            if t.text
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
                && !t.is("mod")
                && !t.is("pub")
                && !t.is("crate")
                && !t.is("in")
            {
                last_ident_before_body = Some(t.text.clone());
            }
        } else {
            if t.is("{") {
                depth += 1;
            } else if t.is("}") {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &Source) -> Vec<&str> {
        src.toks.iter().map(|t| t.text.as_str()).collect()
    }

    #[test]
    fn strips_comments_and_strings() {
        let s = lex("let x = \"HashMap\"; // HashMap in comment\n/* Instant::now */ y");
        assert_eq!(texts(&s), vec!["let", "x", "=", ";", "y"]);
    }

    #[test]
    fn raw_strings_and_bytes() {
        let s = lex(r##"let a = r#"panic! "quoted""#; let b = b"unwrap"; let c = br#"x"#;"##);
        assert!(!s.toks.iter().any(|t| t.is("panic") || t.is("unwrap")));
        assert!(s.toks.iter().any(|t| t.is("a")));
        assert!(s.toks.iter().any(|t| t.is("c")));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let s = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        // 'x' and '\n' are literals (stripped); 'a is a lifetime (ident kept).
        assert!(s.toks.iter().any(|t| t.is("a")));
        assert!(!s
            .toks
            .iter()
            .any(|t| t.is("x") && t.text.len() == 1 && t.line == 0));
    }

    #[test]
    fn float_literal_is_one_token() {
        let s = lex("let x = 1.5; let r = 0..10;");
        assert!(s.toks.iter().any(|t| t.is("1.5")));
        assert!(s.toks.iter().any(|t| t.is("0")));
        assert!(s.toks.iter().any(|t| t.is("10")));
    }

    #[test]
    fn line_numbers() {
        let s = lex("a\nb\n\nc");
        let lines: Vec<u32> = s.toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn directive_trailing() {
        let s =
            lex("use std::collections::HashMap; // rcc-lint: allow(default-hasher, alias site)\n");
        assert_eq!(s.directives.len(), 1);
        let d = &s.directives[0];
        assert_eq!(d.rule, "default-hasher");
        assert_eq!(d.reason, "alias site");
        assert_eq!(d.applies_line, 1);
    }

    #[test]
    fn directive_standalone_binds_to_next_code_line() {
        let s = lex("// rcc-lint: allow(wall-clock, self-profiling only)\n\nlet t = now();\n");
        assert_eq!(s.directives.len(), 1);
        assert_eq!(s.directives[0].comment_line, 1);
        assert_eq!(s.directives[0].applies_line, 3);
    }

    #[test]
    fn malformed_directives() {
        let s = lex(
            "// rcc-lint: allow(no-reason)\n// rcc-lint: deny(x, y)\n// rcc-lint: allow(, empty)\n",
        );
        assert_eq!(s.directives.len(), 0);
        assert_eq!(s.bad_directives.len(), 3);
    }

    #[test]
    fn cfg_test_mod_block_removed() {
        let s = lex("fn live() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn also_live() {}\n");
        assert!(s.toks.iter().any(|t| t.is("live")));
        assert!(s.toks.iter().any(|t| t.is("also_live")));
        assert!(!s.toks.iter().any(|t| t.is("unwrap")));
    }

    #[test]
    fn cfg_test_outofline_mod_recorded() {
        let s = lex("#[cfg(test)]\npub(crate) mod testrig;\nfn live() {}\n");
        assert_eq!(s.test_mods, vec!["testrig".to_string()]);
        assert!(s.toks.iter().any(|t| t.is("live")));
        assert!(!s.toks.iter().any(|t| t.is("testrig")));
    }

    #[test]
    fn cfg_not_test_survives() {
        let s = lex("#[cfg(not(test))]\nfn live() { x.unwrap(); }\n");
        assert!(s.toks.iter().any(|t| t.is("unwrap")));
    }

    #[test]
    fn test_attr_fn_removed() {
        let s = lex("#[test]\nfn t() { panic!(\"x\"); }\nfn live() {}\n");
        assert!(!s.toks.iter().any(|t| t.is("panic")));
        assert!(s.toks.iter().any(|t| t.is("live")));
    }

    #[test]
    fn nested_block_comments() {
        let s = lex("/* a /* b */ c */ fn f() {}");
        assert_eq!(texts(&s), vec!["fn", "f", "(", ")", "{", "}"]);
    }
}
