//! Analyzer 1: invariant lints over the token stream.
//!
//! Each rule encodes a source-level invariant that the dynamic safety nets
//! (model checker, SC sanitizer, chaos sweeps, checkpoint digests) silently
//! depend on:
//!
//! | rule id              | invariant                                              |
//! |----------------------|--------------------------------------------------------|
//! | `default-hasher`     | no `HashMap`/`HashSet` with the default (randomly      |
//! |                      | seeded) hasher — use `rcc_common::FxHashMap/Set`       |
//! | `wall-clock`         | no `Instant::now` / `SystemTime` / `UNIX_EPOCH` in     |
//! |                      | result-affecting crates                                |
//! | `ambient-randomness` | no `thread_rng` / `from_entropy` / `RandomState` /     |
//! |                      | `getrandom` / `OsRng` in result-affecting crates       |
//! | `sim-panic`          | no `panic!` / `todo!` / `unimplemented!` / `.unwrap()` |
//! |                      | / `.expect()` in `crates/sim` non-test code            |
//! | `lib-print`          | no `println!` / `print!` / `dbg!` in library crates    |
//! |                      | (`eprintln!` diagnostics are fine)                     |
//! | `unjournaled-write`  | no raw `std::fs` writes / `File::create` /             |
//! |                      | `OpenOptions` in `crates/serve` outside the durable    |
//! |                      | layer (`journal.rs`, `store.rs`)                       |
//!
//! Scoping lives in [`crate::Finding`]'s caller: the driver hands each file
//! a [`FileCtx`] naming its crate, and every rule declares which crates it
//! applies to.

use crate::lex::Source;
use crate::Finding;

/// Crates whose simulation results must be bit-reproducible; wall-clock
/// and ambient randomness are banned here outright.
pub const RESULT_AFFECTING: &[&str] = &["core", "gpu", "mem", "noc", "dram", "sim", "chaos"];

/// Crates where the panic-free discipline is enforced (typed `SimError`
/// instead of crashes).
pub const NO_PANIC: &[&str] = &["sim"];

/// Crates exempt from `lib-print`: the bench harness reports to the
/// console by design.
pub const PRINT_EXEMPT_CRATES: &[&str] = &["bench"];

/// The durable layer of `crates/serve`: the write-ahead journal and the
/// artifact store own the raw filesystem calls (and thread them through
/// fault injection and the kill switch). Everything else in the crate
/// must write through them, or crash recovery silently loses state.
pub const DURABLE_LAYER_FILES: &[&str] =
    &["crates/serve/src/journal.rs", "crates/serve/src/store.rs"];

/// Per-file context the driver supplies to the rules.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// Crate directory name (`core`, `sim`, …) or `rcc-repro` for the
    /// workspace root package.
    pub crate_name: String,
    /// Workspace-relative path, for findings.
    pub rel_path: String,
    /// True for binary entry points (`main.rs`), which may print.
    pub is_bin: bool,
}

/// Runs every invariant rule over one file's token stream.
pub fn check(src: &Source, ctx: &FileCtx) -> Vec<Finding> {
    let mut out = Vec::new();
    default_hasher(src, ctx, &mut out);
    if RESULT_AFFECTING.contains(&ctx.crate_name.as_str()) {
        wall_clock(src, ctx, &mut out);
        ambient_randomness(src, ctx, &mut out);
    }
    if NO_PANIC.contains(&ctx.crate_name.as_str()) {
        sim_panic(src, ctx, &mut out);
    }
    let print_exempt = PRINT_EXEMPT_CRATES.contains(&ctx.crate_name.as_str())
        || ctx.crate_name == "rcc-repro"
        || ctx.is_bin;
    if !print_exempt {
        lib_print(src, ctx, &mut out);
    }
    if ctx.crate_name == "serve" && !DURABLE_LAYER_FILES.contains(&ctx.rel_path.as_str()) {
        unjournaled_write(src, ctx, &mut out);
    }
    out
}

fn finding(ctx: &FileCtx, rule: &'static str, line: u32, message: String, help: &str) -> Finding {
    Finding {
        rule,
        file: ctx.rel_path.clone(),
        line,
        message,
        help: help.to_string(),
    }
}

fn default_hasher(src: &Source, ctx: &FileCtx, out: &mut Vec<Finding>) {
    for t in &src.toks {
        if t.is("HashMap") || t.is("HashSet") {
            out.push(finding(
                ctx,
                "default-hasher",
                t.line,
                format!(
                    "`{}` uses the default randomly-seeded hasher; iteration order can leak into results",
                    t.text
                ),
                "use `rcc_common::FxHashMap`/`FxHashSet` (fixed-seed) instead",
            ));
        }
    }
}

fn wall_clock(src: &Source, ctx: &FileCtx, out: &mut Vec<Finding>) {
    let toks = &src.toks;
    for (i, t) in toks.iter().enumerate() {
        let hit = if t.is("Instant") {
            // Only `Instant::now` reads the clock; storing an `Instant`
            // someone else created is someone else's finding.
            matches!(
                (toks.get(i + 1), toks.get(i + 2), toks.get(i + 3)),
                (Some(a), Some(b), Some(c)) if a.is(":") && b.is(":") && c.is("now")
            )
            .then(|| "Instant::now".to_string())
        } else if t.is("SystemTime") || t.is("UNIX_EPOCH") {
            Some(t.text.clone())
        } else {
            None
        };
        if let Some(what) = hit {
            out.push(finding(
                ctx,
                "wall-clock",
                t.line,
                format!("`{what}` reads the wall clock in a result-affecting crate"),
                "derive timing from `Cycle` counters; wall-clock belongs in rcc-obs self-profiling only",
            ));
        }
    }
}

fn ambient_randomness(src: &Source, ctx: &FileCtx, out: &mut Vec<Finding>) {
    const BANNED: &[&str] = &[
        "thread_rng",
        "from_entropy",
        "RandomState",
        "getrandom",
        "OsRng",
    ];
    for t in &src.toks {
        if BANNED.iter().any(|b| t.is(b)) {
            out.push(finding(
                ctx,
                "ambient-randomness",
                t.line,
                format!("`{}` draws OS entropy in a result-affecting crate", t.text),
                "thread all randomness through an explicitly-seeded `rcc_common` PRNG",
            ));
        }
    }
}

fn sim_panic(src: &Source, ctx: &FileCtx, out: &mut Vec<Finding>) {
    let toks = &src.toks;
    for (i, t) in toks.iter().enumerate() {
        let next_is = |s: &str| toks.get(i + 1).is_some_and(|n| n.is(s));
        if (t.is("panic") || t.is("todo") || t.is("unimplemented")) && next_is("!") {
            out.push(finding(
                ctx,
                "sim-panic",
                t.line,
                format!("`{}!` crashes the simulator instead of returning a typed error", t.text),
                "return `RunOutcome::Err(SimError::...)` so callers (and checkpoint/resume) see a typed failure",
            ));
        }
        if (t.is("unwrap") || t.is("expect")) && next_is("(") && i > 0 && toks[i - 1].is(".") {
            out.push(finding(
                ctx,
                "sim-panic",
                t.line,
                format!("`.{}()` panics on the error path", t.text),
                "propagate with `?` into `SimError`, or annotate the infallible case with `// rcc-lint: allow(sim-panic, why)`",
            ));
        }
    }
}

fn lib_print(src: &Source, ctx: &FileCtx, out: &mut Vec<Finding>) {
    let toks = &src.toks;
    for (i, t) in toks.iter().enumerate() {
        if (t.is("println") || t.is("print") || t.is("dbg"))
            && toks.get(i + 1).is_some_and(|n| n.is("!"))
        {
            out.push(finding(
                ctx,
                "lib-print",
                t.line,
                format!("`{}!` writes to stdout from a library crate", t.text),
                "route output through the caller (return it) or use `eprintln!` for diagnostics",
            ));
        }
    }
}

fn unjournaled_write(src: &Source, ctx: &FileCtx, out: &mut Vec<Finding>) {
    // Mutating `std::fs` free functions; reads (`fs::read*`, metadata)
    // are fine anywhere.
    const FS_WRITES: &[&str] = &[
        "write",
        "rename",
        "copy",
        "remove_file",
        "remove_dir_all",
        "create_dir_all",
        "create_dir",
        "hard_link",
        "set_permissions",
    ];
    let toks = &src.toks;
    for (i, t) in toks.iter().enumerate() {
        let path_call = |what: &str| {
            matches!(
                (toks.get(i + 1), toks.get(i + 2), toks.get(i + 3)),
                (Some(a), Some(b), Some(c)) if a.is(":") && b.is(":") && c.is(what)
            )
        };
        let hit = if t.is("fs") {
            FS_WRITES
                .iter()
                .find(|w| path_call(w))
                .map(|w| format!("fs::{w}"))
        } else if t.is("File") && path_call("create") {
            Some("File::create".to_string())
        } else if t.is("OpenOptions") {
            Some("OpenOptions".to_string())
        } else {
            None
        };
        if let Some(what) = hit {
            out.push(finding(
                ctx,
                "unjournaled-write",
                t.line,
                format!("`{what}` mutates the filesystem outside rcc-serve's durable layer"),
                "route the write through the journal or store (journal.rs / store.rs), so it is \
                 fault-injected, ordered, and replayed on crash recovery — or annotate a \
                 genuinely non-durable path with `// rcc-lint: allow(unjournaled-write, why)`",
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn ctx(name: &str) -> FileCtx {
        FileCtx {
            crate_name: name.to_string(),
            rel_path: format!("crates/{name}/src/lib.rs"),
            is_bin: false,
        }
    }

    fn rules_fired(src: &str, crate_name: &str) -> Vec<&'static str> {
        let s = lex(src);
        check(&s, &ctx(crate_name))
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn default_hasher_fires_everywhere() {
        assert_eq!(
            rules_fired("use std::collections::HashMap;", "workloads"),
            vec!["default-hasher"]
        );
        assert_eq!(
            rules_fired("let s: HashSet<u32> = HashSet::new();", "obs"),
            vec!["default-hasher", "default-hasher"]
        );
        assert!(rules_fired("use rcc_common::FxHashMap;", "core").is_empty());
    }

    #[test]
    fn wall_clock_scoped_to_result_affecting() {
        assert_eq!(
            rules_fired("let t = Instant::now();", "sim"),
            vec!["wall-clock"]
        );
        assert!(rules_fired("let t = Instant::now();", "obs").is_empty());
        // A stored Instant (no ::now) is not a clock read.
        assert!(rules_fired("fn f(t: Instant) {}", "sim").is_empty());
        assert_eq!(
            rules_fired("use std::time::SystemTime;", "core"),
            vec!["wall-clock"]
        );
    }

    #[test]
    fn randomness_scoped_to_result_affecting() {
        assert_eq!(
            rules_fired("let mut r = thread_rng();", "gpu"),
            vec!["ambient-randomness"]
        );
        assert!(rules_fired("let mut r = thread_rng();", "bench").is_empty());
    }

    #[test]
    fn sim_panic_only_in_sim() {
        assert_eq!(rules_fired("panic!(\"boom\")", "sim"), vec!["sim-panic"]);
        assert_eq!(rules_fired("x.unwrap();", "sim"), vec!["sim-panic"]);
        assert_eq!(rules_fired("x.expect(\"y\");", "sim"), vec!["sim-panic"]);
        assert_eq!(rules_fired("todo!()", "sim"), vec!["sim-panic"]);
        assert!(rules_fired("x.unwrap();", "core").is_empty());
        // unwrap_or_else is a different method and must not fire.
        assert!(rules_fired("x.unwrap_or_else(|| 0);", "sim").is_empty());
        assert!(rules_fired("x.unwrap_or_default();", "sim").is_empty());
        // debug_assert! is not in the banned set.
        assert!(rules_fired("debug_assert!(ok);", "sim").is_empty());
    }

    #[test]
    fn lib_print_allows_eprintln_and_bench() {
        assert_eq!(rules_fired("println!(\"x\");", "core"), vec!["lib-print"]);
        assert_eq!(rules_fired("dbg!(x);", "mem"), vec!["lib-print"]);
        assert!(rules_fired("eprintln!(\"x\");", "core").is_empty());
        assert!(rules_fired("println!(\"x\");", "bench").is_empty());
    }

    #[test]
    fn bins_may_print() {
        let s = lex("println!(\"usage\");");
        let c = FileCtx {
            crate_name: "lint".to_string(),
            rel_path: "crates/lint/src/main.rs".to_string(),
            is_bin: true,
        };
        assert!(check(&s, &c).is_empty());
    }

    #[test]
    fn unjournaled_write_scoped_to_serve_outside_the_durable_layer() {
        assert_eq!(
            rules_fired("fs::write(&path, bytes)?;", "serve"),
            vec!["unjournaled-write"]
        );
        assert_eq!(
            rules_fired("let f = File::create(&path)?;", "serve"),
            vec!["unjournaled-write"]
        );
        assert_eq!(
            rules_fired("OpenOptions::new().append(true)", "serve"),
            vec!["unjournaled-write"]
        );
        assert_eq!(
            rules_fired("fs::rename(&tmp, &path)?;", "serve"),
            vec!["unjournaled-write"]
        );
        // Reads are fine; other crates are out of scope.
        assert!(rules_fired("let b = fs::read(&path)?;", "serve").is_empty());
        assert!(rules_fired("fs::write(&path, bytes)?;", "bench").is_empty());
        // The durable layer itself owns the raw calls.
        let s = lex("fs::write(&path, bytes)?;");
        let c = FileCtx {
            crate_name: "serve".to_string(),
            rel_path: "crates/serve/src/journal.rs".to_string(),
            is_bin: false,
        };
        assert!(check(&s, &c).is_empty());
    }

    #[test]
    fn test_code_is_skipped() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n use std::collections::HashMap;\n}\n";
        assert!(rules_fired(src, "core").is_empty());
    }
}
