//! Analyzer 2: protocol transition-table extraction and completeness.
//!
//! The coherence controllers in `crates/core/src/{rcc,mesi,tc}` are
//! written as `match` dispatch over the message enums in
//! `rcc_core::msg` (`ReqPayload`, `RespPayload`, `AccessKind`). This
//! module recovers the (state × event) transition relation from those
//! `match` arms:
//!
//! * every `match` whose scrutinee ends in `.payload` or `.kind` becomes
//!   a table; arms are classified **handled** (real transition),
//!   **rejected** (`unreachable!` / `panic!` / `debug_assert!(false)` —
//!   the protocol asserts the event cannot arrive), or **ignored**
//!   (empty body — the event is dropped on the floor by design);
//! * tables for the same enum in the same controller file are aggregated
//!   (helper predicates and the main dispatch each contribute arms);
//! * completeness, dead arms, and unknown variants are checked against
//!   the enum definitions parsed from `msg.rs`;
//! * `*State` enums defined by a controller are checked for variants the
//!   protocol never references (unreachable states);
//! * the result is emitted as a schema-pinned JSON matrix and, for RCC,
//!   diffed against the transitions `rcc-verify` actually visited.

use crate::lex::Tok;
use crate::Finding;
use std::collections::BTreeMap;

/// One parsed `enum` definition (name, variants with lines, body range).
#[derive(Debug, Clone)]
pub struct EnumDef {
    /// Enum name, e.g. `ReqPayload`.
    pub name: String,
    /// Variant names in declaration order, with their source lines.
    pub variants: Vec<(String, u32)>,
    /// Token-index range of the body (for excluding the declaration from
    /// reference scans).
    pub body_range: (usize, usize),
    /// Line of the `enum` keyword.
    pub line: u32,
}

/// How a match arm treats an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ArmStatus {
    /// Empty body: the event is silently dropped by design.
    Ignored,
    /// `unreachable!` / `panic!` / `debug_assert!(false)`: the protocol
    /// asserts the event never arrives in this context.
    Rejected,
    /// A real transition.
    Handled,
}

impl ArmStatus {
    /// JSON string form.
    pub fn as_str(self) -> &'static str {
        match self {
            ArmStatus::Handled => "handled",
            ArmStatus::Rejected => "rejected",
            ArmStatus::Ignored => "ignored",
        }
    }
}

/// One `Enum::Variant` arm occurrence inside a single `match`.
#[derive(Debug, Clone)]
pub struct Arm {
    /// Enum the pattern is qualified with.
    pub enum_name: String,
    /// Variant name.
    pub variant: String,
    /// Arm classification.
    pub status: ArmStatus,
    /// Source line of the pattern.
    pub line: u32,
}

/// One `match` over a payload/kind scrutinee.
#[derive(Debug, Clone)]
pub struct Match {
    /// Enum dispatched on (from the first qualified arm pattern).
    pub enum_name: String,
    /// Qualified arms, in source order (a `A | B` pattern yields two).
    pub arms: Vec<Arm>,
    /// Wildcard arm (`_` or a bare binding), if present.
    pub wildcard: Option<(ArmStatus, u32)>,
    /// Line of the `match` keyword.
    pub line: u32,
}

/// Aggregated (controller × enum) transition table.
#[derive(Debug, Clone)]
pub struct AggTable {
    /// Event enum name.
    pub enum_name: String,
    /// Per-variant best status and the line of the defining arm.
    /// `Handled` wins over `Rejected` wins over `Ignored`.
    pub variants: BTreeMap<String, (ArmStatus, u32)>,
    /// True when any contributing match had a wildcard arm.
    pub wildcard: bool,
    /// Wildcard statuses seen (used for completeness semantics).
    pub wildcard_statuses: Vec<ArmStatus>,
    /// Line of the first contributing match.
    pub line: u32,
}

/// A controller's full extracted table set.
#[derive(Debug, Clone)]
pub struct ControllerTable {
    /// Protocol directory name: `rcc`, `mesi`, `tc`.
    pub protocol: String,
    /// Controller file stem: `l1`, `l2`, `wb`.
    pub controller: String,
    /// Workspace-relative source path.
    pub file: String,
    /// States declared by `*State` enums in this file.
    pub states: Vec<String>,
    /// Aggregated tables, keyed by event enum name.
    pub tables: BTreeMap<String, AggTable>,
}

/// Extracts every `enum` definition from a token stream.
pub fn extract_enums(toks: &[Tok]) -> Vec<EnumDef> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is("enum") && toks.get(i + 1).is_some_and(is_ident) {
            let name = toks[i + 1].text.clone();
            let line = toks[i].line;
            // Find the opening brace (skipping generics like `<T>`).
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is("{") && !toks[j].is(";") {
                j += 1;
            }
            if j >= toks.len() || toks[j].is(";") {
                i = j + 1;
                continue;
            }
            let body_start = j + 1;
            let mut variants = Vec::new();
            let mut depth = 0usize; // nesting inside variant payloads
            let mut k = body_start;
            let mut at_variant_start = true;
            while k < toks.len() {
                let t = &toks[k];
                if depth == 0 {
                    if t.is("}") {
                        break;
                    }
                    if t.is(",") {
                        at_variant_start = true;
                        k += 1;
                        continue;
                    }
                    if t.is("#") && toks.get(k + 1).is_some_and(|n| n.is("[")) {
                        // Skip attribute on a variant.
                        let mut d = 1;
                        k += 2;
                        while k < toks.len() && d > 0 {
                            if toks[k].is("[") {
                                d += 1;
                            } else if toks[k].is("]") {
                                d -= 1;
                            }
                            k += 1;
                        }
                        continue;
                    }
                    if at_variant_start && is_ident(t) {
                        variants.push((t.text.clone(), t.line));
                        at_variant_start = false;
                        k += 1;
                        continue;
                    }
                }
                if t.is("{") || t.is("(") || t.is("[") {
                    depth += 1;
                } else if t.is("}") || t.is(")") || t.is("]") {
                    depth = depth.saturating_sub(1);
                }
                k += 1;
            }
            out.push(EnumDef {
                name,
                variants,
                body_range: (body_start, k),
                line,
            });
            i = k + 1;
        } else {
            i += 1;
        }
    }
    out
}

fn is_ident(t: &Tok) -> bool {
    t.text
        .chars()
        .next()
        .is_some_and(|c| c.is_alphabetic() || c == '_')
}

/// Extracts every `match` whose scrutinee ends in `.payload` or `.kind`.
pub fn extract_matches(toks: &[Tok]) -> Vec<Match> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is("match") {
            continue;
        }
        // Scrutinee: tokens up to the body `{` at bracket depth 0.
        let mut j = i + 1;
        let mut depth = 0usize;
        while j < toks.len() {
            let t = &toks[j];
            if depth == 0 && t.is("{") {
                break;
            }
            if t.is("(") || t.is("[") {
                depth += 1;
            } else if t.is(")") || t.is("]") {
                depth = depth.saturating_sub(1);
            }
            j += 1;
        }
        if j >= toks.len() {
            continue;
        }
        let scrutinee = &toks[i + 1..j];
        let ends_in_field = scrutinee.len() >= 2
            && scrutinee[scrutinee.len() - 2].is(".")
            && (scrutinee[scrutinee.len() - 1].is("payload")
                || scrutinee[scrutinee.len() - 1].is("kind"));
        if !ends_in_field {
            continue;
        }
        if let Some(m) = parse_match_body(toks, j, toks[i].line) {
            out.push(m);
        }
    }
    out
}

/// Parses the arm list of a match whose body opens at `toks[open]`.
fn parse_match_body(toks: &[Tok], open: usize, match_line: u32) -> Option<Match> {
    let mut arms: Vec<Arm> = Vec::new();
    let mut wildcard: Option<(ArmStatus, u32)> = None;
    let mut enum_name: Option<String> = None;
    let mut k = open + 1;
    loop {
        // End of match?
        if k >= toks.len() || toks[k].is("}") {
            break;
        }
        // Pattern: tokens until `=>` at depth 0.
        let pat_start = k;
        let mut depth = 0usize;
        while k < toks.len() {
            let t = &toks[k];
            if depth == 0 && t.is("=") && toks.get(k + 1).is_some_and(|n| n.is(">")) {
                break;
            }
            if t.is("(") || t.is("[") || t.is("{") {
                depth += 1;
            } else if t.is(")") || t.is("]") || t.is("}") {
                if depth == 0 {
                    // Malformed / end of match body.
                    return finish(arms, wildcard, enum_name, match_line);
                }
                depth -= 1;
            }
            k += 1;
        }
        if k >= toks.len() {
            break;
        }
        let pattern = &toks[pat_start..k];
        k += 2; // past `=>`

        // Body: a `{ ... }` block, or an expression up to `,` at depth 0.
        let body_start = k;
        let body_toks: &[Tok];
        if toks.get(k).is_some_and(|t| t.is("{")) {
            let mut d = 1;
            k += 1;
            let inner_start = k;
            while k < toks.len() && d > 0 {
                if toks[k].is("{") {
                    d += 1;
                } else if toks[k].is("}") {
                    d -= 1;
                }
                k += 1;
            }
            body_toks = &toks[inner_start..k.saturating_sub(1)];
            if toks.get(k).is_some_and(|t| t.is(",")) {
                k += 1;
            }
        } else {
            let mut d = 0usize;
            while k < toks.len() {
                let t = &toks[k];
                if d == 0 && t.is(",") {
                    break;
                }
                if d == 0 && t.is("}") {
                    break;
                }
                if t.is("(") || t.is("[") || t.is("{") {
                    d += 1;
                } else if t.is(")") || t.is("]") || t.is("}") {
                    d = d.saturating_sub(1);
                }
                k += 1;
            }
            body_toks = &toks[body_start..k];
            if toks.get(k).is_some_and(|t| t.is(",")) {
                k += 1;
            }
        }
        let status = classify_body(body_toks);

        // Split the pattern on top-level `|`, drop any `if` guard.
        let segments = split_pattern(pattern);
        for seg in segments {
            if seg.is_empty() {
                continue;
            }
            if seg.len() == 1 && (seg[0].is("_") || is_ident(&seg[0])) {
                // `_` or a bare binding like `other`: wildcard.
                if wildcard.is_none() {
                    wildcard = Some((status, seg[0].line));
                }
                continue;
            }
            // Qualified `Enum::Variant` (payload tokens at depth > 0 are
            // not part of the qualification).
            if let Some((e, v, line)) = qualified_variant(seg) {
                if enum_name.is_none() {
                    enum_name = Some(e.clone());
                }
                arms.push(Arm {
                    enum_name: e,
                    variant: v,
                    status,
                    line,
                });
            }
        }
    }
    finish(arms, wildcard, enum_name, match_line)
}

fn finish(
    arms: Vec<Arm>,
    wildcard: Option<(ArmStatus, u32)>,
    enum_name: Option<String>,
    line: u32,
) -> Option<Match> {
    let enum_name = enum_name?;
    Some(Match {
        enum_name,
        arms,
        wildcard,
        line,
    })
}

/// Splits a pattern on top-level `|`, truncating at a top-level `if` guard.
fn split_pattern(pattern: &[Tok]) -> Vec<&[Tok]> {
    let mut segs = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    let mut end = pattern.len();
    for (idx, t) in pattern.iter().enumerate() {
        if depth == 0 && t.is("if") {
            end = idx;
            break;
        }
        if t.is("(") || t.is("[") || t.is("{") {
            depth += 1;
        } else if t.is(")") || t.is("]") || t.is("}") {
            depth = depth.saturating_sub(1);
        } else if depth == 0 && t.is("|") && idx > start {
            segs.push(&pattern[start..idx]);
            start = idx + 1;
        }
    }
    if start < end {
        segs.push(&pattern[start..end]);
    }
    segs
}

/// Reads `Enum :: Variant` (optionally `&`-prefixed, optionally followed
/// by a payload pattern) from a pattern segment.
fn qualified_variant(seg: &[Tok]) -> Option<(String, String, u32)> {
    let mut i = 0;
    while i < seg.len() && (seg[i].is("&") || seg[i].is("ref")) {
        i += 1;
    }
    if i + 3 < seg.len()
        && is_ident(&seg[i])
        && seg[i + 1].is(":")
        && seg[i + 2].is(":")
        && is_ident(&seg[i + 3])
    {
        Some((seg[i].text.clone(), seg[i + 3].text.clone(), seg[i].line))
    } else {
        None
    }
}

/// Classifies an arm body from its tokens.
fn classify_body(body: &[Tok]) -> ArmStatus {
    if body.is_empty() {
        return ArmStatus::Ignored;
    }
    for (i, t) in body.iter().enumerate() {
        let bang = body.get(i + 1).is_some_and(|n| n.is("!"));
        if (t.is("unreachable") || t.is("panic") || t.is("todo") || t.is("unimplemented")) && bang {
            return ArmStatus::Rejected;
        }
        if t.is("debug_assert")
            && bang
            && body.get(i + 2).is_some_and(|n| n.is("("))
            && body.get(i + 3).is_some_and(|n| n.is("false"))
        {
            return ArmStatus::Rejected;
        }
    }
    ArmStatus::Handled
}

/// Aggregates a controller file's matches into per-enum tables.
pub fn aggregate(protocol: &str, controller: &str, file: &str, toks: &[Tok]) -> ControllerTable {
    let matches = extract_matches(toks);
    let enums = extract_enums(toks);
    let states: Vec<String> = enums
        .iter()
        .filter(|e| e.name.ends_with("State"))
        .flat_map(|e| e.variants.iter().map(|(v, _)| v.clone()))
        .collect();
    let mut tables: BTreeMap<String, AggTable> = BTreeMap::new();
    for m in &matches {
        let t = tables
            .entry(m.enum_name.clone())
            .or_insert_with(|| AggTable {
                enum_name: m.enum_name.clone(),
                variants: BTreeMap::new(),
                wildcard: false,
                wildcard_statuses: Vec::new(),
                line: m.line,
            });
        for arm in &m.arms {
            let entry = t
                .variants
                .entry(arm.variant.clone())
                .or_insert((arm.status, arm.line));
            if arm.status > entry.0 {
                *entry = (arm.status, arm.line);
            }
        }
        if let Some((ws, _)) = m.wildcard {
            t.wildcard = true;
            t.wildcard_statuses.push(ws);
        }
    }
    ControllerTable {
        protocol: protocol.to_string(),
        controller: controller.to_string(),
        file: file.to_string(),
        states,
        tables,
    }
}

/// Completeness / dead-arm / unknown-variant findings for one controller.
///
/// `event_enums` are the definitions from `msg.rs`.
pub fn table_findings(
    ct: &ControllerTable,
    matches: &[Match],
    event_enums: &[EnumDef],
) -> Vec<Finding> {
    let mut out = Vec::new();

    // unknown-variant: an arm names a variant the enum does not define.
    for m in matches {
        if let Some(def) = event_enums.iter().find(|e| e.name == m.enum_name) {
            for arm in &m.arms {
                if arm.enum_name == def.name && !def.variants.iter().any(|(v, _)| *v == arm.variant)
                {
                    out.push(Finding {
                        rule: "unknown-variant",
                        file: ct.file.clone(),
                        line: arm.line,
                        message: format!(
                            "pattern names `{}::{}`, but the enum defines no such variant",
                            arm.enum_name, arm.variant
                        ),
                        help: "the table extractor is out of sync with msg.rs — fix the pattern or the enum".to_string(),
                    });
                }
            }
        }
    }

    // dead-arm: duplicate variant within one match, or a qualified arm
    // after the wildcard.
    for m in matches {
        let mut seen: BTreeMap<&str, u32> = BTreeMap::new();
        for arm in &m.arms {
            if let Some(first) = seen.get(arm.variant.as_str()) {
                out.push(Finding {
                    rule: "dead-arm",
                    file: ct.file.clone(),
                    line: arm.line,
                    message: format!(
                        "`{}::{}` already matched by the arm on line {first}; this arm never runs",
                        arm.enum_name, arm.variant
                    ),
                    help: "remove the unreachable arm".to_string(),
                });
            } else {
                seen.insert(arm.variant.as_str(), arm.line);
            }
            if let Some((_, wline)) = m.wildcard {
                if arm.line > wline {
                    out.push(Finding {
                        rule: "dead-arm",
                        file: ct.file.clone(),
                        line: arm.line,
                        message: format!(
                            "`{}::{}` follows the wildcard arm on line {wline}; this arm never runs",
                            arm.enum_name, arm.variant
                        ),
                        help: "move the arm above the wildcard".to_string(),
                    });
                }
            }
        }
    }

    // incomplete-match: a variant never named anywhere in the controller,
    // swallowed only by ignoring/rejecting wildcards. A *handled* wildcard
    // (predicate matches like `Gets => .., _ => serve_write(..)`) is a
    // default transition, so unnamed variants are fine there.
    for (enum_name, table) in &ct.tables {
        let Some(def) = event_enums.iter().find(|e| e.name == *enum_name) else {
            continue;
        };
        let has_default = table.wildcard_statuses.contains(&ArmStatus::Handled);
        if has_default {
            continue;
        }
        for (v, _) in &def.variants {
            if !table.variants.contains_key(v) {
                out.push(Finding {
                    rule: "incomplete-match",
                    file: ct.file.clone(),
                    line: table.line,
                    message: format!(
                        "`{}::{}` is never named in this controller's `{}` dispatch — it is silently dropped or crashes",
                        enum_name, v, enum_name
                    ),
                    help: "add an explicit arm: handle it, or reject it with `unreachable!`/`debug_assert!(false, ..)`".to_string(),
                });
            }
        }
    }
    out
}

/// Unreachable-state findings: `*State` variants defined in `def_file`
/// that no non-test token stream in the protocol directory references
/// (outside the declaration itself).
pub fn unreachable_states(
    def_file: &str,
    enums: &[EnumDef],
    protocol_sources: &[(String, Vec<Tok>)],
) -> Vec<Finding> {
    let mut out = Vec::new();
    for def in enums.iter().filter(|e| e.name.ends_with("State")) {
        for (variant, vline) in &def.variants {
            let mut referenced = false;
            'files: for (path, toks) in protocol_sources {
                for i in 0..toks.len() {
                    if toks[i].is(&def.name)
                        && toks.get(i + 1).is_some_and(|t| t.is(":"))
                        && toks.get(i + 2).is_some_and(|t| t.is(":"))
                        && toks.get(i + 3).is_some_and(|t| t.is(variant))
                    {
                        // Skip references inside the declaration body of
                        // the defining file.
                        if path == def_file && i >= def.body_range.0 && i < def.body_range.1 {
                            continue;
                        }
                        referenced = true;
                        break 'files;
                    }
                }
            }
            if !referenced {
                out.push(Finding {
                    rule: "unreachable-state",
                    file: def_file.to_string(),
                    line: *vline,
                    message: format!(
                        "state `{}::{}` is declared but never constructed or matched in the protocol",
                        def.name, variant
                    ),
                    help: "remove the dead state or wire it into the controller".to_string(),
                });
            }
        }
    }
    out
}

/// One (protocol, controller, state, event) → count row from the
/// `rcc-verify` coverage TSV.
pub type CoverageMap = BTreeMap<(String, String, String, String), u64>;

/// Parses the coverage TSV `rcc-verify --transitions` writes:
/// tab-separated `protocol controller state event count`, `#` comments.
pub fn parse_coverage(text: &str) -> Result<CoverageMap, String> {
    let mut out = CoverageMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let cols: Vec<&str> = line.split('\t').collect();
        if cols.len() != 5 {
            return Err(format!(
                "coverage line {}: expected 5 tab-separated columns, got {}",
                lineno + 1,
                cols.len()
            ));
        }
        let count: u64 = cols[4]
            .parse()
            .map_err(|_| format!("coverage line {}: bad count `{}`", lineno + 1, cols[4]))?;
        *out.entry((
            cols[0].to_string(),
            cols[1].to_string(),
            cols[2].to_string(),
            cols[3].to_string(),
        ))
        .or_insert(0) += count;
    }
    Ok(out)
}

/// A statically-handled RCC transition the model checker never exercised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageGap {
    /// Controller (`l1` / `l2`).
    pub controller: String,
    /// Event enum name.
    pub enum_name: String,
    /// Event (variant) name.
    pub event: String,
    /// File and line of the handling arm.
    pub file: String,
    /// Line of the handling arm.
    pub line: u32,
}

/// Diffs the static RCC tables against visited transitions: every
/// *handled* event of the `rcc` controllers must have been exercised at
/// least once (ignored/rejected arms are exempt — the checker proves they
/// never fire by exploring everything else).
pub fn coverage_gaps(controllers: &[ControllerTable], cov: &CoverageMap) -> Vec<CoverageGap> {
    let mut gaps = Vec::new();
    for ct in controllers.iter().filter(|c| c.protocol == "rcc") {
        for (enum_name, table) in &ct.tables {
            for (variant, (status, line)) in &table.variants {
                if *status != ArmStatus::Handled {
                    continue;
                }
                let visited = cov.iter().any(|((p, c, _s, e), n)| {
                    p == "rcc" && c == &ct.controller && e == variant && *n > 0
                });
                if !visited {
                    gaps.push(CoverageGap {
                        controller: ct.controller.clone(),
                        enum_name: enum_name.clone(),
                        event: variant.clone(),
                        file: ct.file.clone(),
                        line: *line,
                    });
                }
            }
        }
    }
    gaps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    const MSG: &str =
        "pub enum ReqPayload { Gets { flags: u8 }, Write { w: u8, v: u32 }, Atomic, InvAck }";

    fn msg_enums() -> Vec<EnumDef> {
        extract_enums(&lex(MSG).toks)
    }

    #[test]
    fn enum_extraction() {
        let enums = msg_enums();
        assert_eq!(enums.len(), 1);
        assert_eq!(enums[0].name, "ReqPayload");
        let names: Vec<&str> = enums[0].variants.iter().map(|(v, _)| v.as_str()).collect();
        assert_eq!(names, vec!["Gets", "Write", "Atomic", "InvAck"]);
    }

    #[test]
    fn match_extraction_and_classification() {
        let src = r#"
            fn f(req: Req) {
                match req.payload {
                    ReqPayload::Gets { .. } => serve(),
                    ReqPayload::Write { .. } | ReqPayload::Atomic => { write(); }
                    ReqPayload::InvAck => {}
                    other => unreachable!("no {other:?}"),
                }
            }
        "#;
        let ms = extract_matches(&lex(src).toks);
        assert_eq!(ms.len(), 1);
        let m = &ms[0];
        assert_eq!(m.enum_name, "ReqPayload");
        assert_eq!(m.arms.len(), 4);
        assert_eq!(m.arms[0].status, ArmStatus::Handled);
        assert_eq!(m.arms[1].status, ArmStatus::Handled);
        assert_eq!(m.arms[2].variant, "Atomic");
        assert_eq!(m.arms[3].status, ArmStatus::Ignored);
        assert_eq!(m.wildcard.map(|(s, _)| s), Some(ArmStatus::Rejected));
    }

    #[test]
    fn non_payload_matches_skipped() {
        let src = "fn f(x: u8) { match x { 0 => a(), _ => b() } }";
        assert!(extract_matches(&lex(src).toks).is_empty());
    }

    #[test]
    fn incomplete_match_fires_for_rejecting_wildcard() {
        let src = r#"
            fn f(req: Req) {
                match req.payload {
                    ReqPayload::Gets { .. } => serve(),
                    _ => unreachable!(),
                }
            }
        "#;
        let toks = lex(src).toks;
        let ms = extract_matches(&toks);
        let ct = aggregate("rcc", "l2", "x.rs", &toks);
        let fs = table_findings(&ct, &ms, &msg_enums());
        let missing: Vec<&str> = fs
            .iter()
            .filter(|f| f.rule == "incomplete-match")
            .map(|f| f.message.as_str())
            .collect();
        assert_eq!(missing.len(), 3, "{missing:?}"); // Write, Atomic, InvAck
    }

    #[test]
    fn handled_wildcard_is_a_default_transition() {
        let src = r#"
            fn f(req: Req) {
                match req.payload {
                    ReqPayload::Gets { .. } => serve(),
                    _ => serve_write(),
                }
            }
        "#;
        let toks = lex(src).toks;
        let ms = extract_matches(&toks);
        let ct = aggregate("rcc", "l2", "x.rs", &toks);
        let fs = table_findings(&ct, &ms, &msg_enums());
        assert!(fs.iter().all(|f| f.rule != "incomplete-match"), "{fs:?}");
    }

    #[test]
    fn dead_arm_duplicate_variant() {
        let src = r#"
            fn f(req: Req) {
                match req.payload {
                    ReqPayload::Gets { .. } => a(),
                    ReqPayload::Gets { .. } => b(),
                    _ => c(),
                }
            }
        "#;
        let toks = lex(src).toks;
        let ms = extract_matches(&toks);
        let ct = aggregate("rcc", "l2", "x.rs", &toks);
        let fs = table_findings(&ct, &ms, &msg_enums());
        assert_eq!(fs.iter().filter(|f| f.rule == "dead-arm").count(), 1);
    }

    #[test]
    fn unknown_variant_detected() {
        let src = r#"
            fn f(req: Req) {
                match req.payload {
                    ReqPayload::Getz { .. } => a(),
                    _ => b(),
                }
            }
        "#;
        let toks = lex(src).toks;
        let ms = extract_matches(&toks);
        let ct = aggregate("rcc", "l2", "x.rs", &toks);
        let fs = table_findings(&ct, &ms, &msg_enums());
        assert_eq!(fs.iter().filter(|f| f.rule == "unknown-variant").count(), 1);
    }

    #[test]
    fn unreachable_state_detected_and_cleared() {
        let src = "pub enum L1State { I, V, Ghost }\nfn f() -> L1State { L1State::I }\nfn g(s: L1State) -> bool { matches!(s, L1State::V) }";
        let s = lex(src);
        let enums = extract_enums(&s.toks);
        let sources = vec![("l1.rs".to_string(), s.toks.clone())];
        let fs = unreachable_states("l1.rs", &enums, &sources);
        assert_eq!(fs.len(), 1);
        assert!(fs[0].message.contains("Ghost"));
    }

    #[test]
    fn coverage_parse_and_diff() {
        let cov = parse_coverage("# comment\nrcc\tl1\tI\tLoad\t4\nrcc\tl2\tI\tGets\t2\n").unwrap();
        assert_eq!(cov.len(), 2);

        let src = r#"
            fn f(req: Req) {
                match req.payload {
                    ReqPayload::Gets { .. } => serve(),
                    ReqPayload::Write { .. } => write(),
                    ReqPayload::Atomic => atomic(),
                    ReqPayload::InvAck => {}
                }
            }
        "#;
        let toks = lex(src).toks;
        let ct = aggregate("rcc", "l2", "l2.rs", &toks);
        let gaps = coverage_gaps(&[ct], &cov);
        // Gets visited; Write/Atomic handled but unvisited; InvAck ignored.
        let events: Vec<&str> = gaps.iter().map(|g| g.event.as_str()).collect();
        assert_eq!(events, vec!["Atomic", "Write"]);
    }

    #[test]
    fn coverage_rejects_malformed() {
        assert!(parse_coverage("rcc\tl1\tI\tLoad").is_err());
        assert!(parse_coverage("rcc\tl1\tI\tLoad\tnope").is_err());
    }
}
