//! `rcc-lint`: dependency-free static analysis for the RCC workspace.
//!
//! Two analyzers share one token scanner ([`lex`]):
//!
//! 1. [`rules`] — **invariant lints**: determinism (no default-hasher
//!    maps, no wall clock, no ambient randomness), crash-safety (no
//!    panics in `crates/sim`), and hygiene (no stdout printing from
//!    libraries), with `// rcc-lint: allow(rule, reason)` suppressions
//!    and unused-suppression detection.
//! 2. [`table`] — **protocol-table analysis**: extracts the
//!    (state × message) transition tables from the coherence controller
//!    `match` arms, checks completeness / dead arms / unreachable states,
//!    emits a schema-pinned JSON matrix, and diffs the RCC tables against
//!    the transitions `rcc-verify` actually exercised.
//!
//! The crate deliberately has zero dependencies (`syn` included): it must
//! build and run even when the code it checks does not compile.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lex;
pub mod rules;
pub mod table;

use std::fs;
use std::path::{Path, PathBuf};

use lex::Source;
use rules::FileCtx;
use table::{ControllerTable, CoverageGap, CoverageMap, EnumDef};

/// One lint finding, rendered rustc-style.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id, e.g. `default-hasher`.
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub help: String,
}

/// The rule catalog: (id, one-line description). Rendered by `--help`
/// and mirrored in DESIGN.md.
pub const RULES: &[(&str, &str)] = &[
    (
        "default-hasher",
        "std HashMap/HashSet (random seed) — use rcc_common::FxHashMap/Set",
    ),
    (
        "wall-clock",
        "Instant::now/SystemTime/UNIX_EPOCH in result-affecting crates",
    ),
    (
        "ambient-randomness",
        "thread_rng/RandomState/OsRng/... in result-affecting crates",
    ),
    (
        "sim-panic",
        "panic!/todo!/unimplemented!/.unwrap()/.expect() in crates/sim",
    ),
    ("lib-print", "println!/print!/dbg! in library crates"),
    (
        "unjournaled-write",
        "raw std::fs mutation in crates/serve outside journal.rs/store.rs",
    ),
    (
        "incomplete-match",
        "protocol event never named in a controller's dispatch",
    ),
    (
        "dead-arm",
        "match arm shadowed by an earlier arm or a wildcard",
    ),
    (
        "unknown-variant",
        "match arm names a variant the message enum lacks",
    ),
    (
        "unreachable-state",
        "*State variant the protocol never references",
    ),
    (
        "coverage-gap",
        "statically-handled RCC transition rcc-verify never exercised",
    ),
    (
        "unused-allow",
        "rcc-lint: allow(...) that suppressed nothing",
    ),
    ("bad-allow", "malformed rcc-lint: comment"),
];

/// Linter configuration.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Workspace root (directory containing the `[workspace]` Cargo.toml).
    pub root: PathBuf,
    /// Optional `rcc-verify --transitions` TSV to diff coverage against.
    pub coverage: Option<PathBuf>,
}

/// Everything one lint run produced.
#[derive(Debug)]
pub struct LintOutput {
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Number of findings suppressed by used `allow` directives.
    pub suppressed: usize,
    /// Number of `.rs` files scanned (test-scoped files included).
    pub files_scanned: usize,
    /// Extracted controller tables (all protocols).
    pub controllers: Vec<ControllerTable>,
    /// RCC coverage gaps (empty when no coverage file was given).
    pub gaps: Vec<CoverageGap>,
    /// The transition-matrix artifact, as a JSON document.
    pub matrix_json: String,
}

/// Protocol controller files the table analyzer extracts from, as
/// (`protocol`, `controller`, workspace-relative path).
pub const CONTROLLER_FILES: &[(&str, &str, &str)] = &[
    ("rcc", "l1", "crates/core/src/rcc/l1.rs"),
    ("rcc", "l2", "crates/core/src/rcc/l2.rs"),
    ("mesi", "l1", "crates/core/src/mesi/l1.rs"),
    ("mesi", "l2", "crates/core/src/mesi/l2.rs"),
    ("mesi", "wb", "crates/core/src/mesi/wb.rs"),
    ("tc", "l1", "crates/core/src/tc/l1.rs"),
    ("tc", "l2", "crates/core/src/tc/l2.rs"),
];

/// Runs both analyzers over the workspace at `cfg.root`.
pub fn run(cfg: &LintConfig) -> Result<LintOutput, String> {
    let files = collect_files(&cfg.root)?;
    let files_scanned = files.len();

    // Pass 1: lex everything, collect out-of-line test-mod declarations.
    let mut lexed: Vec<(String, Source)> = Vec::new();
    for rel in &files {
        let text =
            fs::read_to_string(cfg.root.join(rel)).map_err(|e| format!("read {rel}: {e}"))?;
        lexed.push((rel.clone(), lex::lex(&text)));
    }
    let test_scoped = test_scope(&lexed);

    // Pass 2: invariant rules + per-file directive bookkeeping.
    let mut findings: Vec<Finding> = Vec::new();
    let mut suppressed = 0usize;
    // (file, rule, applies_line) of every directive that suppressed
    // something — inverted at the end for unused-allow detection.
    let mut used: Vec<(String, String, u32)> = Vec::new();
    let mut meta: Vec<Finding> = Vec::new();
    let event_enums = event_enums(&lexed)?;
    let mut controllers: Vec<ControllerTable> = Vec::new();

    for (rel, src) in &lexed {
        let is_test = test_scoped
            .iter()
            .any(|p| rel == p || rel.starts_with(&format!("{p}/")))
            || rel.ends_with("/tests.rs");
        for bad in &src.bad_directives {
            meta.push(Finding {
                rule: "bad-allow",
                file: rel.clone(),
                line: bad.line,
                message: bad.detail.clone(),
                help: "write `// rcc-lint: allow(rule-id, reason)`".to_string(),
            });
        }
        if is_test {
            continue;
        }
        let ctx = FileCtx {
            crate_name: crate_of(rel),
            rel_path: rel.clone(),
            is_bin: rel.ends_with("/main.rs") || rel.contains("/bin/"),
        };
        let mut file_findings = rules::check(src, &ctx);

        // Table analysis for controller files.
        if let Some((proto, ctrl, _)) = CONTROLLER_FILES.iter().find(|(_, _, path)| rel == path) {
            let matches = table::extract_matches(&src.toks);
            let ct = table::aggregate(proto, ctrl, rel, &src.toks);
            file_findings.extend(table::table_findings(&ct, &matches, &event_enums));
            let proto_dir = format!("crates/core/src/{proto}/");
            let proto_sources: Vec<(String, Vec<lex::Tok>)> = lexed
                .iter()
                .filter(|(p, _)| {
                    p.starts_with(&proto_dir)
                        && !test_scoped
                            .iter()
                            .any(|t| p == t || p.starts_with(&format!("{t}/")))
                })
                .map(|(p, s)| (p.clone(), s.toks.clone()))
                .collect();
            let enums = table::extract_enums(&src.toks);
            file_findings.extend(table::unreachable_states(rel, &enums, &proto_sources));
            controllers.push(ct);
        }

        suppressed += resolve(&mut file_findings, src, rel, &mut used);
        findings.append(&mut file_findings);
    }

    // Coverage diff (RCC only).
    let mut gaps = Vec::new();
    let mut coverage: Option<CoverageMap> = None;
    if let Some(cov_path) = &cfg.coverage {
        let text = fs::read_to_string(cov_path)
            .map_err(|e| format!("read coverage {}: {e}", cov_path.display()))?;
        let cov = table::parse_coverage(&text)?;
        gaps = table::coverage_gaps(&controllers, &cov);
        let mut gap_findings: Vec<Finding> = gaps
            .iter()
            .map(|g| Finding {
                rule: "coverage-gap",
                file: g.file.clone(),
                line: g.line,
                message: format!(
                    "rcc {} handles `{}::{}` but rcc-verify never exercised it",
                    g.controller, g.enum_name, g.event
                ),
                help: "add a litmus spec (or targeted probe) to rcc-verify that drives this transition"
                    .to_string(),
            })
            .collect();
        // Gap findings are suppressible at the handling arm's line.
        for (rel, src) in &lexed {
            let mut mine: Vec<Finding> = gap_findings
                .iter()
                .filter(|f| &f.file == rel)
                .cloned()
                .collect();
            if mine.is_empty() {
                continue;
            }
            gap_findings.retain(|f| &f.file != rel);
            suppressed += resolve(&mut mine, src, rel, &mut used);
            findings.append(&mut mine);
        }
        findings.append(&mut gap_findings);
        coverage = Some(cov);
    }

    // Unused allows.
    findings.append(&mut meta);
    findings.extend(unused_allows(&lexed, &used));

    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));

    let matrix_json = matrix_json(&event_enums, &controllers, coverage.as_ref(), &gaps, cfg);

    Ok(LintOutput {
        findings,
        suppressed,
        files_scanned,
        controllers,
        gaps,
        matrix_json,
    })
}

/// Drops findings matched by the file's directives; returns how many were
/// suppressed and records used directives into `used`.
fn resolve(
    findings: &mut Vec<Finding>,
    src: &Source,
    rel: &str,
    used: &mut Vec<(String, String, u32)>,
) -> usize {
    let before = findings.len();
    findings.retain(|f| {
        let hit = src
            .directives
            .iter()
            .any(|d| d.rule == f.rule && d.applies_line == f.line);
        if hit {
            used.push((rel.to_string(), f.rule.to_string(), f.line));
        }
        !hit
    });
    before - findings.len()
}

fn unused_allows(lexed: &[(String, Source)], used: &[(String, String, u32)]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (rel, src) in lexed {
        for d in &src.directives {
            let was_used = used
                .iter()
                .any(|(f, r, l)| f == rel && *r == d.rule && *l == d.applies_line);
            if !was_used {
                out.push(Finding {
                    rule: "unused-allow",
                    file: rel.clone(),
                    line: d.comment_line,
                    message: format!(
                        "`allow({}, ...)` suppressed nothing on line {}",
                        d.rule, d.applies_line
                    ),
                    help: "remove the stale suppression (or fix its rule id / placement)"
                        .to_string(),
                });
            }
        }
    }
    out
}

/// Collects workspace-relative `.rs` paths under `src/` directories,
/// skipping shim crates and build output. Sorted for determinism.
fn collect_files(root: &Path) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let mut roots: Vec<PathBuf> = vec![root.join("src")];
    let crates_dir = root.join("crates");
    if let Ok(entries) = fs::read_dir(&crates_dir) {
        for e in entries.flatten() {
            let name = e.file_name().to_string_lossy().to_string();
            if name.ends_with("-shim") {
                continue;
            }
            let src = e.path().join("src");
            if src.is_dir() {
                roots.push(src);
            }
        }
    }
    for r in roots {
        walk(&r, &mut out).map_err(|e| format!("walk {}: {e}", r.display()))?;
    }
    let mut rel: Vec<String> = out
        .iter()
        .filter_map(|p| {
            p.strip_prefix(root)
                .ok()
                .map(|s| s.to_string_lossy().replace('\\', "/"))
        })
        .collect();
    rel.sort();
    Ok(rel)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.flatten().collect();
    entries.sort_by_key(|e| e.file_name());
    for e in entries {
        let p = e.path();
        if p.is_dir() {
            walk(&p, out)?;
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Workspace-relative path prefixes that are test-scoped because some
/// file declared them as `#[cfg(test)] mod name;`.
fn test_scope(lexed: &[(String, Source)]) -> Vec<String> {
    let mut out = Vec::new();
    for (rel, src) in lexed {
        if src.test_mods.is_empty() {
            continue;
        }
        let (dir, file) = match rel.rfind('/') {
            Some(i) => (&rel[..i], &rel[i + 1..]),
            None => ("", rel.as_str()),
        };
        let stem = file.trim_end_matches(".rs");
        for m in &src.test_mods {
            if matches!(file, "lib.rs" | "mod.rs" | "main.rs") {
                out.push(format!("{dir}/{m}.rs"));
                out.push(format!("{dir}/{m}"));
            } else {
                // `foo.rs` declaring `mod m;` → `foo/m.rs` (2018 layout).
                out.push(format!("{dir}/{stem}/{m}.rs"));
                out.push(format!("{dir}/{stem}/{m}"));
            }
        }
    }
    out
}

/// Crate directory name for a workspace-relative path.
fn crate_of(rel: &str) -> String {
    if let Some(rest) = rel.strip_prefix("crates/") {
        if let Some(i) = rest.find('/') {
            return rest[..i].to_string();
        }
    }
    "rcc-repro".to_string()
}

/// Event enum definitions from `crates/core/src/msg.rs`.
fn event_enums(lexed: &[(String, Source)]) -> Result<Vec<EnumDef>, String> {
    let (_, src) = lexed
        .iter()
        .find(|(p, _)| p == "crates/core/src/msg.rs")
        .ok_or("crates/core/src/msg.rs not found — not an RCC workspace?")?;
    let enums: Vec<EnumDef> = table::extract_enums(&src.toks)
        .into_iter()
        .filter(|e| matches!(e.name.as_str(), "ReqPayload" | "RespPayload" | "AccessKind"))
        .collect();
    if enums.len() != 3 {
        return Err(format!(
            "expected ReqPayload/RespPayload/AccessKind in msg.rs, found {}",
            enums.len()
        ));
    }
    Ok(enums)
}

// ---------------------------------------------------------------------
// Matrix JSON emission (hand-rolled, deterministic, schema-pinned by
// schemas/lint.schema.json).
// ---------------------------------------------------------------------

fn jesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn matrix_json(
    enums: &[EnumDef],
    controllers: &[ControllerTable],
    coverage: Option<&CoverageMap>,
    gaps: &[CoverageGap],
    cfg: &LintConfig,
) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"version\": 1,\n  \"generated_by\": \"rcc-lint\",\n");
    // Event enums.
    s.push_str("  \"enums\": {");
    let mut sorted: Vec<&EnumDef> = enums.iter().collect();
    sorted.sort_by(|a, b| a.name.cmp(&b.name));
    for (i, e) in sorted.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\n    \"{}\": [", jesc(&e.name)));
        for (j, (v, _)) in e.variants.iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{}\"", jesc(v)));
        }
        s.push(']');
    }
    s.push_str("\n  },\n");
    // Controllers.
    s.push_str("  \"controllers\": [");
    for (i, ct) in controllers.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\n      \"protocol\": \"{}\",\n      \"controller\": \"{}\",\n      \"file\": \"{}\",\n      \"states\": [",
            jesc(&ct.protocol),
            jesc(&ct.controller),
            jesc(&ct.file)
        ));
        for (j, st) in ct.states.iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{}\"", jesc(st)));
        }
        s.push_str("],\n      \"tables\": [");
        for (j, (ename, t)) in ct.tables.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n        {{\"enum\": \"{}\", \"wildcard\": {}, \"arms\": [",
                jesc(ename),
                t.wildcard
            ));
            for (k, (variant, (status, line))) in t.variants.iter().enumerate() {
                if k > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!(
                    "{{\"variant\": \"{}\", \"status\": \"{}\", \"line\": {}}}",
                    jesc(variant),
                    status.as_str(),
                    line
                ));
            }
            s.push_str("]}");
        }
        s.push_str("\n      ]\n    }");
    }
    s.push_str("\n  ]");
    // Coverage.
    if let Some(cov) = coverage {
        let source = cfg
            .coverage
            .as_ref()
            .map(|p| p.to_string_lossy().to_string())
            .unwrap_or_default();
        s.push_str(&format!(
            ",\n  \"coverage\": {{\n    \"source\": \"{}\",\n    \"visited\": [",
            jesc(&source)
        ));
        for (i, ((p, c, st, ev), n)) in cov.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n      {{\"protocol\": \"{}\", \"controller\": \"{}\", \"state\": \"{}\", \"event\": \"{}\", \"count\": {}}}",
                jesc(p),
                jesc(c),
                jesc(st),
                jesc(ev),
                n
            ));
        }
        s.push_str("\n    ],\n    \"gaps\": [");
        for (i, g) in gaps.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n      {{\"protocol\": \"rcc\", \"controller\": \"{}\", \"event\": \"{}\", \"line\": {}}}",
                jesc(&g.controller),
                jesc(&g.event),
                g.line
            ));
        }
        s.push_str("\n    ]\n  }");
    }
    s.push_str("\n}\n");
    s
}

/// Renders one finding rustc-style.
pub fn render(f: &Finding) -> String {
    format!(
        "error[{}]: {}\n  --> {}:{}\n  help: {}\n",
        f.rule, f.message, f.file, f.line, f.help
    )
}

/// Renders a whole run: findings, then a one-line summary.
pub fn render_all(out: &LintOutput) -> String {
    let mut s = String::new();
    for f in &out.findings {
        s.push_str(&render(f));
        s.push('\n');
    }
    s.push_str(&format!(
        "rcc-lint: {} finding(s), {} suppressed, {} file(s) scanned, {} controller table(s)",
        out.findings.len(),
        out.suppressed,
        out.files_scanned,
        out.controllers.len()
    ));
    if !out.gaps.is_empty() {
        s.push_str(&format!(", {} coverage gap(s)", out.gaps.len()));
    }
    s.push('\n');
    s
}

/// Walks up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn discover_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
