//! Property coverage for the RCCT codec: encode→decode identity on
//! random traces, and fail-closed typed errors — never panics — on
//! truncated, bit-flipped, or extended files. Mirrors the discipline of
//! the checkpoint (`RCCK`) codec tests.

use proptest::prelude::*;
use rcc_common::addr::WordAddr;
use rcc_core::msg::AtomicOp;
use rcc_gpu::op::MemOp;
use rcc_trace::text::{format_text, parse_text};
use rcc_trace::{Trace, TraceError, TraceOp, TraceProgram, TraceSource};
use rcc_workloads::Sharing;

fn arb_op() -> impl Strategy<Value = MemOp> {
    prop_oneof![
        (0u64..4096).prop_map(|a| MemOp::Load(WordAddr(a))),
        (0u64..4096, 0u64..1000).prop_map(|(a, v)| MemOp::Store(WordAddr(a), v)),
        (0u64..4096, 0u64..100).prop_map(|(a, v)| MemOp::Atomic(WordAddr(a), AtomicOp::Add(v))),
        (0u64..4096, 0u64..100).prop_map(|(a, v)| MemOp::Atomic(WordAddr(a), AtomicOp::Exch(v))),
        (0u64..4096, 0u64..4, 0u64..4)
            .prop_map(|(a, e, n)| MemOp::Atomic(WordAddr(a), AtomicOp::Cas { expect: e, new: n })),
        (0u64..4096).prop_map(|a| MemOp::Atomic(WordAddr(a), AtomicOp::Read)),
        Just(MemOp::Fence),
        (1u32..64).prop_map(MemOp::Compute),
        (0u64..4096).prop_map(|a| MemOp::Lock(WordAddr(a))),
        (0u64..4096).prop_map(|a| MemOp::Unlock(WordAddr(a))),
        (0u64..4096, 1u64..8).prop_map(|(a, m)| MemOp::Barrier {
            word: WordAddr(a),
            members: m
        }),
        (1u64..4).prop_map(|e| MemOp::LocalWait { epoch: e }),
        (0u64..100_000).prop_map(MemOp::WaitUntil),
    ]
}

fn arb_trace_op() -> impl Strategy<Value = TraceOp> {
    (
        arb_op(),
        prop_oneof![Just(None), (0u64..1_000_000).prop_map(Some)],
    )
        .prop_map(|(op, issue_cycle)| TraceOp { op, issue_cycle })
}

fn arb_trace() -> impl Strategy<Value = Trace> {
    (
        prop::collection::vec(
            prop::collection::vec(
                (0u64..8, prop::collection::vec(arb_trace_op(), 0..12)),
                0..4,
            ),
            0..5,
        ),
        any::<bool>(),
        prop_oneof![
            Just(None),
            (0u64..1_000_000).prop_map(|cycles| Some(TraceSource {
                protocol: "rcc-sc".to_string(),
                cycles
            }))
        ],
        1usize..5,
    )
        .prop_map(|(cores, intra, source, wpw)| Trace {
            name: "prop".to_string(),
            category: if intra {
                Sharing::IntraWorkgroup
            } else {
                Sharing::InterWorkgroup
            },
            warps_per_workgroup: wpw,
            source,
            warps: cores
                .into_iter()
                .map(|core| {
                    core.into_iter()
                        .map(|(workgroup, ops)| TraceProgram { workgroup, ops })
                        .collect()
                })
                .collect(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn encode_decode_is_identity(t in arb_trace()) {
        let bytes = t.encode();
        let back = Trace::decode(&bytes).unwrap();
        prop_assert_eq!(&t, &back);
        // Canonical: re-encoding reproduces the same bytes.
        prop_assert_eq!(bytes, back.encode());
    }

    #[test]
    fn text_round_trip_is_identity(t in arb_trace()) {
        let text = format_text(&t);
        let back = parse_text(&text).unwrap();
        prop_assert_eq!(&t, &back);
        prop_assert_eq!(text, format_text(&back));
    }

    #[test]
    fn truncation_is_a_typed_error(t in arb_trace(), cut in 1usize..64) {
        let bytes = t.encode();
        let keep = bytes.len().saturating_sub(cut);
        // Every truncation point must fail closed (the footer is gone or
        // the payload no longer matches it) — and must never panic.
        match Trace::decode(&bytes[..keep]) {
            Err(TraceError::Corrupt(_)) => {}
            Err(other) => prop_assert!(false, "wrong error kind: {other}"),
            Ok(_) => prop_assert!(false, "decoded a truncated trace"),
        }
    }

    #[test]
    fn bit_flips_are_typed_errors(t in arb_trace(), pos: usize, bit in 0u8..8) {
        let mut bytes = t.encode();
        let idx = pos % bytes.len();
        bytes[idx] ^= 1 << bit;
        // The FNV footer catches any payload flip; a footer flip
        // mismatches the payload digest. Either way: typed error.
        match Trace::decode(&bytes) {
            Err(TraceError::Corrupt(_)) => {}
            Err(other) => prop_assert!(false, "wrong error kind: {other}"),
            Ok(_) => prop_assert!(false, "decoded a corrupted trace"),
        }
    }

    #[test]
    fn trailing_bytes_are_typed_errors(t in arb_trace(), extra in 1usize..16) {
        let mut bytes = t.encode();
        bytes.extend(std::iter::repeat_n(0xAAu8, extra));
        match Trace::decode(&bytes) {
            Err(TraceError::Corrupt(_)) => {}
            Err(other) => prop_assert!(false, "wrong error kind: {other}"),
            Ok(_) => prop_assert!(false, "decoded a trace with trailing bytes"),
        }
    }
}

#[test]
fn empty_and_tiny_inputs_fail_closed() {
    for input in [&[][..], &[0x52][..], &[0; 7][..], &[0; 8][..], &[0; 12][..]] {
        match Trace::decode(input) {
            Err(TraceError::Corrupt(_)) => {}
            other => panic!("{} bytes: expected Corrupt, got {other:?}", input.len()),
        }
    }
}

#[test]
fn wrong_magic_and_version_name_the_problem() {
    let t = parse_text("warp 0 0 wg=0\n  ld 0x0\n").unwrap();
    let reseal = |mut bytes: Vec<u8>| {
        let keep = bytes.len() - 8;
        bytes.truncate(keep);
        let mut d = rcc_common::snap::StateDigest::new();
        d.write_bytes(&bytes);
        let f = d.finish().to_le_bytes();
        bytes.extend_from_slice(&f);
        bytes
    };
    // Valid digest but wrong magic: the magic check must still fire.
    let mut bytes = t.encode();
    bytes[0] = b'X';
    let e = Trace::decode(&reseal(bytes)).unwrap_err();
    assert!(e.to_string().contains("bad magic"), "{e}");
    // Valid digest but future version.
    let mut bytes = t.encode();
    bytes[4] = 0xFF;
    let e = Trace::decode(&reseal(bytes)).unwrap_err();
    assert!(e.to_string().contains("unsupported version"), "{e}");
}
