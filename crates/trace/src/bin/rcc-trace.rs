//! `rcc-trace` — inspect and convert RCCT trace files.
//!
//! ```text
//! rcc-trace stats <trace>                 summary counts (binary or text)
//! rcc-trace inspect <trace>               manifest JSON + per-warp listing
//! rcc-trace to-text <trace.rcct> [out]    binary -> text (stdout by default)
//! rcc-trace from-text <trace.txt> <out>   text -> binary (+ manifest sidecar)
//! ```
//!
//! Input files are sniffed: files starting with the `RCCT` magic are
//! decoded as binary, everything else parses as the text dialect. All
//! failures are typed and exit non-zero with a message on stderr.

use rcc_trace::text::{format_text, parse_text};
use rcc_trace::{Trace, TraceError};
use std::process::ExitCode;

fn load_any(path: &str) -> Result<Trace, TraceError> {
    Trace::load_any(path)
}

fn stats(trace: &Trace) -> String {
    let s = trace.stats();
    let mut out = String::new();
    out.push_str(&format!("name:        {}\n", trace.name));
    out.push_str(&format!(
        "source:      {}\n",
        trace
            .source
            .as_ref()
            .map(|src| format!("{} ({} cycles)", src.protocol, src.cycles))
            .unwrap_or_else(|| "hand-authored".to_string())
    ));
    out.push_str(&format!("cores:       {}\n", s.cores));
    out.push_str(&format!("warps:       {}\n", s.warps));
    out.push_str(&format!("ops:         {}\n", s.ops));
    out.push_str(&format!("memory ops:  {}\n", s.memory_ops));
    out.push_str(&format!(
        "annotated:   {} (last issue cycle {})\n",
        s.annotated,
        s.last_issue
            .map(|c| c.to_string())
            .unwrap_or_else(|| "-".to_string())
    ));
    out
}

fn run() -> Result<(), TraceError> {
    let args: Vec<String> = std::env::args().collect();
    let usage = || {
        TraceError::Io(
            "usage: rcc-trace <stats|inspect|to-text|from-text> <trace> [out]".to_string(),
        )
    };
    let cmd = args.get(1).ok_or_else(usage)?;
    let path = args.get(2).ok_or_else(usage)?;
    match cmd.as_str() {
        "stats" => {
            print!("{}", stats(&load_any(path)?));
        }
        "inspect" => {
            let trace = load_any(path)?;
            print!("{}", trace.manifest_json());
            print!("{}", format_text(&trace));
        }
        "to-text" => {
            let trace = load_any(path)?;
            let text = format_text(&trace);
            match args.get(3) {
                Some(out) => {
                    std::fs::write(out, text).map_err(|e| TraceError::Io(format!("{out}: {e}")))?
                }
                None => print!("{text}"),
            }
        }
        "from-text" => {
            let out = args.get(3).ok_or_else(usage)?;
            let text = std::fs::read_to_string(path)
                .map_err(|e| TraceError::Io(format!("{path}: {e}")))?;
            let trace = parse_text(&text)?;
            trace.save(out)?;
            let manifest = format!("{out}.manifest.json");
            std::fs::write(&manifest, trace.manifest_json())
                .map_err(|e| TraceError::Io(format!("{manifest}: {e}")))?;
        }
        _ => return Err(usage()),
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("rcc-trace: {e}");
            ExitCode::FAILURE
        }
    }
}
