//! Human-editable text dialect of the trace format.
//!
//! Extends the op vocabulary of [`rcc_workloads::custom`] (delegating to
//! its parser, so the two dialects can never drift) with header
//! directives and per-op issue-cycle annotations:
//!
//! ```text
//! # comments and blank lines are ignored
//! trace mp               # workload name
//! category inter         # inter | intra workgroup sharing
//! wpw 1                  # warps per workgroup
//! cores 4                # machine span (pads trailing empty cores)
//! source rcc-sc 1234     # provenance: protocol + cycles (optional)
//! warp 0 0 wg=0
//!   @3 st 0x0 1          # "@N" pins the recorded issue cycle
//!   st 0x80 1            # unannotated ops carry no cycle
//! warp 1 0 wg=1
//!   ld 0x80
//!   ld 0x0
//! ```
//!
//! [`parse_text`] and [`format_text`] round-trip exactly (including
//! annotations and provenance), and the binary codec preserves the same
//! data, so text ↔ binary conversion is lossless in both directions.

use crate::{Trace, TraceError, TraceOp, TraceProgram, TraceSource};
use rcc_workloads::custom::{format_op, parse_op, ParseTraceError};
use rcc_workloads::Sharing;

fn err(line: usize, message: impl Into<String>) -> TraceError {
    TraceError::Parse(ParseTraceError {
        line,
        message: message.into(),
    })
}

fn parse_num(s: &str, line: usize, what: &str) -> Result<u64, TraceError> {
    let parsed = if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    parsed.map_err(|_| err(line, format!("bad {what}: {s:?}")))
}

/// Parses the text dialect into a [`Trace`].
///
/// # Errors
///
/// [`TraceError::Parse`] naming the offending line on any malformed
/// input (unknown directive or opcode, bad number, op outside a warp).
pub fn parse_text(text: &str) -> Result<Trace, TraceError> {
    let mut trace = Trace {
        name: "trace".to_string(),
        category: Sharing::InterWorkgroup,
        warps_per_workgroup: 1,
        source: None,
        warps: Vec::new(),
    };
    let mut current: Option<(usize, usize)> = None;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens[0] {
            "trace" => {
                let name = tokens
                    .get(1..)
                    .filter(|r| !r.is_empty())
                    .ok_or_else(|| err(line_no, "trace needs a name"))?;
                trace.name = name.join(" ");
            }
            "category" => {
                trace.category = match tokens.get(1).copied() {
                    Some("inter") => Sharing::InterWorkgroup,
                    Some("intra") => Sharing::IntraWorkgroup,
                    other => {
                        return Err(err(
                            line_no,
                            format!("unknown category {other:?} (inter|intra)"),
                        ))
                    }
                };
            }
            "wpw" => {
                let n = tokens
                    .get(1)
                    .ok_or_else(|| err(line_no, "wpw needs a count"))?;
                trace.warps_per_workgroup = parse_num(n, line_no, "warps per workgroup")? as usize;
            }
            "cores" => {
                let n = tokens
                    .get(1)
                    .ok_or_else(|| err(line_no, "cores needs a count"))?;
                let n = parse_num(n, line_no, "core count")? as usize;
                while trace.warps.len() < n {
                    trace.warps.push(Vec::new());
                }
            }
            "source" => {
                if tokens.len() < 3 {
                    return Err(err(line_no, "expected: source <protocol> <cycles>"));
                }
                trace.source = Some(TraceSource {
                    protocol: tokens[1..tokens.len() - 1].join(" "),
                    cycles: parse_num(tokens[tokens.len() - 1], line_no, "cycles")?,
                });
            }
            "warp" => {
                if tokens.len() < 3 {
                    return Err(err(line_no, "expected: warp <core> <warp> [wg=<id>]"));
                }
                let core = parse_num(tokens[1], line_no, "core")? as usize;
                let warp = parse_num(tokens[2], line_no, "warp")? as usize;
                let wg = tokens
                    .get(3)
                    .and_then(|t| t.strip_prefix("wg="))
                    .map(|s| parse_num(s, line_no, "workgroup"))
                    .transpose()?
                    .unwrap_or(core as u64);
                while trace.warps.len() <= core {
                    trace.warps.push(Vec::new());
                }
                let progs = &mut trace.warps[core];
                while progs.len() <= warp {
                    progs.push(TraceProgram::default());
                }
                progs[warp].workgroup = wg;
                current = Some((core, warp));
            }
            _ => {
                let Some((core, warp)) = current else {
                    return Err(err(line_no, "operation before any `warp` header"));
                };
                let (issue_cycle, op_tokens) = match tokens[0].strip_prefix('@') {
                    Some(cycle) => {
                        if tokens.len() < 2 {
                            return Err(err(line_no, "annotation without an operation"));
                        }
                        (
                            Some(parse_num(cycle, line_no, "issue cycle")?),
                            &tokens[1..],
                        )
                    }
                    None => (None, &tokens[..]),
                };
                let op = parse_op(op_tokens, line_no)?;
                trace.warps[core][warp]
                    .ops
                    .push(TraceOp { op, issue_cycle });
            }
        }
    }
    Ok(trace)
}

/// Renders a trace in the text dialect (round-trips through
/// [`parse_text`] exactly, annotations and provenance included).
pub fn format_text(trace: &Trace) -> String {
    let mut out = String::new();
    out.push_str(&format!("trace {}\n", trace.name));
    out.push_str(match trace.category {
        Sharing::InterWorkgroup => "category inter\n",
        Sharing::IntraWorkgroup => "category intra\n",
    });
    out.push_str(&format!("wpw {}\n", trace.warps_per_workgroup));
    out.push_str(&format!("cores {}\n", trace.warps.len()));
    if let Some(src) = &trace.source {
        out.push_str(&format!("source {} {}\n", src.protocol, src.cycles));
    }
    for (core, warps) in trace.warps.iter().enumerate() {
        for (warp, p) in warps.iter().enumerate() {
            out.push_str(&format!("warp {core} {warp} wg={}\n", p.workgroup));
            for op in &p.ops {
                out.push_str("  ");
                if let Some(c) = op.issue_cycle {
                    out.push_str(&format!("@{c} "));
                }
                out.push_str(&format_op(&op.op));
                out.push('\n');
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcc_gpu::op::MemOp;

    const MP: &str = "\
trace mp
category inter
wpw 1
cores 4
source rcc-sc 1234
warp 0 0 wg=0
  @3 st 0x0 1
  st 0x80 1
warp 1 0 wg=1
  ld 0x80
  @99 ld 0x0
";

    #[test]
    fn parses_headers_and_annotations() {
        let t = parse_text(MP).unwrap();
        assert_eq!(t.name, "mp");
        assert_eq!(t.category, Sharing::InterWorkgroup);
        assert_eq!(t.warps.len(), 4);
        assert_eq!(
            t.source,
            Some(TraceSource {
                protocol: "rcc-sc".into(),
                cycles: 1234
            })
        );
        assert_eq!(t.warps[0][0].ops[0].issue_cycle, Some(3));
        assert_eq!(t.warps[0][0].ops[1].issue_cycle, None);
        assert!(matches!(t.warps[1][0].ops[1].op, MemOp::Load(_)));
    }

    #[test]
    fn text_round_trips_exactly() {
        let t = parse_text(MP).unwrap();
        let text = format_text(&t);
        let again = parse_text(&text).unwrap();
        assert_eq!(t, again);
        assert_eq!(text, format_text(&again));
    }

    #[test]
    fn text_and_binary_agree() {
        let t = parse_text(MP).unwrap();
        let back = Trace::decode(&t.encode()).unwrap();
        assert_eq!(t, back);
        assert_eq!(format_text(&t), format_text(&back));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_text("warp 0 0\n  @x ld 0x0\n").unwrap_err();
        let TraceError::Parse(p) = e else {
            panic!("expected a parse error")
        };
        assert_eq!(p.line, 2);
        let e = parse_text("ld 0x0\n").unwrap_err();
        assert!(e.to_string().contains("before any"));
        let e = parse_text("category sideways\n").unwrap_err();
        assert!(e.to_string().contains("unknown category"));
        let e = parse_text("warp 0 0\n  @5\n").unwrap_err();
        assert!(e.to_string().contains("annotation without"));
    }

    #[test]
    fn until_ops_flow_through() {
        let t = parse_text("warp 0 0 wg=0\n  until 500\n  ld 0x0\n").unwrap();
        assert_eq!(t.warps[0][0].ops[0].op, MemOp::WaitUntil(500));
        let again = parse_text(&format_text(&t)).unwrap();
        assert_eq!(t, again);
    }
}
