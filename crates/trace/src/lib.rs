#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Trace capture + deterministic replay: pin a *specific* per-warp
//! memory-access stream and re-execute it through the full system under
//! any protocol.
//!
//! The built-in workload generators produce access streams
//! synthetically; a [`Trace`] freezes one — captured from a live run by
//! the [`TraceRecorder`], or authored by hand in the [`text`] dialect —
//! so the same stream can be replayed across protocols (differential
//! testing), committed as a tiny regression artifact, or fuzzed through
//! the chaos injector. The Tardis-style equivalence argument wants
//! exactly this: identical memory-operation histories presented to
//! different coherence protocols.
//!
//! Two replay modes:
//!
//! - **Exact** ([`Trace::to_workload`]): the program stream alone. The
//!   simulator is deterministic from its inputs, so replaying a recorded
//!   trace under the recording protocol reproduces the originating run
//!   bit-identically (metrics and state digests) — the issue-cycle
//!   annotations are provenance, not required input.
//! - **Timed** ([`Trace::to_workload_timed`]): each annotated op is
//!   preceded by a [`MemOp::WaitUntil`] gate pinning its earliest issue
//!   to the recorded cycle, so the calendar-queue scheduler's wake
//!   events are driven by the trace's own timing. Useful for replaying a
//!   stream's *shape* under a different protocol, where the original
//!   issue cycles are not naturally reproduced.
//!
//! The on-disk format (`RCCT`) reuses the [`rcc_common::snap`] codec:
//! magic, version, fail-closed decoding of every field, a trailing-byte
//! check, and an FNV digest footer over the payload so corruption is a
//! typed [`TraceError`] — never a panic, never silently accepted.

use rcc_common::snap::{SnapError, SnapReader, SnapWriter, StateDigest};
use rcc_gpu::op::MemOp;
use rcc_gpu::WarpProgram;
use rcc_workloads::custom::ParseTraceError;
use rcc_workloads::{Sharing, Workload};
use std::fmt;

pub mod text;

/// Magic prefix of the binary trace format.
pub const MAGIC: &[u8; 4] = b"RCCT";
/// Current format version.
pub const VERSION: u32 = 1;

/// A trace failure: corrupt bytes, a text-dialect parse error, or I/O.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The binary payload failed to decode: bad magic, unsupported
    /// version, digest mismatch, truncation, or trailing bytes.
    Corrupt(String),
    /// The text dialect failed to parse (carries the offending line).
    Parse(ParseTraceError),
    /// Reading or writing the trace file failed.
    Io(String),
    /// The trace does not fit the target machine (more cores than the
    /// configuration provides).
    Mismatch(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Corrupt(m) => write!(f, "corrupt trace: {m}"),
            TraceError::Parse(e) => write!(f, "{e}"),
            TraceError::Io(m) => write!(f, "trace i/o: {m}"),
            TraceError::Mismatch(m) => write!(f, "trace mismatch: {m}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<ParseTraceError> for TraceError {
    fn from(e: ParseTraceError) -> Self {
        TraceError::Parse(e)
    }
}

/// One operation of a traced warp program, with optional provenance:
/// the cycle the op first issued at in the recorded run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOp {
    /// The operation.
    pub op: MemOp,
    /// First-issue cycle in the recorded run (`None` for hand-authored
    /// ops, or ops the recorded run never reached).
    pub issue_cycle: Option<u64>,
}

/// The traced program of one warp.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceProgram {
    /// Workgroup the warp belongs to.
    pub workgroup: u64,
    /// Operations in program order.
    pub ops: Vec<TraceOp>,
}

/// Provenance of a recorded trace: which run produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSource {
    /// Label of the protocol the recording ran under.
    pub protocol: String,
    /// Total cycles of the recording run.
    pub cycles: u64,
}

/// A frozen per-warp memory-access stream, replayable on any protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Workload name, preserved verbatim so exact replay folds the same
    /// name into `state_digest()` as the originating run.
    pub name: String,
    /// Sharing category (drives warps-per-workgroup layout downstream).
    pub category: Sharing,
    /// Warps per workgroup of the original workload.
    pub warps_per_workgroup: usize,
    /// Recording provenance; `None` for hand-authored traces.
    pub source: Option<TraceSource>,
    /// Per-core, per-warp programs (`warps[core][warp]`).
    pub warps: Vec<Vec<TraceProgram>>,
}

/// Summary counts for a trace (the CLI's `stats` view).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Cores with at least one warp entry.
    pub cores: usize,
    /// Warp programs (including empty padding warps).
    pub warps: usize,
    /// Total operations.
    pub ops: usize,
    /// Operations that issue global memory accesses.
    pub memory_ops: usize,
    /// Operations carrying an issue-cycle annotation.
    pub annotated: usize,
    /// Largest annotated issue cycle, if any op is annotated.
    pub last_issue: Option<u64>,
}

impl Trace {
    /// Freezes a workload into an unannotated trace.
    pub fn from_workload(wl: &Workload) -> Trace {
        Trace {
            name: wl.name.to_string(),
            category: wl.category,
            warps_per_workgroup: wl.warps_per_workgroup,
            source: None,
            warps: wl
                .programs
                .iter()
                .map(|core| {
                    core.iter()
                        .map(|p| TraceProgram {
                            workgroup: p.workgroup.index() as u64,
                            ops: p
                                .ops
                                .iter()
                                .map(|&op| TraceOp {
                                    op,
                                    issue_cycle: None,
                                })
                                .collect(),
                        })
                        .collect()
                })
                .collect(),
        }
    }

    /// Number of cores this trace spans.
    pub fn num_cores(&self) -> usize {
        self.warps.len()
    }

    /// Summary counts.
    pub fn stats(&self) -> TraceStats {
        let mut s = TraceStats {
            cores: self.warps.iter().filter(|c| !c.is_empty()).count(),
            ..TraceStats::default()
        };
        for core in &self.warps {
            for warp in core {
                s.warps += 1;
                for op in &warp.ops {
                    s.ops += 1;
                    if op.op.is_memory() {
                        s.memory_ops += 1;
                    }
                    if let Some(c) = op.issue_cycle {
                        s.annotated += 1;
                        s.last_issue = Some(s.last_issue.map_or(c, |m: u64| m.max(c)));
                    }
                }
            }
        }
        s
    }

    fn programs(&self, timed: bool) -> Vec<Vec<WarpProgram>> {
        self.warps
            .iter()
            .map(|core| {
                core.iter()
                    .map(|p| {
                        let mut ops = Vec::with_capacity(p.ops.len());
                        for t in &p.ops {
                            if timed {
                                if let Some(cycle) = t.issue_cycle {
                                    ops.push(MemOp::WaitUntil(cycle));
                                }
                            }
                            ops.push(t.op);
                        }
                        WarpProgram::new(rcc_common::ids::WorkgroupId(p.workgroup as usize), ops)
                    })
                    .collect()
            })
            .collect()
    }

    fn check_fits(&self, num_cores: usize) -> Result<(), TraceError> {
        if self.num_cores() > num_cores {
            return Err(TraceError::Mismatch(format!(
                "trace spans {} cores but the machine has {num_cores}",
                self.num_cores()
            )));
        }
        Ok(())
    }

    /// Lowers the trace into a replayable workload for a machine with
    /// `num_cores` cores: the exact program stream, annotations dropped.
    /// Replaying under the recording protocol and configuration
    /// reproduces the originating run bit-identically.
    ///
    /// # Errors
    ///
    /// [`TraceError::Mismatch`] if the trace spans more cores than the
    /// machine has.
    pub fn to_workload(&self, num_cores: usize) -> Result<Workload, TraceError> {
        self.check_fits(num_cores)?;
        Ok(Workload {
            // Workload names are `&'static str` (they outlive every run
            // handle); a replayed trace leaks its name once, like a
            // restored checkpoint does.
            name: Box::leak(self.name.clone().into_boxed_str()),
            category: self.category,
            programs: self.programs(false),
            warps_per_workgroup: self.warps_per_workgroup,
        })
    }

    /// Lowers the trace into a *timed* workload: each annotated op is
    /// preceded by a [`MemOp::WaitUntil`] gate at its recorded issue
    /// cycle, so replay wakes warps on the trace's own schedule.
    ///
    /// # Errors
    ///
    /// [`TraceError::Mismatch`] if the trace spans more cores than the
    /// machine has.
    pub fn to_workload_timed(&self, num_cores: usize) -> Result<Workload, TraceError> {
        self.check_fits(num_cores)?;
        Ok(Workload {
            name: Box::leak(self.name.clone().into_boxed_str()),
            category: self.category,
            programs: self.programs(true),
            warps_per_workgroup: self.warps_per_workgroup,
        })
    }

    /// Serializes into the versioned binary format: magic, version,
    /// payload, and an FNV digest footer over everything before it.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        for b in MAGIC {
            w.u8(*b);
        }
        w.u32(VERSION);
        w.str(&self.name);
        w.u8(match self.category {
            Sharing::InterWorkgroup => 0,
            Sharing::IntraWorkgroup => 1,
        });
        w.u64(self.warps_per_workgroup as u64);
        match &self.source {
            Some(src) => {
                w.bool(true);
                w.str(&src.protocol);
                w.u64(src.cycles);
            }
            None => w.bool(false),
        }
        w.u32(self.warps.len() as u32);
        for core in &self.warps {
            w.u32(core.len() as u32);
            for warp in core {
                w.u64(warp.workgroup);
                w.u32(warp.ops.len() as u32);
                for op in &warp.ops {
                    op.op.snap(&mut w);
                    w.opt_u64(op.issue_cycle);
                }
            }
        }
        let mut bytes = w.into_bytes();
        let mut d = StateDigest::new();
        d.write_bytes(&bytes);
        bytes.extend_from_slice(&d.finish().to_le_bytes());
        bytes
    }

    /// Decodes a trace written by [`Trace::encode`].
    ///
    /// # Errors
    ///
    /// [`TraceError::Corrupt`] on a bad magic, an unsupported version, a
    /// digest mismatch, or any truncation/corruption of the payload.
    pub fn decode(bytes: &[u8]) -> Result<Trace, TraceError> {
        let fail = |e: SnapError| TraceError::Corrupt(e.to_string());
        if bytes.len() < 8 {
            return Err(TraceError::Corrupt(format!(
                "{} bytes is too short for the digest footer",
                bytes.len()
            )));
        }
        let (payload, footer) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(footer.try_into().expect("split at len-8"));
        let mut d = StateDigest::new();
        d.write_bytes(payload);
        let computed = d.finish();
        if stored != computed {
            return Err(TraceError::Corrupt(format!(
                "digest mismatch: footer {stored:#018x}, payload {computed:#018x}"
            )));
        }
        let mut r = SnapReader::new(payload);
        let mut magic = [0u8; 4];
        for b in &mut magic {
            *b = r.u8().map_err(fail)?;
        }
        if &magic != MAGIC {
            return Err(TraceError::Corrupt(format!(
                "bad magic {magic:02x?} (expected {MAGIC:02x?})"
            )));
        }
        let version = r.u32().map_err(fail)?;
        if version != VERSION {
            return Err(TraceError::Corrupt(format!(
                "unsupported version {version} (expected {VERSION})"
            )));
        }
        let name = r.str().map_err(fail)?;
        let category = match r.u8().map_err(fail)? {
            0 => Sharing::InterWorkgroup,
            1 => Sharing::IntraWorkgroup,
            other => {
                return Err(TraceError::Corrupt(format!("unknown sharing tag {other}")));
            }
        };
        let warps_per_workgroup = r.u64().map_err(fail)? as usize;
        let source = if r.bool().map_err(fail)? {
            Some(TraceSource {
                protocol: r.str().map_err(fail)?,
                cycles: r.u64().map_err(fail)?,
            })
        } else {
            None
        };
        let ncores = r.u32().map_err(fail)? as usize;
        let mut warps = Vec::with_capacity(ncores);
        for _ in 0..ncores {
            let nwarps = r.u32().map_err(fail)? as usize;
            let mut core = Vec::with_capacity(nwarps);
            for _ in 0..nwarps {
                let workgroup = r.u64().map_err(fail)?;
                let nops = r.u32().map_err(fail)? as usize;
                let mut ops = Vec::with_capacity(nops);
                for _ in 0..nops {
                    let op = MemOp::unsnap(&mut r).map_err(fail)?;
                    let issue_cycle = r.opt_u64().map_err(fail)?;
                    ops.push(TraceOp { op, issue_cycle });
                }
                core.push(TraceProgram { workgroup, ops });
            }
            warps.push(core);
        }
        r.done().map_err(fail)?;
        Ok(Trace {
            name,
            category,
            warps_per_workgroup,
            source,
            warps,
        })
    }

    /// Writes the binary form to `path`.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] if the file cannot be written.
    pub fn save(&self, path: &str) -> Result<(), TraceError> {
        std::fs::write(path, self.encode()).map_err(|e| TraceError::Io(format!("{path}: {e}")))
    }

    /// Reads and decodes a binary trace from `path`.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] if the file cannot be read;
    /// [`TraceError::Corrupt`] if its contents fail to decode.
    pub fn load(path: &str) -> Result<Trace, TraceError> {
        let bytes = std::fs::read(path).map_err(|e| TraceError::Io(format!("{path}: {e}")))?;
        Trace::decode(&bytes)
    }

    /// Reads a trace in either format: files starting with the `RCCT`
    /// magic decode as binary, everything else parses as the text
    /// dialect. This is the sniff every consumer (driver, harness,
    /// `rcc-trace` tool) shares.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] if the file cannot be read (or is not UTF-8
    /// text without the magic); [`TraceError::Corrupt`] /
    /// [`TraceError::Parse`] if the respective decoder rejects it.
    pub fn load_any(path: &str) -> Result<Trace, TraceError> {
        let bytes = std::fs::read(path).map_err(|e| TraceError::Io(format!("{path}: {e}")))?;
        if bytes.starts_with(MAGIC) {
            Trace::decode(&bytes)
        } else {
            let text =
                String::from_utf8(bytes).map_err(|e| TraceError::Io(format!("{path}: {e}")))?;
            crate::text::parse_text(&text)
        }
    }

    /// JSON summary of the trace (name, provenance, counts) in the
    /// `schemas/trace_manifest.schema.json` shape — the human-readable
    /// sidecar for a committed binary trace.
    pub fn manifest_json(&self) -> String {
        use std::fmt::Write as _;
        let s = self.stats();
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"format\": \"RCCT\",");
        let _ = writeln!(out, "  \"version\": {VERSION},");
        let _ = writeln!(out, "  \"name\": {:?},", self.name);
        let _ = writeln!(
            out,
            "  \"category\": \"{}\",",
            match self.category {
                Sharing::InterWorkgroup => "inter",
                Sharing::IntraWorkgroup => "intra",
            }
        );
        let _ = writeln!(
            out,
            "  \"warps_per_workgroup\": {},",
            self.warps_per_workgroup
        );
        match &self.source {
            Some(src) => {
                let _ = writeln!(out, "  \"source_protocol\": {:?},", src.protocol);
                let _ = writeln!(out, "  \"source_cycles\": {},", src.cycles);
            }
            None => {
                let _ = writeln!(out, "  \"source_protocol\": null,");
                let _ = writeln!(out, "  \"source_cycles\": null,");
            }
        }
        let _ = writeln!(out, "  \"cores\": {},", s.cores);
        let _ = writeln!(out, "  \"warps\": {},", s.warps);
        let _ = writeln!(out, "  \"ops\": {},", s.ops);
        let _ = writeln!(out, "  \"memory_ops\": {},", s.memory_ops);
        let _ = writeln!(out, "  \"annotated_ops\": {}", s.annotated);
        out.push('}');
        out.push('\n');
        out
    }
}

/// Captures the trace of a live run: one issue-cycle annotation per
/// program op, first-write-wins (lock-CAS retries and barrier re-polls
/// re-present the same `pc` and are ignored).
///
/// The recorder is fed from outside the simulated machine — the
/// simulator taps each core's per-tick [`rcc_gpu::CoreOutput`] — so
/// arming it cannot perturb simulated state (the passivity proof lives
/// in the simulator's test suite).
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    trace: Trace,
}

impl TraceRecorder {
    /// Arms a recorder for one run of `workload`.
    pub fn new(workload: &Workload) -> TraceRecorder {
        TraceRecorder {
            trace: Trace::from_workload(workload),
        }
    }

    /// Notes that core `core`'s warp `warp` first issued the program op
    /// at `pc` on `cycle`. Later notes for the same op (retries out of
    /// backoff states do not recur, but defensively) are ignored, as are
    /// out-of-range indices.
    pub fn note_issue(&mut self, core: usize, warp: usize, pc: usize, cycle: u64) {
        if let Some(slot) = self
            .trace
            .warps
            .get_mut(core)
            .and_then(|c| c.get_mut(warp))
            .and_then(|w| w.ops.get_mut(pc))
        {
            if slot.issue_cycle.is_none() {
                slot.issue_cycle = Some(cycle);
            }
        }
    }

    /// Finalizes the capture, stamping provenance (protocol label and
    /// total cycles of the recording run).
    pub fn finish(mut self, protocol: &str, cycles: u64) -> Trace {
        self.trace.source = Some(TraceSource {
            protocol: protocol.to_string(),
            cycles,
        });
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcc_common::addr::WordAddr;

    fn sample() -> Trace {
        Trace {
            name: "mp".into(),
            category: Sharing::InterWorkgroup,
            warps_per_workgroup: 1,
            source: Some(TraceSource {
                protocol: "rcc-sc".into(),
                cycles: 1234,
            }),
            warps: vec![
                vec![TraceProgram {
                    workgroup: 0,
                    ops: vec![
                        TraceOp {
                            op: MemOp::Store(WordAddr(0), 1),
                            issue_cycle: Some(3),
                        },
                        TraceOp {
                            op: MemOp::Store(WordAddr(32), 1),
                            issue_cycle: Some(60),
                        },
                    ],
                }],
                vec![TraceProgram {
                    workgroup: 1,
                    ops: vec![
                        TraceOp {
                            op: MemOp::Load(WordAddr(32)),
                            issue_cycle: None,
                        },
                        TraceOp {
                            op: MemOp::Load(WordAddr(0)),
                            issue_cycle: Some(99),
                        },
                    ],
                }],
            ],
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let t = sample();
        let bytes = t.encode();
        let back = Trace::decode(&bytes).unwrap();
        assert_eq!(t, back);
        // Re-encoding is byte-identical (canonical form).
        assert_eq!(bytes, back.encode());
    }

    #[test]
    fn workload_lowering_preserves_programs() {
        let t = sample();
        let wl = t.to_workload(4).unwrap();
        assert_eq!(wl.name, "mp");
        assert_eq!(wl.programs.len(), 2);
        assert_eq!(wl.programs[0][0].ops.len(), 2);
        // Timed lowering inserts one gate per annotated op.
        let timed = t.to_workload_timed(4).unwrap();
        assert_eq!(timed.programs[0][0].ops[0], MemOp::WaitUntil(3));
        assert_eq!(timed.programs[0][0].ops[1], MemOp::Store(WordAddr(0), 1));
        // The unannotated load gets no gate.
        assert_eq!(timed.programs[1][0].ops.len(), 3);
        assert_eq!(timed.programs[1][0].ops[0], MemOp::Load(WordAddr(32)));
    }

    #[test]
    fn oversized_trace_is_a_mismatch() {
        let t = sample();
        assert!(matches!(t.to_workload(1), Err(TraceError::Mismatch(_))));
    }

    #[test]
    fn recorder_first_write_wins() {
        let wl = sample().to_workload(2).unwrap();
        let mut rec = TraceRecorder::new(&wl);
        rec.note_issue(0, 0, 0, 10);
        rec.note_issue(0, 0, 0, 20); // ignored
        rec.note_issue(9, 9, 9, 30); // out of range: ignored
        let t = rec.finish("mesi", 500);
        assert_eq!(t.warps[0][0].ops[0].issue_cycle, Some(10));
        assert_eq!(t.warps[0][0].ops[1].issue_cycle, None);
        assert_eq!(
            t.source,
            Some(TraceSource {
                protocol: "mesi".into(),
                cycles: 500
            })
        );
    }

    #[test]
    fn stats_count_what_they_claim() {
        let s = sample().stats();
        assert_eq!(s.cores, 2);
        assert_eq!(s.warps, 2);
        assert_eq!(s.ops, 4);
        assert_eq!(s.memory_ops, 4);
        assert_eq!(s.annotated, 3);
        assert_eq!(s.last_issue, Some(99));
    }

    #[test]
    fn manifest_names_the_format() {
        let json = sample().manifest_json();
        assert!(json.contains("\"format\": \"RCCT\""));
        assert!(json.contains("\"name\": \"mp\""));
        assert!(json.contains("\"annotated_ops\": 3"));
    }
}
