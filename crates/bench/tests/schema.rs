//! The report contracts, end to end: real runs produce artifacts the
//! in-repo schemas accept, and the schemas still have teeth.
//!
//! The unit tests in `report.rs` cover the builders against hand-built
//! sample reports; these tests exercise the actual producers — an
//! observed litmus run and an observed benchmark run — so schema drift
//! in either the producers or `schemas/*.json` fails here first.

use rcc_bench::report::{check_schema, schemas, ProtocolRow, SchedSummary, SimReport};
use rcc_common::ids::WorkgroupId;
use rcc_common::GpuConfig;
use rcc_core::ProtocolKind;
use rcc_gpu::{MemOp, WarpProgram};
use rcc_obs::ObsConfig;
use rcc_obs::SimProfile;
use rcc_sim::error::SimError;
use rcc_sim::litmus::run_litmus_observed;
use rcc_sim::runner::{simulate, try_simulate, SimOptions};
use rcc_workloads::{litmus, Benchmark, Scale, Sharing, Workload};

/// One observed litmus run: its exported Chrome trace and sampled
/// series validate against the schemas shipped in `schemas/`.
#[test]
fn observed_litmus_artifacts_match_their_schemas() {
    let cfg = GpuConfig::small();
    let suite = litmus::all(cfg.num_cores, 3);
    let lit = suite.iter().find(|l| l.name == "mp").expect("mp in suite");
    let (out, report) = run_litmus_observed(
        ProtocolKind::RccSc,
        &cfg,
        lit,
        None,
        Some(&ObsConfig::full(32)),
    )
    .expect("litmus run succeeds");
    assert!(!out.forbidden);
    let report = report.expect("observer was armed");
    check_schema(
        "litmus trace",
        schemas::TRACE,
        &report.trace.to_chrome_json(),
    )
    .expect("trace validates");
    check_schema(
        "litmus series",
        schemas::TIMESERIES,
        &report.series.to_json(),
    )
    .expect("series validates");
}

/// One observed benchmark run, exactly as `--trace-out`/`--series-out`
/// would export it.
#[test]
fn observed_benchmark_artifacts_match_their_schemas() {
    let cfg = GpuConfig::small();
    let wl = Benchmark::Dlb.generate(&cfg, &Scale::quick(), 5);
    let m = simulate(ProtocolKind::RccSc, &cfg, &wl, &SimOptions::observed(64));
    let obs = m.obs.as_ref().expect("observer was armed");
    check_schema("bench trace", schemas::TRACE, &obs.trace.to_chrome_json())
        .expect("trace validates");
    check_schema("bench series", schemas::TIMESERIES, &obs.series.to_json())
        .expect("series validates");
}

/// The schemas reject structurally broken documents — they are real
/// contracts, not rubber stamps.
#[test]
fn schemas_reject_malformed_documents() {
    // A trace event with an unknown phase type.
    let bad_trace = r#"{"traceEvents": [{"ph": "X", "pid": 1}]}"#;
    assert!(check_schema("trace", schemas::TRACE, bad_trace).is_err());
    // A trace event missing the required pid.
    let no_pid = r#"{"traceEvents": [{"ph": "i"}]}"#;
    assert!(check_schema("trace", schemas::TRACE, no_pid).is_err());
    // A series dump whose column kind is not delta/gauge.
    let bad_series =
        r#"{"schema": [{"name": "x", "kind": "rate"}], "rows": 0, "cycles": [], "columns": []}"#;
    assert!(check_schema("series", schemas::TIMESERIES, bad_series).is_err());
    // A sim report with the wrong type for a required field.
    let report = SimReport {
        baseline_wall_s: 2.0,
        optimized_wall_s: 1.0,
        speedup: 2.0,
        jobs: 4,
        runs: 1,
        deterministic: true,
        protocols: vec![ProtocolRow {
            protocol: "RCC-SC".to_string(),
            sim_cycles: 100,
            sim_cycles_per_sec: 50.0,
            skipped_cycles: 10,
            skip_ratio: 0.1,
        }],
        scheduler: SchedSummary {
            events_posted: 1000,
            events_cancelled: 50,
            cancel_ratio: 0.05,
            queue_depth_p50_mean: 12.0,
            queue_depth_max: 40,
            wake_slack_mean: 0.5,
        },
        self_profile: SimProfile::new(),
    };
    let good = report.to_json();
    assert!(check_schema("sim", schemas::BENCH_SIM, &good).is_ok());
    let drifted = good.replace("\"deterministic\": true", "\"deterministic\": \"yes\"");
    assert!(check_schema("sim", schemas::BENCH_SIM, &drifted).is_err());
}

/// A real watchdog-produced hang-dump and a real checkpoint manifest
/// validate against their schemas, exactly as the driver writes them.
#[test]
fn crash_artifacts_match_their_schemas() {
    let mut cfg = GpuConfig::small();
    cfg.watchdog_cycles = 10_000;
    // One warp waits for a barrier epoch nobody ever reaches.
    let wl = Workload {
        name: "schema-deadlock",
        category: Sharing::IntraWorkgroup,
        programs: vec![vec![WarpProgram::new(
            WorkgroupId(0),
            vec![MemOp::LocalWait { epoch: 1 }],
        )]],
        warps_per_workgroup: 2,
    };
    let ck_path = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"))
        .join("schema-hang.ck")
        .to_str()
        .expect("utf-8 tmp path")
        .to_string();
    let mut opts = SimOptions::fast();
    opts.checkpoint = Some(ck_path.clone());
    let err = try_simulate(ProtocolKind::RccSc, &cfg, &wl, &opts).expect_err("deadlock");
    let SimError::Deadlock(dump) = err else {
        panic!("expected Deadlock, got: {err}");
    };
    check_schema("hang-dump", schemas::HANGDUMP, &dump.to_json()).expect("hang-dump validates");
    let manifest = std::fs::read_to_string(format!("{ck_path}.hang.manifest.json"))
        .expect("auto-checkpoint manifest written");
    check_schema("manifest", schemas::CHECKPOINT_MANIFEST, &manifest).expect("manifest validates");
}

/// The crash-artifact schemas reject malformed documents too.
#[test]
fn crash_schemas_reject_malformed_documents() {
    // Hang-dump with no components (a hung machine always has some) and
    // missing the suspects list.
    let bad_dump = r#"{"protocol": "RCC-SC", "workload": "x", "cycle": 5, "last_progress": 1,
        "watchdog_cycles": 4, "mem_pending": 0, "rollover": "Idle",
        "state_digest": "00", "checkpoint": null, "components": [], "blocked_warps": []}"#;
    assert!(check_schema("hang-dump", schemas::HANGDUMP, bad_dump).is_err());
    // Manifest whose state digest is a bare integer instead of hex text.
    let bad_manifest = r#"{"version": 1, "protocol": "RCC-SC", "workload": "x", "cycle": 5,
        "state_digest": 7, "fast_forward": true, "sanitize": false, "max_cycles": 10,
        "chaos_profile": null, "chaos_seed": null, "cores": 4, "l2_partitions": 2}"#;
    assert!(check_schema("manifest", schemas::CHECKPOINT_MANIFEST, bad_manifest).is_err());
}

/// A real recorded trace's manifest sidecar — written by the runner
/// next to every `.rcct` — and the committed regression-trace manifests
/// all validate against `schemas/trace_manifest.schema.json`.
#[test]
fn trace_manifests_match_their_schema() {
    let cfg = GpuConfig::small();
    let wl = Benchmark::Dlb.generate(&cfg, &Scale::quick(), 5);
    let path = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"))
        .join("schema-trace.rcct")
        .to_str()
        .expect("utf-8 tmp path")
        .to_string();
    let mut opts = SimOptions::fast();
    opts.record_trace = Some(path.clone());
    simulate(ProtocolKind::RccSc, &cfg, &wl, &opts);
    let manifest =
        std::fs::read_to_string(format!("{path}.manifest.json")).expect("sidecar written");
    check_schema("trace manifest", schemas::TRACE_MANIFEST, &manifest)
        .expect("recorded manifest validates");
    for name in ["mp", "mutex", "interval", "barrier"] {
        let committed = format!(
            "{}/../../tests/traces/{name}.rcct.manifest.json",
            env!("CARGO_MANIFEST_DIR")
        );
        let text = std::fs::read_to_string(&committed).expect("committed manifest present");
        check_schema("committed trace manifest", schemas::TRACE_MANIFEST, &text)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        // The sidecar must describe the trace next to it.
        let trace = rcc_trace::Trace::load(&committed.replace(".manifest.json", ""))
            .expect("committed binary loads");
        assert_eq!(text, trace.manifest_json(), "{name}: manifest drifted");
    }
}

/// The trace-manifest schema rejects malformed documents.
#[test]
fn trace_manifest_schema_rejects_malformed_documents() {
    // Missing the required op counts.
    let missing = r#"{"format": "RCCT", "version": 1, "name": "x", "category": "inter",
        "warps_per_workgroup": 1, "source_protocol": null, "source_cycles": null,
        "cores": 1, "warps": 1}"#;
    assert!(check_schema("trace manifest", schemas::TRACE_MANIFEST, missing).is_err());
    // Version with the wrong type.
    let bad_version = r#"{"format": "RCCT", "version": "one", "name": "x", "category": "inter",
        "warps_per_workgroup": 1, "source_protocol": null, "source_cycles": null,
        "cores": 1, "warps": 1, "ops": 0, "memory_ops": 0, "annotated_ops": 0}"#;
    assert!(check_schema("trace manifest", schemas::TRACE_MANIFEST, bad_version).is_err());
}

/// The transition matrix `rcc-lint --matrix-out` writes, produced from
/// the real workspace, validates against `schemas/lint.schema.json`.
#[test]
fn lint_matrix_matches_its_schema() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let out = rcc_lint::run(&rcc_lint::LintConfig {
        root,
        coverage: None,
    })
    .expect("lint runs");
    assert_eq!(out.controllers.len(), 7, "one table per controller file");
    check_schema("lint matrix", schemas::LINT, &out.matrix_json).expect("matrix validates");
}

/// The lint schema still has teeth: wrong version, missing controllers,
/// and a bogus arm status are each rejected.
#[test]
fn lint_schema_rejects_malformed_matrices() {
    let wrong_version = r#"{"version": 2, "generated_by": "rcc-lint", "enums": {}, "controllers": [{"protocol": "rcc", "controller": "l1", "file": "f.rs", "states": [], "tables": []}]}"#;
    assert!(check_schema("wrong version", schemas::LINT, wrong_version).is_err());

    let no_controllers = r#"{"version": 1, "generated_by": "rcc-lint", "enums": {}}"#;
    assert!(check_schema("no controllers", schemas::LINT, no_controllers).is_err());

    let bad_status = r#"{"version": 1, "generated_by": "rcc-lint", "enums": {}, "controllers": [{"protocol": "rcc", "controller": "l1", "file": "f.rs", "states": [], "tables": [{"enum": "ReqPayload", "wildcard": false, "arms": [{"variant": "Gets", "status": "shrugged", "line": 3}]}]}]}"#;
    assert!(check_schema("bad status", schemas::LINT, bad_status).is_err());
}

/// The `rcc-serve` job schemas accept well-formed specs/artifacts and
/// reject the shapes the service must fail closed on.
#[test]
fn job_schemas_accept_and_reject() {
    // A minimal valid submission and a fully-optioned one.
    let minimal = r#"{"version": 1, "protocol": "rcc",
        "workload": {"kind": "litmus", "name": "mp", "seed": 3}}"#;
    check_schema("job minimal", schemas::JOB, minimal).expect("minimal job validates");
    let full = r#"{"version": 1, "protocol": "mesi-wb",
        "workload": {"kind": "bench", "name": "dlb", "scale": "quick", "cores": 4, "seed": 9},
        "options": {"max_cycles": 200000, "fast_forward": true, "sanitize": false,
                    "record_trace": false, "sample_every": 64, "priority": 2,
                    "chaos": {"profile": "light", "seed": 11}}}"#;
    check_schema("job full", schemas::JOB, full).expect("full job validates");

    // Unknown protocol, unknown workload kind, out-of-range priority,
    // chaos missing its seed, and a stray field are each rejected.
    for (label, bad) in [
        (
            "protocol",
            r#"{"version": 1, "protocol": "moesi", "workload": {"kind": "litmus"}}"#,
        ),
        (
            "kind",
            r#"{"version": 1, "protocol": "rcc", "workload": {"kind": "fuzz"}}"#,
        ),
        (
            "priority",
            r#"{"version": 1, "protocol": "rcc", "workload": {"kind": "litmus"},
                "options": {"priority": 7}}"#,
        ),
        (
            "chaos",
            r#"{"version": 1, "protocol": "rcc", "workload": {"kind": "litmus"},
                "options": {"chaos": {"profile": "light"}}}"#,
        ),
        (
            "stray",
            r#"{"version": 1, "protocol": "rcc", "workload": {"kind": "litmus"},
                "turbo": true}"#,
        ),
    ] {
        assert!(
            check_schema(label, schemas::JOB, bad).is_err(),
            "{label} should be rejected"
        );
    }

    // A persisted result artifact for a finished job and a failed one.
    let done = r#"{"version": 1, "job_id": 4, "state": "done",
        "spec": {"protocol": "rcc"},
        "result": {"protocol": "RCC-SC", "workload": "mp", "cycles": 913,
                   "issued": 40, "mem_ops": 12, "sc_violations": 0,
                   "metrics_digest": "00c0ffee00c0ffee"},
        "error": null,
        "service": {"priority": 1, "slices": 3, "preemptions": 2, "attempts": 1}}"#;
    check_schema("job result done", schemas::JOB_RESULT, done).expect("done artifact validates");
    let failed = r#"{"version": 1, "job_id": 7, "state": "failed",
        "spec": {"protocol": "tcw"},
        "result": null,
        "error": {"kind": "deadlock", "detail": "watchdog fired",
                  "hang_dump": {"any": "shape"}},
        "service": {"priority": 0, "slices": 1, "preemptions": 0, "attempts": 2}}"#;
    check_schema("job result failed", schemas::JOB_RESULT, failed)
        .expect("failed artifact validates");
    // Result object missing its digest is rejected.
    let no_digest = r#"{"version": 1, "job_id": 4, "state": "done",
        "spec": {},
        "result": {"protocol": "RCC-SC", "workload": "mp", "cycles": 913,
                   "issued": 40, "mem_ops": 12, "sc_violations": 0},
        "error": null,
        "service": {"priority": 1, "slices": 1, "preemptions": 0, "attempts": 1}}"#;
    assert!(check_schema("no digest", schemas::JOB_RESULT, no_digest).is_err());

    // The manifest indexes artifacts; a bogus state is rejected.
    let manifest = r#"{"version": 1, "jobs": 3, "done": 1, "failed": 1, "quarantined": 1,
        "entries": [{"job_id": 0, "state": "done", "path": "job-0.json"},
                    {"job_id": 1, "state": "failed", "path": "job-1.json"},
                    {"job_id": 2, "state": "quarantined", "path": "job-2.json"}]}"#;
    check_schema("job manifest", schemas::JOB_MANIFEST, manifest).expect("manifest validates");
    let bad_state = r#"{"version": 1, "jobs": 1, "done": 0, "failed": 0, "quarantined": 0,
        "entries": [{"job_id": 0, "state": "queued", "path": "job-0.json"}]}"#;
    assert!(check_schema("bad state", schemas::JOB_MANIFEST, bad_state).is_err());
}
