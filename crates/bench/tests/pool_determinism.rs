//! Pool determinism guard: an experiment grid run through the job pool
//! with several workers must produce byte-identical output to the same
//! grid run sequentially — figure tables and CSV exports may not depend
//! on `--jobs`.

use rcc_bench::pool;
use rcc_common::GpuConfig;
use rcc_core::ProtocolKind;
use rcc_sim::runner::{simulate, SimOptions};
use rcc_workloads::{Benchmark, Scale};

fn csv_rows(jobs: usize) -> Vec<String> {
    let cfg = GpuConfig::small();
    let opts = SimOptions::fast();
    let grid: Vec<_> = [
        ProtocolKind::Mesi,
        ProtocolKind::TcWeak,
        ProtocolKind::RccSc,
    ]
    .into_iter()
    .flat_map(|k| [Benchmark::Bh, Benchmark::Dlb, Benchmark::Hsp].map(|b| (k, b)))
    .collect();
    pool::run_indexed(grid, jobs, |(kind, bench)| {
        let wl = bench.generate(&cfg, &Scale::quick(), 5);
        let m = simulate(kind, &cfg, &wl, &opts);
        format!(
            "{},{},{},{},{},{:.0}",
            m.kind.label(),
            m.workload,
            m.cycles,
            m.core.mem_ops,
            m.traffic.total_flits(),
            m.energy.total_pj(),
        )
    })
}

#[test]
fn csv_identical_sequential_vs_four_jobs() {
    let seq = csv_rows(1);
    let par = csv_rows(4);
    assert_eq!(seq, par, "--jobs 4 changed the CSV output");
}
