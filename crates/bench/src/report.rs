//! Builders for the JSON artifacts the bench binaries export.
//!
//! Serialization is hand-rolled (the workspace carries no registry
//! dependencies) and the shapes are pinned by the schemas committed under
//! `schemas/`: the artifact tests validate every builder's output against
//! its schema, and the binaries re-validate at export time via
//! [`check_schema`], so a drifting field fails in CI rather than in a
//! downstream notebook.

use rcc_obs::{schema, SimPhase, SimProfile};
use std::fmt::Write as _;

/// The JSON schemas the exported artifacts are pinned by, embedded at
/// compile time from `schemas/` at the repository root.
pub mod schemas {
    /// Shape of `BENCH_sim.json` (perfsmoke).
    pub const BENCH_SIM: &str = include_str!(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../schemas/bench_sim.schema.json"
    ));
    /// Shape of `BENCH_chaos.json` (chaos sweep).
    pub const BENCH_CHAOS: &str = include_str!(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../schemas/bench_chaos.schema.json"
    ));
    /// Shape of a Chrome-trace export (`--trace-out`, obs smoke).
    pub const TRACE: &str = include_str!(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../schemas/trace.schema.json"
    ));
    /// Shape of a time-series JSON dump (`--series-out`, obs smoke).
    pub const TIMESERIES: &str = include_str!(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../schemas/timeseries.schema.json"
    ));
    /// Shape of a forensic hang-dump (`HangDump::to_json`, written by the
    /// driver when the watchdog fires).
    pub const HANGDUMP: &str = include_str!(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../schemas/hangdump.schema.json"
    ));
    /// Shape of the checkpoint manifest sidecar (`<path>.manifest.json`).
    pub const CHECKPOINT_MANIFEST: &str = include_str!(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../schemas/checkpoint_manifest.schema.json"
    ));
    /// Shape of the `rcc-lint` transition matrix (`--matrix-out`).
    pub const LINT: &str = include_str!(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../schemas/lint.schema.json"
    ));
    /// Shape of a memory-access trace manifest sidecar
    /// (`Trace::manifest_json`, written next to every recorded `.rcct`).
    pub const TRACE_MANIFEST: &str = include_str!(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../schemas/trace_manifest.schema.json"
    ));
    /// Shape of an `rcc-serve` job submission (the `spec` payload of a
    /// `submit` request).
    pub const JOB: &str = include_str!(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../schemas/job.schema.json"
    ));
    /// Shape of a per-job result artifact persisted by the `rcc-serve`
    /// job store (`job-<id>.json`).
    pub const JOB_RESULT: &str = include_str!(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../schemas/job_result.schema.json"
    ));
    /// Shape of the `rcc-serve` results-directory manifest
    /// (`manifest.json`, indexing every persisted job artifact).
    pub const JOB_MANIFEST: &str = include_str!(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../schemas/job_manifest.schema.json"
    ));
}

/// Validates `doc` against `schema_text`; `Err` carries every violation,
/// prefixed with `name` so multi-artifact binaries report legibly.
pub fn check_schema(name: &str, schema_text: &str, doc: &str) -> Result<(), String> {
    match schema::validate_text(schema_text, doc) {
        Ok(errs) if errs.is_empty() => Ok(()),
        Ok(errs) => Err(format!(
            "{name}: schema violations:\n  {}",
            errs.join("\n  ")
        )),
        Err(e) => Err(format!("{name}: {e}")),
    }
}

/// One per-protocol row of `BENCH_sim.json`.
#[derive(Debug, Clone)]
pub struct ProtocolRow {
    /// Protocol label (`ProtocolKind::label`).
    pub protocol: String,
    /// Total simulated cycles across the protocol's runs.
    pub sim_cycles: u64,
    /// Simulated cycles per wall-clock second.
    pub sim_cycles_per_sec: f64,
    /// Cycles the engine fast-forwarded over.
    pub skipped_cycles: u64,
    /// `skipped_cycles / sim_cycles`.
    pub skip_ratio: f64,
}

/// Calendar-queue telemetry merged over every run of the optimized
/// pass (the `scheduler` object of `BENCH_sim.json`).
#[derive(Debug, Clone)]
pub struct SchedSummary {
    /// Wake events posted into the calendar queue, summed over runs.
    pub events_posted: u64,
    /// Posted events superseded by a re-arm before firing, summed.
    pub events_cancelled: u64,
    /// `events_cancelled / events_posted` (0 when nothing was posted).
    pub cancel_ratio: f64,
    /// Mean over runs of each run's median queue depth at post time.
    pub queue_depth_p50_mean: f64,
    /// Peak queue depth over every run.
    pub queue_depth_max: u64,
    /// Mean over runs of each run's mean |exact wake − min-scan hint|
    /// in cycles (0 when every component's hint is exact).
    pub wake_slack_mean: f64,
}

/// `BENCH_sim.json`: the perf-smoke report (engine wall-clock, per-
/// protocol rates, and the simulator's self-profile).
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Wall-clock of the baseline pass (no FF, sequential).
    pub baseline_wall_s: f64,
    /// Wall-clock of the optimized pass (FF + job pool).
    pub optimized_wall_s: f64,
    /// `baseline_wall_s / optimized_wall_s`.
    pub speedup: f64,
    /// Worker threads used by the optimized pass.
    pub jobs: usize,
    /// Runs per pass.
    pub runs: usize,
    /// Whether every run's simulated results matched across passes.
    pub deterministic: bool,
    /// Per-protocol aggregates from the optimized pass.
    pub protocols: Vec<ProtocolRow>,
    /// Calendar-queue telemetry merged over the optimized pass.
    pub scheduler: SchedSummary,
    /// Self-profile merged over every run of the optimized pass.
    pub self_profile: SimProfile,
}

impl SimReport {
    /// Serializes in the `schemas/bench_sim.schema.json` shape.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"baseline_wall_s\": {:.3},", self.baseline_wall_s);
        let _ = writeln!(out, "  \"optimized_wall_s\": {:.3},", self.optimized_wall_s);
        let _ = writeln!(out, "  \"speedup\": {:.3},", self.speedup);
        let _ = writeln!(out, "  \"jobs\": {},", self.jobs);
        let _ = writeln!(out, "  \"runs\": {},", self.runs);
        let _ = writeln!(out, "  \"deterministic\": {},", self.deterministic);
        out.push_str("  \"protocols\": [\n");
        for (i, p) in self.protocols.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"protocol\": \"{}\", \"sim_cycles\": {}, \
                 \"sim_cycles_per_sec\": {:.0}, \"skipped_cycles\": {}, \
                 \"skip_ratio\": {:.4}}}",
                p.protocol, p.sim_cycles, p.sim_cycles_per_sec, p.skipped_cycles, p.skip_ratio
            );
            out.push_str(if i + 1 < self.protocols.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");
        let s = &self.scheduler;
        let _ = writeln!(
            out,
            "  \"scheduler\": {{\"events_posted\": {}, \"events_cancelled\": {}, \
             \"cancel_ratio\": {:.4}, \"queue_depth_p50_mean\": {:.2}, \
             \"queue_depth_max\": {}, \"wake_slack_mean\": {:.3}}},",
            s.events_posted,
            s.events_cancelled,
            s.cancel_ratio,
            s.queue_depth_p50_mean,
            s.queue_depth_max,
            s.wake_slack_mean
        );
        out.push_str("  \"self_profile\": ");
        push_profile(&mut out, &self.self_profile, "  ");
        out.push_str("\n}\n");
        out
    }
}

/// Serializes a [`SimProfile`] as the `self_profile` object.
fn push_profile(out: &mut String, p: &SimProfile, indent: &str) {
    let _ = write!(
        out,
        "{{\n{indent}  \"steps\": {},\n{indent}  \"total_nanos\": {},\n{indent}  \"phases\": [\n",
        p.steps,
        p.total_nanos()
    );
    for (i, ph) in SimPhase::ALL.into_iter().enumerate() {
        let _ = write!(
            out,
            "{indent}    {{\"phase\": \"{}\", \"nanos\": {}, \"share\": {:.6}}}",
            ph.label(),
            p.nanos(ph),
            p.share(ph)
        );
        out.push_str(if i + 1 < SimPhase::ALL.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    let _ = write!(out, "{indent}  ]\n{indent}}}");
}

/// One violating (profile, seed, protocol, litmus) tuple.
#[derive(Debug, Clone)]
pub struct ViolationRow {
    /// Chaos profile name.
    pub profile: String,
    /// Chaos seed.
    pub seed: u64,
    /// Protocol label.
    pub protocol: String,
    /// Litmus test name.
    pub litmus: String,
    /// Probed values of the violating run.
    pub values: Vec<u64>,
    /// The sanitizer's verdict on that run.
    pub sanitizer_sc: bool,
}

/// Canary-pass summary of `BENCH_chaos.json`.
#[derive(Debug, Clone)]
pub struct CanarySummary {
    /// Seeds swept.
    pub seeds: u64,
    /// Seeds on which the sanitizer flagged the planted bug.
    pub caught: u64,
    /// Fewest litmus runs any seed needed before being flagged.
    pub earliest_caught_after_runs: Option<u64>,
    /// Forbidden outcomes the sanitizer failed to flag (must be 0).
    pub forbidden_unflagged: u64,
}

/// One benchmark-smoke row of `BENCH_chaos.json`.
#[derive(Debug, Clone)]
pub struct BenchRow {
    /// Chaos profile name.
    pub profile: String,
    /// Protocol label.
    pub protocol: String,
    /// Benchmark name.
    pub benchmark: String,
    /// Simulated cycles.
    pub cycles: u64,
    /// Perturbations fired.
    pub chaos_events: u64,
    /// Sanitizer verdict.
    pub sanitizer_sc: bool,
}

/// One job that exhausted its retry budget during a sweep (see
/// `pool::run_guarded`): reported in the JSON instead of aborting the
/// harness, so a single bad seed is a row, not a lost sweep.
#[derive(Debug, Clone)]
pub struct FailedJobRow {
    /// Sweep pass the job belonged to (`"litmus"`, `"canary"`, `"bench"`).
    pub pass: String,
    /// Submission index of the job within its pass.
    pub index: u64,
    /// Attempts made before giving up.
    pub attempts: u64,
    /// Last failure reason (panic message or timeout).
    pub reason: String,
}

/// `BENCH_chaos.json`: the chaos-sweep report.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Chaos seeds per (profile, protocol) cell.
    pub seeds: u64,
    /// Sound profiles swept.
    pub profiles: Vec<String>,
    /// Protocols swept.
    pub protocols: Vec<String>,
    /// Total litmus runs in the sweep.
    pub litmus_runs: u64,
    /// Every violation found (the JSON details at most the first 20).
    pub violations: Vec<ViolationRow>,
    /// Canary-pass summary.
    pub canary: CanarySummary,
    /// Benchmark-smoke rows.
    pub benchmarks: Vec<BenchRow>,
    /// Jobs that exhausted their retry budget (empty on a clean sweep).
    pub failed_jobs: Vec<FailedJobRow>,
}

/// Escapes a string for embedding in a JSON literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl ChaosReport {
    /// Serializes in the `schemas/bench_chaos.schema.json` shape.
    pub fn to_json(&self) -> String {
        let quote = |v: &[String]| {
            v.iter()
                .map(|s| format!("\"{s}\""))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"seeds\": {},", self.seeds);
        let _ = writeln!(out, "  \"profiles\": [{}],", quote(&self.profiles));
        let _ = writeln!(out, "  \"protocols\": [{}],", quote(&self.protocols));
        let _ = writeln!(out, "  \"litmus_runs\": {},", self.litmus_runs);
        let _ = writeln!(out, "  \"violations\": {},", self.violations.len());
        out.push_str("  \"violation_detail\": [\n");
        let detail: Vec<&ViolationRow> = self.violations.iter().take(20).collect();
        for (i, v) in detail.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"profile\": \"{}\", \"seed\": {}, \"protocol\": \"{}\", \
                 \"litmus\": \"{}\", \"values\": {:?}, \"sanitizer_sc\": {}}}",
                v.profile, v.seed, v.protocol, v.litmus, v.values, v.sanitizer_sc
            );
            out.push_str(if i + 1 < detail.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n");
        let _ = writeln!(
            out,
            "  \"canary\": {{\"seeds\": {}, \"caught\": {}, \
             \"earliest_caught_after_runs\": {}, \"forbidden_unflagged\": {}}},",
            self.canary.seeds,
            self.canary.caught,
            self.canary
                .earliest_caught_after_runs
                .map_or("null".to_string(), |r| r.to_string()),
            self.canary.forbidden_unflagged,
        );
        out.push_str("  \"benchmarks\": [\n");
        for (i, b) in self.benchmarks.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"profile\": \"{}\", \"protocol\": \"{}\", \"benchmark\": \"{}\", \
                 \"cycles\": {}, \"chaos_events\": {}, \"sanitizer_sc\": {}}}",
                b.profile, b.protocol, b.benchmark, b.cycles, b.chaos_events, b.sanitizer_sc
            );
            out.push_str(if i + 1 < self.benchmarks.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");
        out.push_str("  \"failed_jobs\": [\n");
        for (i, j) in self.failed_jobs.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"pass\": \"{}\", \"index\": {}, \"attempts\": {}, \"reason\": \"{}\"}}",
                esc(&j.pass),
                j.index,
                j.attempts,
                esc(&j.reason)
            );
            out.push_str(if i + 1 < self.failed_jobs.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    pub(crate) fn sample_sim_report() -> SimReport {
        let mut p = SimProfile::new();
        p.steps = 100;
        p.charge(SimPhase::Core, Duration::from_nanos(600));
        p.charge(SimPhase::Dram, Duration::from_nanos(400));
        SimReport {
            baseline_wall_s: 2.5,
            optimized_wall_s: 1.0,
            speedup: 2.5,
            jobs: 4,
            runs: 60,
            deterministic: true,
            protocols: vec![ProtocolRow {
                protocol: "rcc".to_string(),
                sim_cycles: 123456,
                sim_cycles_per_sec: 1.5e6,
                skipped_cycles: 1000,
                skip_ratio: 0.0081,
            }],
            scheduler: SchedSummary {
                events_posted: 54321,
                events_cancelled: 321,
                cancel_ratio: 0.0059,
                queue_depth_p50_mean: 38.5,
                queue_depth_max: 71,
                wake_slack_mean: 1.25,
            },
            self_profile: p,
        }
    }

    #[test]
    fn sim_report_matches_its_schema() {
        let json = sample_sim_report().to_json();
        check_schema("BENCH_sim.json", schemas::BENCH_SIM, &json).unwrap();
    }

    #[test]
    fn chaos_report_matches_its_schema() {
        let report = ChaosReport {
            seeds: 8,
            profiles: vec!["light".into(), "heavy".into()],
            protocols: vec!["rcc".into()],
            litmus_runs: 144,
            violations: vec![ViolationRow {
                profile: "heavy".into(),
                seed: 3,
                protocol: "rcc".into(),
                litmus: "mp".into(),
                values: vec![1, 0],
                sanitizer_sc: false,
            }],
            canary: CanarySummary {
                seeds: 8,
                caught: 8,
                earliest_caught_after_runs: Some(1),
                forbidden_unflagged: 0,
            },
            benchmarks: vec![BenchRow {
                profile: "light".into(),
                protocol: "rcc".into(),
                benchmark: "Hsp".into(),
                cycles: 20000,
                chaos_events: 12,
                sanitizer_sc: true,
            }],
            failed_jobs: vec![FailedJobRow {
                pass: "litmus".into(),
                index: 17,
                attempts: 2,
                reason: "deadlock: no progress for 2000000 cycles (\"mp\")".into(),
            }],
        };
        check_schema("BENCH_chaos.json", schemas::BENCH_CHAOS, &report.to_json()).unwrap();
        // The canary's "never caught" state serializes as a JSON null.
        let mut none = report;
        none.canary.earliest_caught_after_runs = None;
        assert!(none
            .to_json()
            .contains("\"earliest_caught_after_runs\": null"));
        check_schema("BENCH_chaos.json", schemas::BENCH_CHAOS, &none.to_json()).unwrap();
    }

    #[test]
    fn schema_catches_a_drifted_field() {
        let json = sample_sim_report()
            .to_json()
            .replace("\"speedup\"", "\"speed\"");
        let err = check_schema("BENCH_sim.json", schemas::BENCH_SIM, &json).unwrap_err();
        assert!(err.contains("speedup"), "{err}");
        assert!(err.contains("speed"), "{err}");
    }
}
