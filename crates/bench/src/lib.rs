//! Benchmark harness: regenerates every table and figure of the paper's
//! evaluation (see the experiment index in DESIGN.md and the results in
//! EXPERIMENTS.md).
//!
//! Each `fig*`/`table*` binary runs the simulations it needs and prints
//! the same rows/series the paper reports. Absolute numbers differ from
//! the paper (this is a from-scratch simulator, not the authors'
//! GPGPU-Sim + Ruby testbed); the *shape* — who wins, by roughly what
//! factor, where the crossovers fall — is what EXPERIMENTS.md compares.
//!
//! Common flags for all binaries:
//!
//! * `--quick` — small machine + tiny workloads (seconds; for smoke runs)
//! * `--full`  — all 48 warp contexts per core (several minutes)
//! * default   — the GTX 480 machine of Table III with 16 warps per core
//! * `--sanitize` — attach the `rcc-verify` runtime SC sanitizer to every
//!   run; SC-capable protocols must produce an execution some SC total
//!   order explains, or the run aborts (adds an end-of-run check, slows
//!   recording slightly)
//! * `--chaos seed=N,profile=P` — arm deterministic perturbation
//!   injection (`rcc-chaos`) on every run; profiles: `light`, `heavy`,
//!   `reorder`, `canary` (the last is deliberately unsound — pair it
//!   with `--sanitize` to watch the sanitizer catch it)
//! * `--sample-every N` — record a metrics time-series sample every N
//!   cycles (see `rcc-obs`); exported with `--series-out`
//! * `--trace-out PATH` — write a Chrome/Perfetto trace of the runs a
//!   binary chooses to export (see [`Harness::dump_observation`])
//! * `--series-out PATH` — write the sampled time-series (`.csv` or
//!   `.json` by extension; defaults sampling to every 256 cycles if
//!   `--sample-every` is absent)
//! * `--profile` — attach the simulator self-profiler to every run
//! * `--checkpoint PATH` — periodic snapshots for every run; each run
//!   writes `PATH-<protocol>-<workload>` (plus a `.manifest.json`
//!   sidecar), and a deadlocked run leaves a replayable auto-checkpoint
//!   at `...hang`
//! * `--checkpoint-every N` — snapshot period in cycles (default
//!   1000000 when `--checkpoint` is given)
//! * `--resume PATH` — replay one snapshot and print its metrics
//!   instead of running the experiment (exit 1 on a typed failure,
//!   e.g. when a `.hang` snapshot faithfully reproduces its deadlock)
//! * `--record-trace STEM` — capture every run's memory-access trace;
//!   each run writes `STEM-<protocol>-<workload>.rcct` (plus a
//!   `.manifest.json` sidecar; inspect with the `rcc-trace` tool)
//! * `--replay-trace PATH` — substitute a recorded or hand-authored
//!   trace (RCCT binary or text) for every benchmark the binary would
//!   generate; pair with `--chaos` for trace fuzzing

#![forbid(unsafe_code)]

pub mod pool;
pub mod report;

use rcc_common::stats::gmean;
use rcc_common::GpuConfig;
use rcc_core::ProtocolKind;
use rcc_sim::runner::{simulate, SimOptions};
use rcc_sim::RunMetrics;
use rcc_workloads::{Benchmark, Scale, Workload};

/// Seed used by all figure runs (reproducibility).
pub const SEED: u64 = 7;

/// Harness configuration derived from the command line.
#[derive(Debug, Clone)]
pub struct Harness {
    /// Machine configuration.
    pub cfg: GpuConfig,
    /// Workload scale.
    pub scale: Scale,
    /// Simulation options.
    pub opts: SimOptions,
    /// Worker threads for experiment grids (`--jobs N`; 1 = sequential).
    pub jobs: usize,
    /// Where `--trace-out` asked for a Chrome-trace export (`None` = off).
    pub trace_out: Option<String>,
    /// Where `--series-out` asked for a time-series export (`None` = off).
    pub series_out: Option<String>,
    /// Checkpoint path stem from `--checkpoint`; each run snapshots to
    /// `<stem>-<protocol>-<workload>` so grid runs don't collide.
    pub checkpoint: Option<String>,
    /// Snapshot period from `--checkpoint-every`.
    pub checkpoint_every: u64,
    /// Trace stem from `--record-trace`; each run captures its
    /// memory-access trace to `<stem>-<protocol>-<workload>.rcct`.
    pub record_trace: Option<String>,
    /// Trace path from `--replay-trace`: substituted for every generated
    /// workload (see [`Harness::workload`]).
    pub replay_trace: Option<String>,
}

impl Harness {
    /// Parses `--quick` / `--full` / `--sanitize` / `--chaos SPEC` /
    /// `--jobs N` / `--sample-every N` / `--trace-out PATH` /
    /// `--series-out PATH` / `--profile` from the process arguments.
    pub fn from_args() -> Harness {
        let args: Vec<String> = std::env::args().collect();
        let quick = args.iter().any(|a| a == "--quick");
        let full = args.iter().any(|a| a == "--full");
        let mut opts = SimOptions::fast();
        opts.sanitize = args.iter().any(|a| a == "--sanitize");
        opts.chaos = parse_chaos(&args);
        opts.profile = args.iter().any(|a| a == "--profile");
        let flag_value = |flag: &str| {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1).cloned())
        };
        let trace_out = flag_value("--trace-out");
        let series_out = flag_value("--series-out");
        opts.trace = trace_out.is_some();
        opts.sample_every = flag_value("--sample-every")
            .and_then(|n| n.parse::<u64>().ok())
            .unwrap_or(if series_out.is_some() { 256 } else { 0 });
        let jobs = parse_jobs(&args);
        // `--resume` short-circuits the whole experiment: replay the one
        // snapshot, print its metrics, and exit with the run's verdict.
        if let Some(path) = flag_value("--resume") {
            match rcc_sim::runner::resume(&path) {
                Ok(m) => {
                    println!(
                        "resumed {} on {}: {} cycles, IPC {:.4}, digest {:016x}",
                        m.kind.label(),
                        m.workload,
                        m.cycles,
                        m.ipc(),
                        m.digest(1)
                    );
                    std::process::exit(0);
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            }
        }
        let checkpoint = flag_value("--checkpoint");
        let checkpoint_every = flag_value("--checkpoint-every")
            .and_then(|n| n.parse::<u64>().ok())
            .unwrap_or(if checkpoint.is_some() { 1_000_000 } else { 0 });
        let (cfg, scale) = if quick {
            (GpuConfig::small(), Scale::quick())
        } else if full {
            (GpuConfig::gtx480(), Scale::full())
        } else {
            (GpuConfig::gtx480(), Scale::standard())
        };
        Harness {
            cfg,
            scale,
            opts,
            jobs,
            trace_out,
            series_out,
            checkpoint,
            checkpoint_every,
            record_trace: flag_value("--record-trace"),
            replay_trace: flag_value("--replay-trace"),
        }
    }

    /// Per-run options: the shared options plus, when `--checkpoint` was
    /// given, a snapshot path unique to this (protocol, workload) pair.
    fn opts_for(&self, kind: ProtocolKind, workload: &str) -> SimOptions {
        let mut opts = self.opts.clone();
        if let Some(stem) = &self.checkpoint {
            opts.checkpoint = Some(format!("{stem}-{}-{workload}", kind.label()));
            opts.checkpoint_every = self.checkpoint_every;
        }
        if let Some(stem) = &self.record_trace {
            opts.record_trace = Some(format!("{stem}-{}-{workload}.rcct", kind.label()));
        }
        opts
    }

    /// Writes one run's recorded observation to the `--trace-out` /
    /// `--series-out` paths (whichever were given). The series export is
    /// CSV unless the path ends in `.json`. Does nothing when the run
    /// carried no observation.
    pub fn dump_observation(&self, m: &RunMetrics) -> std::io::Result<()> {
        let Some(obs) = &m.obs else { return Ok(()) };
        if let Some(path) = &self.trace_out {
            std::fs::write(path, obs.trace.to_chrome_json())?;
            println!("wrote {path} ({} trace events)", obs.trace.len());
        }
        if let Some(path) = &self.series_out {
            let dump = if path.ends_with(".json") {
                obs.series.to_json()
            } else {
                obs.series.to_csv()
            };
            std::fs::write(path, dump)?;
            println!("wrote {path} ({} sampled rows)", obs.series.rows());
        }
        Ok(())
    }

    /// Generates a benchmark's workload at this harness's scale — or,
    /// under `--replay-trace`, the workload lowered from the trace file
    /// (every benchmark the binary asks for replays the same trace). A
    /// bad trace file aborts: silently falling back to the generated
    /// workload would defeat the flag.
    pub fn workload(&self, bench: Benchmark) -> Workload {
        let Some(path) = &self.replay_trace else {
            return bench.generate(&self.cfg, &self.scale, SEED);
        };
        match load_trace_workload(path, self.cfg.num_cores) {
            Ok(wl) => wl,
            Err(e) => {
                eprintln!("cannot replay {path}: {e}");
                std::process::exit(2);
            }
        }
    }

    /// Runs one (protocol, benchmark) pair.
    pub fn run(&self, kind: ProtocolKind, bench: Benchmark) -> RunMetrics {
        let wl = self.workload(bench);
        self.run_workload(kind, &wl)
    }

    /// Runs one protocol over a prepared workload.
    pub fn run_workload(&self, kind: ProtocolKind, wl: &Workload) -> RunMetrics {
        simulate(kind, &self.cfg, wl, &self.opts_for(kind, wl.name))
    }

    /// Runs a whole experiment grid over the job pool, returning metrics
    /// in the order the pairs were given (independent of `jobs`). Each
    /// job regenerates its workload from the shared seed, so results
    /// match per-pair [`Harness::run`] calls exactly.
    pub fn run_pairs(&self, pairs: &[(ProtocolKind, Benchmark)]) -> Vec<RunMetrics> {
        pool::run_indexed(pairs.to_vec(), self.jobs, |(kind, bench)| {
            self.run(kind, bench)
        })
    }
}

/// Loads a trace file (RCCT binary or text dialect) and lowers it to a
/// runnable workload spanning `num_cores` cores.
///
/// # Errors
///
/// Whatever [`rcc_trace::Trace::load_any`] reports, plus
/// [`rcc_trace::TraceError::Mismatch`] when the trace spans more cores
/// than the machine has.
pub fn load_trace_workload(
    path: &str,
    num_cores: usize,
) -> Result<Workload, rcc_trace::TraceError> {
    rcc_trace::Trace::load_any(path)?.to_workload(num_cores)
}

/// Parses `--jobs N` (`0` = one per core) from an argument list;
/// defaults to 1 (sequential).
pub fn parse_jobs(args: &[String]) -> usize {
    args.iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|n| n.parse::<usize>().ok())
        .map_or(1, pool::resolve_jobs)
}

/// Parses `--chaos seed=N,profile=P` from an argument list; `None` when
/// the flag is absent. A malformed spec aborts with the parser's message
/// (silently running unperturbed would defeat the point of the flag).
pub fn parse_chaos(args: &[String]) -> Option<rcc_chaos::ChaosSpec> {
    let spec = args
        .iter()
        .position(|a| a == "--chaos")
        .map(|i| args.get(i + 1).cloned().unwrap_or_default())?;
    match rcc_chaos::ChaosSpec::parse(&spec) {
        Ok(spec) => Some(spec),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}

/// Prints a header with the figure id and run configuration.
pub fn banner(fig: &str, what: &str, h: &Harness) {
    println!("================================================================");
    println!("{fig}: {what}");
    println!(
        "machine: {} cores x {} warps, L2 {} KiB x {}, scale {} warps/core x {} iters, seed {}",
        h.cfg.num_cores,
        h.cfg.warps_per_core,
        h.cfg.l2.partition.size_bytes / 1024,
        h.cfg.l2.num_partitions,
        h.scale.warps_per_core,
        h.scale.iters,
        SEED,
    );
    println!("================================================================");
}

/// Percent formatting helper.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Geometric mean over a slice (1.0 when empty — identity for speedups).
pub fn gmean_or_one(values: &[f64]) -> f64 {
    gmean(values.iter().copied()).unwrap_or(1.0)
}

/// The six inter-workgroup benchmarks (left half of every figure).
pub fn inter() -> Vec<Benchmark> {
    Benchmark::inter_workgroup()
}

/// The six intra-workgroup benchmarks (right half of every figure).
pub fn intra() -> Vec<Benchmark> {
    Benchmark::intra_workgroup()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_defaults_to_gtx480() {
        let h = Harness::from_args();
        assert!(h.cfg.num_cores >= 4);
    }

    #[test]
    fn gmean_or_one_handles_empty() {
        assert_eq!(gmean_or_one(&[]), 1.0);
        assert!((gmean_or_one(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn benchmark_halves() {
        assert_eq!(inter().len(), 6);
        assert_eq!(intra().len(), 6);
    }

    #[test]
    fn parse_chaos_flag() {
        let args: Vec<String> = ["bin", "--chaos", "seed=5,profile=heavy"]
            .iter()
            .map(ToString::to_string)
            .collect();
        let spec = parse_chaos(&args).expect("flag present");
        assert_eq!(spec.seed, 5);
        assert_eq!(spec.profile.name, "heavy");
        assert!(parse_chaos(&["bin".to_string()]).is_none());
    }
}
