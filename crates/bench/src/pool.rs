//! A deterministic fork-join job pool for experiment grids.
//!
//! Every figure binary runs dozens of independent `(protocol ×
//! benchmark)` simulations; this pool spreads them over OS threads with
//! `std::thread::scope` — no external dependencies, so the workspace
//! still builds offline. Determinism matters more than scheduling
//! cleverness here: each job's result is written into a slot addressed
//! by the job's index, so the returned vector is always in submission
//! order and downstream output (tables, CSV rows) is byte-identical to
//! a sequential run regardless of thread count or completion order.
//!
//! Two entry points with different failure contracts:
//!
//! - [`run_indexed`] — every job must succeed. Panics are isolated per
//!   job so the whole grid still completes, then the first panic (in
//!   submission order, so deterministically the same one regardless of
//!   scheduling) is re-raised.
//! - [`run_guarded`] — sweeps that must survive bad jobs. Each job runs
//!   under `catch_unwind` with a deterministic retry-with-backoff
//!   schedule and an optional wall-clock timeout; failures come back as
//!   typed [`JobFailure`] rows next to the surviving results instead of
//!   aborting the harness, so one bad seed never kills a 5000-run sweep.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Renders a panic payload as a one-line reason.
fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Runs `f` over `jobs`, using up to `threads` worker threads, and
/// returns the results in submission order.
///
/// With `threads <= 1` (or a single job) the jobs run sequentially on
/// the calling thread — the reference behaviour the parallel path must
/// reproduce byte-for-byte.
///
/// # Panics
///
/// Re-raises the first panicking job *by submission order* — but only
/// after every job has run, so a crash in job 3 never leaves jobs 4..n
/// unexecuted and the propagated panic does not depend on thread timing.
pub fn run_indexed<J, T, F>(jobs: Vec<J>, threads: usize, f: F) -> Vec<T>
where
    J: Send,
    T: Send,
    F: Fn(J) -> T + Sync,
{
    let n = jobs.len();
    let workers = threads.min(n).max(1);
    type Attempt<T> = Result<T, Box<dyn std::any::Any + Send>>;
    let slots: Vec<Mutex<Option<Attempt<T>>>> = (0..n).map(|_| Mutex::new(None)).collect();

    if workers == 1 {
        for (idx, job) in jobs.into_iter().enumerate() {
            let result = catch_unwind(AssertUnwindSafe(|| f(job)));
            *slots[idx].lock().expect("result slot poisoned") = Some(result);
        }
    } else {
        // Job queue: index-stamped so results land in submission order.
        let work: Vec<(usize, J)> = jobs.into_iter().enumerate().collect();
        let work = Mutex::new(work.into_iter());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    // Pull the next job; the iterator hands them out in
                    // submission order, one at a time.
                    let job = work.lock().expect("job queue poisoned").next();
                    let Some((idx, job)) = job else { break };
                    let result = catch_unwind(AssertUnwindSafe(|| f(job)));
                    *slots[idx].lock().expect("result slot poisoned") = Some(result);
                });
            }
        });
    }

    let mut out = Vec::with_capacity(n);
    let mut first_panic = None;
    for slot in slots {
        match slot
            .into_inner()
            .expect("result slot poisoned")
            .expect("every job stores its result")
        {
            Ok(v) => out.push(v),
            Err(payload) => {
                if first_panic.is_none() {
                    first_panic = Some(payload);
                }
            }
        }
    }
    if let Some(payload) = first_panic {
        std::panic::resume_unwind(payload);
    }
    out
}

/// The outcome of one cooperative slice of a yieldable job: either the
/// job finished with a result, or it yields a continuation that must be
/// re-enqueued (see [`run_yielding`]).
#[derive(Debug)]
pub enum Slice<J, T> {
    /// The job is finished.
    Done(T),
    /// The job ran one slice and hands back its continuation (e.g. a
    /// simulation checkpoint); the pool re-enqueues it at the back so
    /// other jobs are not starved behind it.
    Yield(J),
}

/// Runs cooperative (preemptible) jobs: `f` executes one *slice* of a
/// job; a [`Slice::Yield`] continuation goes to the back of the shared
/// queue, so a long job never starves the short jobs queued behind it —
/// each gets a slice before the long job's next one. Results land in
/// submission order, like [`run_indexed`].
///
/// Determinism contract: re-enqueuing moves only *wall-clock*
/// interleaving; the continuation values themselves (and therefore every
/// result) must not depend on when their slices run. Simulation
/// checkpoints satisfy this by construction.
///
/// # Panics
///
/// Re-raises the first panicking job *by submission order*, after every
/// job has run to completion or panicked — same contract as
/// [`run_indexed`]. A job that panics mid-slice is finished (its
/// continuation is gone).
pub fn run_yielding<J, T, F>(jobs: Vec<J>, threads: usize, f: F) -> Vec<T>
where
    J: Send,
    T: Send,
    F: Fn(J) -> Slice<J, T> + Sync,
{
    use std::collections::VecDeque;
    use std::sync::Condvar;

    let n = jobs.len();
    let workers = threads.min(n).max(1);
    type Attempt<T> = Result<T, Box<dyn std::any::Any + Send>>;
    let slots: Vec<Mutex<Option<Attempt<T>>>> = (0..n).map(|_| Mutex::new(None)).collect();

    struct Shared<J> {
        queue: VecDeque<(usize, J)>,
        in_flight: usize,
    }
    let shared = Mutex::new(Shared {
        queue: jobs.into_iter().enumerate().collect(),
        in_flight: 0,
    });
    let cv = Condvar::new();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let mut st = shared.lock().expect("yield queue poisoned");
                // A yielding job can refill the queue, so an empty queue
                // only ends the pool once nothing is in flight either.
                while st.queue.is_empty() && st.in_flight > 0 {
                    st = cv.wait(st).expect("yield queue poisoned");
                }
                let Some((idx, job)) = st.queue.pop_front() else {
                    break;
                };
                st.in_flight += 1;
                drop(st);

                let result = catch_unwind(AssertUnwindSafe(|| f(job)));
                let mut st = shared.lock().expect("yield queue poisoned");
                st.in_flight -= 1;
                match result {
                    Ok(Slice::Done(v)) => {
                        *slots[idx].lock().expect("result slot poisoned") = Some(Ok(v));
                    }
                    Ok(Slice::Yield(next)) => st.queue.push_back((idx, next)),
                    Err(payload) => {
                        *slots[idx].lock().expect("result slot poisoned") = Some(Err(payload));
                    }
                }
                drop(st);
                cv.notify_all();
            });
        }
    });

    let mut out = Vec::with_capacity(n);
    let mut first_panic = None;
    for slot in slots {
        match slot
            .into_inner()
            .expect("result slot poisoned")
            .expect("every job stores its result")
        {
            Ok(v) => out.push(v),
            Err(payload) => {
                if first_panic.is_none() {
                    first_panic = Some(payload);
                }
            }
        }
    }
    if let Some(payload) = first_panic {
        std::panic::resume_unwind(payload);
    }
    out
}

/// Failure policy for [`run_guarded`].
#[derive(Debug, Clone, Copy)]
pub struct GuardPolicy {
    /// Extra attempts after a failed one (0 = single attempt). Retries
    /// are for environmental flakes (resource exhaustion, a timeout on a
    /// loaded machine); a deterministic panic will deterministically
    /// repeat and exhaust them, which is the desired forensic signal.
    pub retries: u32,
    /// Backoff before retry `k` (1-based): `k * backoff_ms` milliseconds.
    /// The schedule is deterministic; it delays wall clock only and
    /// cannot affect simulated results.
    pub backoff_ms: u64,
    /// Wall-clock budget per attempt in milliseconds (0 = unlimited).
    /// A timed-out attempt counts as a failure; its worker thread is
    /// abandoned (detached) rather than killed, so results arriving
    /// after the deadline are discarded.
    pub timeout_ms: u64,
}

impl Default for GuardPolicy {
    fn default() -> Self {
        GuardPolicy {
            retries: 1,
            backoff_ms: 10,
            timeout_ms: 0,
        }
    }
}

/// One job that exhausted its [`GuardPolicy`], reported instead of
/// aborting the sweep.
#[derive(Debug, Clone)]
pub struct JobFailure {
    /// Submission index of the failed job.
    pub index: usize,
    /// Attempts made (1 + retries actually used).
    pub attempts: u32,
    /// Last failure reason: the panic message, or `"timeout after Nms"`.
    pub reason: String,
}

fn attempt_guarded<J, T, F>(job: &J, policy: &GuardPolicy, f: &Arc<F>) -> Result<T, String>
where
    J: Send + Clone + 'static,
    T: Send + 'static,
    F: Fn(J) -> T + Send + Sync + 'static,
{
    if policy.timeout_ms == 0 {
        return catch_unwind(AssertUnwindSafe(|| f(job.clone())))
            .map_err(|p| panic_reason(p.as_ref()));
    }
    // Timed attempt: run on a detached thread and wait on a channel, so
    // a wedged job cannot wedge the sweep. The thread keeps running
    // after a timeout (there is no safe way to kill it); its eventual
    // send fails harmlessly because the receiver is gone.
    let (tx, rx) = mpsc::channel();
    let f = Arc::clone(f);
    let job = job.clone();
    std::thread::spawn(move || {
        let result =
            catch_unwind(AssertUnwindSafe(|| f(job))).map_err(|p| panic_reason(p.as_ref()));
        let _ = tx.send(result);
    });
    match rx.recv_timeout(Duration::from_millis(policy.timeout_ms)) {
        Ok(result) => result,
        Err(_) => Err(format!("timeout after {}ms", policy.timeout_ms)),
    }
}

/// Runs `f` over `jobs` like [`run_indexed`], but isolates failures:
/// each job gets `1 + policy.retries` attempts (with deterministic
/// backoff and an optional per-attempt timeout), and a job that exhausts
/// them yields `None` in the results plus a [`JobFailure`] row — the
/// sweep itself always completes and never panics because of a job.
///
/// Results are in submission order; failures are in submission order.
pub fn run_guarded<J, T, F>(
    jobs: Vec<J>,
    threads: usize,
    policy: GuardPolicy,
    f: F,
) -> (Vec<Option<T>>, Vec<JobFailure>)
where
    J: Send + Clone + 'static,
    T: Send + 'static,
    F: Fn(J) -> T + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let run_one = |job: &J| -> Result<T, JobFailureDraft> {
        let mut last_reason = String::new();
        let max_attempts = 1 + policy.retries;
        for attempt in 1..=max_attempts {
            if attempt > 1 && policy.backoff_ms > 0 {
                std::thread::sleep(Duration::from_millis(
                    u64::from(attempt - 1) * policy.backoff_ms,
                ));
            }
            match attempt_guarded(job, &policy, &f) {
                Ok(v) => return Ok(v),
                Err(reason) => last_reason = reason,
            }
        }
        Err(JobFailureDraft {
            attempts: max_attempts,
            reason: last_reason,
        })
    };
    let outcomes = run_indexed(jobs, threads, |job| run_one(&job));
    let mut results = Vec::with_capacity(outcomes.len());
    let mut failures = Vec::new();
    for (index, outcome) in outcomes.into_iter().enumerate() {
        match outcome {
            Ok(v) => results.push(Some(v)),
            Err(draft) => {
                results.push(None);
                failures.push(JobFailure {
                    index,
                    attempts: draft.attempts,
                    reason: draft.reason,
                });
            }
        }
    }
    (results, failures)
}

/// [`JobFailure`] before its submission index is known.
struct JobFailureDraft {
    attempts: u32,
    reason: String,
}

/// Resolves a `--jobs N` request: `0` means "one per available core".
pub fn resolve_jobs(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        requested
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_in_submission_order() {
        // Jobs finish out of order (larger index sleeps less), yet the
        // results must come back in submission order.
        let jobs: Vec<u64> = (0..32).collect();
        let out = run_indexed(jobs.clone(), 4, |j| {
            std::thread::sleep(std::time::Duration::from_micros(200 - 6 * j.min(30)));
            j * 10
        });
        assert_eq!(out, jobs.iter().map(|j| j * 10).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let jobs: Vec<u64> = (0..40).collect();
        let seq = run_indexed(jobs.clone(), 1, |j| j * j + 3);
        let par = run_indexed(jobs, 4, |j| j * j + 3);
        assert_eq!(seq, par);
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(run_indexed(Vec::<u64>::new(), 8, |j| j), Vec::<u64>::new());
        assert_eq!(run_indexed(vec![5u64], 8, |j| j + 1), vec![6]);
    }

    #[test]
    fn more_threads_than_jobs() {
        let out = run_indexed(vec![1u64, 2], 16, |j| j);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn resolve_jobs_zero_means_cores() {
        assert!(resolve_jobs(0) >= 1);
        assert_eq!(resolve_jobs(3), 3);
    }

    #[test]
    fn panicking_job_does_not_starve_the_rest() {
        // Job 1 panics, yet every other job must still run before the
        // panic is re-raised — and the re-raised panic is job 1's,
        // deterministically, not whichever crashed first on the clock.
        let ran = Arc::new(AtomicUsize::new(0));
        let ran2 = Arc::clone(&ran);
        let result = catch_unwind(AssertUnwindSafe(move || {
            run_indexed((0..16u64).collect(), 4, move |j| {
                if j == 1 {
                    panic!("job {j} exploded");
                }
                ran2.fetch_add(1, Ordering::SeqCst);
                j
            })
        }));
        let payload = result.expect_err("panic propagates");
        assert_eq!(panic_reason(payload.as_ref()), "job 1 exploded");
        assert_eq!(ran.load(Ordering::SeqCst), 15);
    }

    #[test]
    fn yielding_jobs_complete_in_submission_order() {
        // Each job counts down through yields; results are in order and
        // every slice ran.
        let out = run_yielding(vec![3u64, 0, 5, 1], 2, |remaining| {
            if remaining == 0 {
                Slice::Done("done")
            } else {
                Slice::Yield(remaining - 1)
            }
        });
        assert_eq!(out, vec!["done"; 4]);
    }

    #[test]
    fn yielding_interleaves_long_and_short_jobs() {
        // One long job (many slices) and many short ones on a single
        // worker: the requeue-at-the-back rule means every short job
        // finishes before the long job's last slice.
        let order = Arc::new(Mutex::new(Vec::new()));
        let o2 = Arc::clone(&order);
        let jobs: Vec<(usize, u64)> = vec![(0, 8), (1, 0), (2, 0), (3, 0)];
        run_yielding(jobs, 1, move |(id, remaining)| {
            if remaining == 0 {
                o2.lock().unwrap().push(id);
                Slice::Done(id)
            } else {
                Slice::Yield((id, remaining - 1))
            }
        });
        let order = order.lock().unwrap().clone();
        assert_eq!(
            order,
            vec![1, 2, 3, 0],
            "short jobs finish before the long job's final slice"
        );
    }

    #[test]
    fn yielding_panic_is_isolated_and_deterministic() {
        let finished = Arc::new(AtomicUsize::new(0));
        let f2 = Arc::clone(&finished);
        let result = catch_unwind(AssertUnwindSafe(move || {
            run_yielding((0..8u64).collect(), 3, move |j| {
                if j == 2 {
                    panic!("slice {j} exploded");
                }
                f2.fetch_add(1, Ordering::SeqCst);
                Slice::Done(j)
            })
        }));
        let payload = result.expect_err("panic propagates");
        assert_eq!(panic_reason(payload.as_ref()), "slice 2 exploded");
        assert_eq!(finished.load(Ordering::SeqCst), 7);
    }

    #[test]
    fn yielding_handles_empty() {
        let out = run_yielding(Vec::<u64>::new(), 4, Slice::<u64, u64>::Done);
        assert_eq!(out, Vec::<u64>::new());
    }

    #[test]
    fn guarded_isolates_failures_and_keeps_order() {
        let policy = GuardPolicy {
            retries: 0,
            backoff_ms: 0,
            timeout_ms: 0,
        };
        let (results, failures) = run_guarded((0..10u64).collect(), 4, policy, |j| {
            assert!(j % 4 != 2, "seed {j} is cursed");
            j * 100
        });
        assert_eq!(results.len(), 10);
        for (i, r) in results.iter().enumerate() {
            if i % 4 == 2 {
                assert!(r.is_none());
            } else {
                assert_eq!(*r, Some(i as u64 * 100));
            }
        }
        assert_eq!(
            failures.iter().map(|f| f.index).collect::<Vec<_>>(),
            vec![2, 6]
        );
        assert!(failures[0].reason.contains("cursed"));
        assert_eq!(failures[0].attempts, 1);
    }

    #[test]
    fn guarded_retries_until_success() {
        let counter = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&counter);
        let policy = GuardPolicy {
            retries: 2,
            backoff_ms: 1,
            timeout_ms: 0,
        };
        // The single job fails twice, then succeeds on the third attempt.
        let (results, failures) = run_guarded(vec![7u64], 1, policy, move |j| {
            let n = c2.fetch_add(1, Ordering::SeqCst);
            assert!(n >= 2, "flaky attempt {n}");
            j
        });
        assert_eq!(results, vec![Some(7)]);
        assert!(failures.is_empty());
        assert_eq!(counter.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn guarded_times_out_wedged_jobs() {
        let policy = GuardPolicy {
            retries: 0,
            backoff_ms: 0,
            timeout_ms: 20,
        };
        let (results, failures) = run_guarded(vec![0u64, 1], 2, policy, |j| {
            if j == 0 {
                // Wedge far past the timeout; the sweep must move on.
                std::thread::sleep(std::time::Duration::from_millis(2_000));
            }
            j
        });
        assert_eq!(results[0], None);
        assert_eq!(results[1], Some(1));
        assert_eq!(failures.len(), 1);
        assert!(failures[0].reason.contains("timeout"), "{failures:?}");
    }
}
