//! A deterministic fork-join job pool for experiment grids.
//!
//! Every figure binary runs dozens of independent `(protocol ×
//! benchmark)` simulations; this pool spreads them over OS threads with
//! `std::thread::scope` — no external dependencies, so the workspace
//! still builds offline. Determinism matters more than scheduling
//! cleverness here: each job's result is written into a slot addressed
//! by the job's index, so the returned vector is always in submission
//! order and downstream output (tables, CSV rows) is byte-identical to
//! a sequential run regardless of thread count or completion order.

use std::sync::Mutex;

/// Runs `f` over `jobs`, using up to `threads` worker threads, and
/// returns the results in submission order.
///
/// With `threads <= 1` (or a single job) the jobs run sequentially on
/// the calling thread — the reference behaviour the parallel path must
/// reproduce byte-for-byte.
///
/// # Panics
///
/// Propagates a panic from any job (the scope joins all workers first).
pub fn run_indexed<J, T, F>(jobs: Vec<J>, threads: usize, f: F) -> Vec<T>
where
    J: Send,
    T: Send,
    F: Fn(J) -> T + Sync,
{
    let n = jobs.len();
    let workers = threads.min(n).max(1);
    if workers == 1 {
        return jobs.into_iter().map(f).collect();
    }

    // Job queue: index-stamped so results land in submission order.
    let work: Vec<(usize, J)> = jobs.into_iter().enumerate().collect();
    let work = Mutex::new(work.into_iter());
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                // Pull the next job; the iterator hands them out in
                // submission order, one at a time.
                let job = work.lock().expect("job queue poisoned").next();
                let Some((idx, job)) = job else { break };
                let result = f(job);
                *slots[idx].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every job stores its result")
        })
        .collect()
}

/// Resolves a `--jobs N` request: `0` means "one per available core".
pub fn resolve_jobs(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        requested
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_submission_order() {
        // Jobs finish out of order (larger index sleeps less), yet the
        // results must come back in submission order.
        let jobs: Vec<u64> = (0..32).collect();
        let out = run_indexed(jobs.clone(), 4, |j| {
            std::thread::sleep(std::time::Duration::from_micros(200 - 6 * j.min(30)));
            j * 10
        });
        assert_eq!(out, jobs.iter().map(|j| j * 10).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let jobs: Vec<u64> = (0..40).collect();
        let seq = run_indexed(jobs.clone(), 1, |j| j * j + 3);
        let par = run_indexed(jobs, 4, |j| j * j + 3);
        assert_eq!(seq, par);
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(run_indexed(Vec::<u64>::new(), 8, |j| j), Vec::<u64>::new());
        assert_eq!(run_indexed(vec![5u64], 8, |j| j + 1), vec![6]);
    }

    #[test]
    fn more_threads_than_jobs() {
        let out = run_indexed(vec![1u64, 2], 16, |j| j);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn resolve_jobs_zero_means_cores() {
        assert!(resolve_jobs(0) >= 1);
        assert_eq!(resolve_jobs(3), 3);
    }
}
