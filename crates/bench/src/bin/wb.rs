//! Write-through vs write-back L1 baseline comparison.
//!
//! Section I of the paper motivates GPU-specific coherence partly by
//! arguing that CPU-style *write-back* L1 coherence is a poor fit for
//! GPU sharing patterns: "a write-back policy brings infrequently
//! written data into the L1 only to write it back soon afterwards",
//! and ownership recalls serialize producer/consumer communication.
//! This binary makes that claim measurable: it runs the directory MESI
//! baseline with write-through L1s (the paper's configuration) and with
//! write-back L1s (MESI-WB) over all twelve benchmarks and reports
//! cycles, NoC flits, dirty writebacks, and invalidation/recall counts.

use rcc_bench::{banner, gmean_or_one, inter, intra, Harness};
use rcc_common::stats::MsgClass;
use rcc_core::ProtocolKind;

fn main() {
    let h = Harness::from_args();
    banner(
        "WT-vs-WB",
        "directory MESI with write-through vs write-back L1s",
        &h,
    );

    println!(
        "\n{:>6} | {:>10} {:>10} {:>7} | {:>6} {:>9} | {:>8} {:>8}",
        "bench", "WT cyc", "WB cyc", "WT/WB", "flit×", "WB wrbks", "WT invs", "WB invs"
    );
    println!("{}", "-".repeat(84));

    let categories = [("inter-workgroup", inter()), ("intra-workgroup", intra())];
    let pairs: Vec<_> = categories
        .iter()
        .flat_map(|(_, benches)| benches.iter())
        .flat_map(|&b| [(ProtocolKind::Mesi, b), (ProtocolKind::MesiWb, b)])
        .collect();
    let mut runs = h.run_pairs(&pairs).into_iter();

    let mut speedups = Vec::new();
    let mut flit_ratios = Vec::new();
    for (cat, benches) in &categories {
        let mut cat_speedups = Vec::new();
        for b in benches {
            let wt = runs.next().expect("one WT run per benchmark");
            let wb = runs.next().expect("one WB run per benchmark");
            let speedup = wb.cycles as f64 / wt.cycles as f64;
            let flit_ratio =
                wb.traffic.total_flits() as f64 / wt.traffic.total_flits().max(1) as f64;
            println!(
                "{:>6} | {:>10} {:>10} {:>7.3} | {:>6.3} {:>9} | {:>8} {:>8}",
                b.name(),
                wt.cycles,
                wb.cycles,
                speedup,
                flit_ratio,
                wb.traffic.msgs(MsgClass::Writeback),
                wt.l2.invs_sent,
                wb.l2.invs_sent,
            );
            cat_speedups.push(speedup);
            speedups.push(speedup);
            flit_ratios.push(flit_ratio);
        }
        println!(
            "{cat}: gmean WT speedup over WB {:.3}\n",
            gmean_or_one(&cat_speedups)
        );
    }
    println!(
        "overall: gmean WT speedup over WB {:.3}, gmean WB/WT flits {:.3}",
        gmean_or_one(&speedups),
        gmean_or_one(&flit_ratios)
    );
}
