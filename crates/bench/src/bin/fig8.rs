//! Figure 8: SC stall rates (top) and stall resolve latency (bottom) for
//! the three SC-capable protocols, normalized to MESI.

use rcc_bench::{banner, gmean_or_one, Harness};
use rcc_core::ProtocolKind;
use rcc_workloads::Benchmark;

const KINDS: [ProtocolKind; 3] = [
    ProtocolKind::Mesi,
    ProtocolKind::TcStrong,
    ProtocolKind::RccSc,
];

fn main() {
    let h = Harness::from_args();
    banner(
        "Figure 8",
        "SC stall cycles per mem op and stall resolve latency, vs MESI",
        &h,
    );
    println!(
        "{:6} | {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9}",
        "bench", "MESI", "TCS", "RCC", "MESI-lat", "TCS-lat", "RCC-lat"
    );
    let pairs: Vec<_> = Benchmark::ALL
        .into_iter()
        .flat_map(|b| KINDS.map(|k| (k, b)))
        .collect();
    let runs = h.run_pairs(&pairs);
    let mut rate_tcs = Vec::new();
    let mut rate_rcc = Vec::new();
    let mut lat_tcs = Vec::new();
    let mut lat_rcc = Vec::new();
    for (bench, row) in Benchmark::ALL
        .into_iter()
        .zip(runs.chunks_exact(KINDS.len()))
    {
        let (mesi, tcs, rcc) = (&row[0], &row[1], &row[2]);
        let base_rate = mesi.sc_stalls_per_mem_op().max(1e-9);
        let base_lat = mesi.core.stall_resolve.mean().max(1e-9);
        println!(
            "{:6} | {:>9.3} {:>9.3} {:>9.3} | {:>9.3} {:>9.3} {:>9.3}",
            bench.name(),
            1.0,
            tcs.sc_stalls_per_mem_op() / base_rate,
            rcc.sc_stalls_per_mem_op() / base_rate,
            1.0,
            tcs.core.stall_resolve.mean() / base_lat,
            rcc.core.stall_resolve.mean() / base_lat,
        );
        if bench.category().is_inter_workgroup() {
            rate_tcs.push(tcs.sc_stalls_per_mem_op() / base_rate);
            rate_rcc.push(rcc.sc_stalls_per_mem_op() / base_rate);
            lat_tcs.push(tcs.core.stall_resolve.mean() / base_lat);
            lat_rcc.push(rcc.core.stall_resolve.mean() / base_lat);
        }
    }
    println!("----------------------------------------------------------------");
    println!(
        "inter gmean stall rate: TCS {:.2}, RCC {:.2} vs MESI=1  (paper: RCC -52% vs MESI, -25% vs TCS)",
        gmean_or_one(&rate_tcs),
        gmean_or_one(&rate_rcc),
    );
    println!(
        "inter gmean resolve latency: TCS {:.2}, RCC {:.2} vs MESI=1  (paper: RCC -35% vs MESI, -11% vs TCS)",
        gmean_or_one(&lat_tcs),
        gmean_or_one(&lat_rcc),
    );
}
