//! Figure 1: motivating study on the SC-MESI baseline.
//!
//! (a) fraction of memory operations that ever stalled for SC;
//! (b) fraction of SC stall cycles spent waiting on a prior store/atomic;
//! (c) average load vs store latency (inter-workgroup benchmarks);
//! (d) speedup of SC-IDEAL (instant read/write permissions) over SC-MESI.

use rcc_bench::{banner, gmean_or_one, pct, Harness};
use rcc_core::ProtocolKind;
use rcc_workloads::Benchmark;

fn main() {
    let h = Harness::from_args();
    banner(
        "Figure 1",
        "SC stalls on the MESI baseline and the SC-IDEAL limit",
        &h,
    );
    println!(
        "{:6} {:>12} {:>14} {:>10} {:>10} {:>8} {:>14}",
        "bench", "(a) stalled", "(b) prev-store", "(c) ld-lat", "st-lat", "st/ld", "(d) ideal-spd"
    );
    let pairs: Vec<_> = Benchmark::ALL
        .into_iter()
        .flat_map(|b| [(ProtocolKind::Mesi, b), (ProtocolKind::IdealSc, b)])
        .collect();
    let runs = h.run_pairs(&pairs);
    let mut ratios = Vec::new();
    let mut speedups_inter = Vec::new();
    for (bench, row) in Benchmark::ALL.into_iter().zip(runs.chunks_exact(2)) {
        let (mesi, ideal) = (&row[0], &row[1]);
        let ld = mesi.load_latency().mean();
        let st = mesi.store_latency().mean();
        let ratio = if ld > 0.0 { st / ld } else { 0.0 };
        let speedup = ideal.speedup_over(mesi);
        println!(
            "{:6} {:>12} {:>14} {:>10.0} {:>10.0} {:>7.2}x {:>13.2}x",
            bench.name(),
            pct(mesi.core.stalled_op_fraction()),
            pct(mesi.core.stall_fraction_prev_write()),
            ld,
            st,
            ratio,
            speedup,
        );
        if bench.category().is_inter_workgroup() {
            ratios.push(ratio);
            speedups_inter.push(speedup);
        }
    }
    println!("----------------------------------------------------------------");
    println!(
        "inter-workgroup gmean: store/load latency {:.2}x (paper: 2.4x), SC-IDEAL speedup {:.2}x (paper: 1.6x)",
        gmean_or_one(&ratios),
        gmean_or_one(&speedups_inter),
    );
}
