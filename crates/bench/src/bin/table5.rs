//! Table V: protocol state and transition census, plus the Table I
//! capability matrix.

use rcc_core::census::ProtocolCensus;
use rcc_core::ProtocolKind;

fn main() {
    println!("Table I: SC support and store permissions");
    println!(
        "{:8} {:>6} {:>28}",
        "protocol", "SC?", "stall-free store permissions?"
    );
    for k in [
        ProtocolKind::Mesi,
        ProtocolKind::TcStrong,
        ProtocolKind::TcWeak,
        ProtocolKind::RccSc,
    ] {
        let stores = match k {
            ProtocolKind::Mesi => "no (invalidate sharers)",
            ProtocolKind::TcStrong => "no (wait for lease expiry)",
            ProtocolKind::TcWeak => "yes (but fences stall)",
            _ => "yes",
        };
        println!(
            "{:8} {:>6} {:>28}",
            k.label(),
            if k.supports_sc() { "yes" } else { "no" },
            stores
        );
    }

    println!();
    println!("Table V: states (stable+transient) and transitions");
    println!(
        "{:22} {:>8} {:>8} {:>8} {:>8}",
        "", "MESI", "TCS", "TCW", "RCC"
    );
    let census = ProtocolCensus::table_v();
    let row = |label: &str, f: &dyn Fn(&ProtocolCensus) -> String| {
        print!("{label:22}");
        for c in &census {
            print!(" {:>8}", f(c));
        }
        println!();
    };
    row("L1 states", &|c| {
        format!("{} ({}+{})", c.l1_states(), c.l1_stable, c.l1_transient)
    });
    row("L1 transitions", &|c| c.l1_transitions.to_string());
    row("L2 states", &|c| {
        format!("{} ({}+{})", c.l2_states(), c.l2_stable, c.l2_transient)
    });
    row("L2 transitions", &|c| c.l2_transitions.to_string());
    println!();
    println!("RCC silicon overhead (Section IV-C): 32-bit exp per L1 line (~3%),");
    println!("32-bit exp+ver per L2 line (~6%) on 128-byte lines with 3-byte tags.");
}
