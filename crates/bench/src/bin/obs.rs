//! Observability smoke: a sampled + traced litmus sweep, artifact
//! export, and in-process schema validation (the CI `obs-smoke` job).
//!
//! Three passes:
//!
//! 1. **Litmus sweep** — every litmus test under {RCC-SC, MESI, TC-Weak}
//!    with the full observer attached (sampling + tracing). SC protocols
//!    must keep their outcomes SC-allowed with the observer on, the
//!    RCC-SC runs must trace per-L2-bank `lease` grants, and the MESI
//!    runs must not (no leases to grant).
//! 2. **Benchmark observation** — one rollover-heavy RCC-SC run with
//!    sampling, tracing, and self-profiling armed; its trace must carry
//!    the system-track rollover span and per-bank `rollover-reset`
//!    events, and its series must reconcile with the end-of-run totals.
//! 3. **Export + validate** — writes the RCC-SC `mp` litmus trace
//!    (`obs_trace.json`), and the benchmark's series (`obs_series.csv`,
//!    `obs_series.json`); every JSON artifact is validated against its
//!    schema under `schemas/` before being written, and any violation
//!    (or missing expected event) exits non-zero.
//!
//! Flags: `--sample-every N` (default 64), `--trace-out PATH` (default
//! `obs_trace.json`), `--series-out PATH` (default `obs_series.csv`; a
//! `.json` sibling is always written next to it).

use rcc_bench::report::{check_schema, schemas};
use rcc_common::GpuConfig;
use rcc_core::ProtocolKind;
use rcc_obs::{track, ObsConfig, SimPhase};
use rcc_sim::litmus::run_litmus_observed;
use rcc_sim::runner::{simulate, SimOptions};
use rcc_workloads::{litmus, Benchmark, Scale};

const KINDS: [ProtocolKind; 3] = [
    ProtocolKind::RccSc,
    ProtocolKind::Mesi,
    ProtocolKind::TcWeak,
];

fn main() -> std::process::ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let sample_every = flag("--sample-every")
        .and_then(|n| n.parse::<u64>().ok())
        .unwrap_or(64);
    let trace_out = flag("--trace-out").unwrap_or_else(|| "obs_trace.json".to_string());
    let series_out = flag("--series-out").unwrap_or_else(|| "obs_series.csv".to_string());
    let mut failures: Vec<String> = Vec::new();

    // Pass 1: observed litmus sweep.
    let cfg = GpuConfig::small();
    let obs = ObsConfig::full(sample_every);
    let mut runs = 0usize;
    let mut trace_events = 0usize;
    let mut sampled_rows = 0usize;
    let mut mp_trace: Option<String> = None;
    for kind in KINDS {
        for lit in litmus::all(cfg.num_cores, rcc_bench::SEED) {
            let (out, report) = run_litmus_observed(kind, &cfg, &lit, None, Some(&obs))
                .unwrap_or_else(|e| panic!("{e}"));
            let report = report.expect("observer was armed");
            runs += 1;
            trace_events += report.trace.len();
            sampled_rows += report.series.rows();
            if kind.supports_sc() && (out.forbidden || !out.sanitizer_sc) {
                failures.push(format!(
                    "{kind} on {}: forbidden={} sanitizer_sc={} with observer attached",
                    lit.name, out.forbidden, out.sanitizer_sc
                ));
            }
            let leases = report.trace.instant_tids("lease");
            if kind == ProtocolKind::RccSc && leases.is_empty() {
                failures.push(format!("RCC-SC on {}: no lease events traced", lit.name));
            }
            if kind == ProtocolKind::Mesi && !leases.is_empty() {
                failures.push(format!("MESI on {}: traced a lease grant", lit.name));
            }
            if kind == ProtocolKind::RccSc && lit.name == "mp" {
                mp_trace = Some(report.trace.to_chrome_json());
            }
        }
    }
    println!(
        "litmus sweep: {runs} observed runs, {trace_events} trace events, {sampled_rows} sampled rows"
    );

    // Pass 2: rollover-heavy RCC-SC benchmark with the full observer.
    let mut rcfg = cfg.clone();
    rcfg.rcc.rollover_threshold = 300;
    rcfg.rcc.fixed_lease = Some(64);
    let wl = Benchmark::Vpr.generate(&rcfg, &Scale::quick(), rcc_bench::SEED);
    let m = simulate(
        ProtocolKind::RccSc,
        &rcfg,
        &wl,
        &SimOptions::observed(sample_every),
    );
    let report = m.obs.as_ref().expect("observer was armed");
    let resets = report.trace.count_instants("rollover-reset");
    if m.rollovers == 0 || resets == 0 {
        failures.push(format!(
            "rollover run: {} rollovers, {resets} reset events — trace is blind to rollover",
            m.rollovers
        ));
    }
    let expected_tids: Vec<u64> = (0..rcfg.l2.num_partitions as u64)
        .map(|p| track::L2_BASE + p)
        .collect();
    if report.trace.instant_tids("rollover-reset") != expected_tids {
        failures.push("rollover resets missing from some L2 bank tracks".to_string());
    }
    let issued: u64 = report.series.col("issued").map_or(0, |c| c.iter().sum());
    if issued != m.core.issued {
        failures.push(format!(
            "series issued sum {issued} != run total {}",
            m.core.issued
        ));
    }
    println!(
        "benchmark observation: {} cycles, {} rollovers, {} trace events, {} sampled rows",
        m.cycles,
        m.rollovers,
        report.trace.len(),
        report.series.rows()
    );
    if let Some(p) = &m.profile {
        print!("self-profile ({} steps):", p.steps);
        for ph in SimPhase::ALL {
            print!(" {} {:.1}%", ph.label(), 100.0 * p.share(ph));
        }
        println!();
    }

    // Pass 3: export + validate.
    let mp_trace = mp_trace.expect("mp is part of the litmus suite");
    let series_json = report.series.to_json();
    let bench_trace = report.trace.to_chrome_json();
    for (name, schema, doc) in [
        (trace_out.as_str(), schemas::TRACE, &mp_trace),
        ("benchmark trace", schemas::TRACE, &bench_trace),
        ("series", schemas::TIMESERIES, &series_json),
    ] {
        if let Err(e) = check_schema(name, schema, doc) {
            failures.push(e);
        }
    }
    if failures.is_empty() {
        let series_json_path = format!(
            "{}.json",
            series_out
                .trim_end_matches(".csv")
                .trim_end_matches(".json")
        );
        for (path, body) in [
            (&trace_out, &mp_trace),
            (&series_json_path, &series_json),
            (&series_out, &report.series.to_csv()),
        ] {
            if let Err(e) = std::fs::write(path, body) {
                eprintln!("cannot write {path}: {e}");
                return std::process::ExitCode::FAILURE;
            }
            println!("wrote {path}");
        }
    }

    if failures.is_empty() {
        println!("obs smoke: ok");
        std::process::ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("FAILED: {f}");
        }
        eprintln!("obs smoke: {} failure(s)", failures.len());
        std::process::ExitCode::FAILURE
    }
}
