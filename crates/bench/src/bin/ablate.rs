//! Ablation studies for RCC's design choices (DESIGN.md calls these
//! out): the fixed-lease sweep the paper reports as performance-neutral
//! (Section III-E), renewal on/off, predictor on/off, and the livelock
//! bump interval.

use rcc_bench::{banner, gmean_or_one, pool, Harness};
use rcc_core::ProtocolKind;
use rcc_sim::runner::simulate;
use rcc_workloads::Benchmark;

fn main() {
    let h = Harness::from_args();
    banner("Ablations", "RCC design-choice sweeps", &h);
    let benches: Vec<Benchmark> = Benchmark::inter_workgroup();
    let workloads: Vec<_> = benches.iter().map(|b| (b.name(), h.workload(*b))).collect();

    let run_with = |mutate: &dyn Fn(&mut rcc_common::GpuConfig)| -> Vec<f64> {
        let mut cfg = h.cfg.clone();
        mutate(&mut cfg);
        pool::run_indexed(workloads.iter().collect(), h.jobs, |(_, wl)| {
            simulate(ProtocolKind::RccSc, &cfg, wl, &h.opts).cycles as f64
        })
    };

    let base = run_with(&|_| {});

    // 1. Fixed-lease sweep (paper: "the performance spread among them
    //    was negligible").
    println!("\nfixed-lease sweep (cycles relative to the adaptive predictor):");
    for lease in [8u64, 32, 128, 512, 2048] {
        let cycles = run_with(&|c| c.rcc.fixed_lease = Some(lease));
        let rel: Vec<f64> = cycles.iter().zip(&base).map(|(c, b)| c / b).collect();
        println!("  lease {:>5}: gmean {:.3}", lease, gmean_or_one(&rel));
    }

    // 2. Renewal off.
    let no_renew = run_with(&|c| c.rcc.renew_enabled = false);
    let rel: Vec<f64> = no_renew.iter().zip(&base).map(|(c, b)| c / b).collect();
    println!("\nrenew disabled: gmean slowdown {:.3}", gmean_or_one(&rel));

    // 3. Predictor off (all leases at max).
    let no_pred = run_with(&|c| c.rcc.predictor_enabled = false);
    let rel: Vec<f64> = no_pred.iter().zip(&base).map(|(c, b)| c / b).collect();
    println!(
        "predictor disabled: gmean slowdown {:.3}",
        gmean_or_one(&rel)
    );

    // 4. Livelock bump interval.
    println!("\nlivelock bump interval (cycles relative to 10k):");
    for interval in [1_000u64, 100_000] {
        let cycles = run_with(&|c| c.rcc.livelock_bump_interval = interval);
        let rel: Vec<f64> = cycles.iter().zip(&base).map(|(c, b)| c / b).collect();
        println!("  every {:>6}: gmean {:.3}", interval, gmean_or_one(&rel));
    }
}
