//! Figure 6: RCC lease-expiration behaviour.
//!
//! Left: fraction of loads that find their block valid-but-expired in the
//! L1. Right: fraction of those expirations that were premature (the L2
//! copy had not changed, so a RENEW revalidated the stale data).

use rcc_bench::{banner, pct, Harness};
use rcc_core::ProtocolKind;
use rcc_workloads::Benchmark;

fn main() {
    let h = Harness::from_args();
    banner(
        "Figure 6",
        "expired loads and renewable fraction under RCC",
        &h,
    );
    println!(
        "{:6} {:>10} {:>14} {:>12} {:>12}",
        "bench", "loads", "expired", "expired%", "renewable%"
    );
    let pairs: Vec<_> = Benchmark::ALL
        .into_iter()
        .map(|b| (ProtocolKind::RccSc, b))
        .collect();
    let runs = h.run_pairs(&pairs);
    for (bench, m) in Benchmark::ALL.into_iter().zip(&runs) {
        println!(
            "{:6} {:>10} {:>14} {:>12} {:>12}",
            bench.name(),
            m.l1.loads,
            m.l1.expired_loads,
            pct(m.expired_load_fraction()),
            pct(m.renewable_fraction()),
        );
    }
    println!("----------------------------------------------------------------");
    println!("paper: inter-workgroup expiration 25-75%, mostly premature;");
    println!("       intra-workgroup expiration negligible.");
}
