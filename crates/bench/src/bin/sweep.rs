//! Sensitivity sweep: thread-level parallelism (resident warps per core)
//! vs protocol speedup.
//!
//! The paper's central TLP argument (Section II-B) is that fine-grained
//! multithreading covers most SC stalls; this sweep shows how the
//! protocol gaps shrink as warps are added — and why the headline
//! factors in EXPERIMENTS.md are sensitive to the chosen occupancy.

use rcc_bench::{banner, Harness, SEED};
use rcc_core::ProtocolKind;
use rcc_sim::runner::simulate;
use rcc_workloads::{Benchmark, Scale};

fn main() {
    let h = Harness::from_args();
    banner("Sweep", "speedup vs resident warps per core (bh + dlb)", &h);
    for bench in [Benchmark::Bh, Benchmark::Dlb] {
        println!("\n{}:", bench.name());
        println!(
            "{:>6} {:>10} {:>8} {:>8} {:>8} {:>8}",
            "warps", "MESI-cyc", "TCS", "TCW", "RCC", "IDEAL"
        );
        for warps in [4usize, 8, 16, 32, 48] {
            let scale = Scale {
                warps_per_core: warps,
                warps_per_workgroup: 4.min(warps),
                iters: h.scale.iters,
            };
            let wl = bench.generate(&h.cfg, &scale, SEED);
            let base = simulate(ProtocolKind::Mesi, &h.cfg, &wl, &h.opts);
            print!("{:>6} {:>10}", warps, base.cycles);
            for k in [
                ProtocolKind::TcStrong,
                ProtocolKind::TcWeak,
                ProtocolKind::RccSc,
                ProtocolKind::IdealSc,
            ] {
                let m = simulate(k, &h.cfg, &wl, &h.opts);
                print!(" {:>8.3}", m.speedup_over(&base));
            }
            println!();
        }
    }
}
