//! Sensitivity sweep: thread-level parallelism (resident warps per core)
//! vs protocol speedup.
//!
//! The paper's central TLP argument (Section II-B) is that fine-grained
//! multithreading covers most SC stalls; this sweep shows how the
//! protocol gaps shrink as warps are added — and why the headline
//! factors in EXPERIMENTS.md are sensitive to the chosen occupancy.

use rcc_bench::{banner, pool, Harness, SEED};
use rcc_core::ProtocolKind;
use rcc_sim::runner::simulate;
use rcc_workloads::{Benchmark, Scale};

const KINDS: [ProtocolKind; 5] = [
    ProtocolKind::Mesi,
    ProtocolKind::TcStrong,
    ProtocolKind::TcWeak,
    ProtocolKind::RccSc,
    ProtocolKind::IdealSc,
];

fn main() {
    let h = Harness::from_args();
    banner("Sweep", "speedup vs resident warps per core (bh + dlb)", &h);

    // Flatten the whole grid into one job list; the pool returns results
    // in submission order, so the printed rows are identical to a
    // sequential run regardless of --jobs.
    let warp_points = [4usize, 8, 16, 32, 48];
    let mut grid = Vec::new();
    for bench in [Benchmark::Bh, Benchmark::Dlb] {
        for warps in warp_points {
            for kind in KINDS {
                grid.push((bench, warps, kind));
            }
        }
    }
    let results = pool::run_indexed(grid, h.jobs, |(bench, warps, kind)| {
        let scale = Scale {
            warps_per_core: warps,
            warps_per_workgroup: 4.min(warps),
            iters: h.scale.iters,
        };
        let wl = bench.generate(&h.cfg, &scale, SEED);
        simulate(kind, &h.cfg, &wl, &h.opts)
    });

    let mut rows = results.chunks_exact(KINDS.len());
    for bench in [Benchmark::Bh, Benchmark::Dlb] {
        println!("\n{}:", bench.name());
        println!(
            "{:>6} {:>10} {:>8} {:>8} {:>8} {:>8}",
            "warps", "MESI-cyc", "TCS", "TCW", "RCC", "IDEAL"
        );
        for warps in warp_points {
            let row = rows.next().expect("one row per (bench, warps)");
            let base = &row[0];
            print!("{:>6} {:>10}", warps, base.cycles);
            for m in &row[1..] {
                print!(" {:>8.3}", m.speedup_over(base));
            }
            println!();
        }
    }
}
