//! Figure 9: the headline comparison, normalized to the MESI baseline.
//!
//! (a) speedup; (b) interconnect energy broken down by component;
//! (c) interconnect traffic broken down by message type.

use rcc_bench::{banner, gmean_or_one, Harness};
use rcc_common::stats::MsgClass;
use rcc_core::ProtocolKind;
use rcc_sim::RunMetrics;
use rcc_workloads::Benchmark;

const KINDS: [ProtocolKind; 4] = [
    ProtocolKind::Mesi,
    ProtocolKind::TcStrong,
    ProtocolKind::TcWeak,
    ProtocolKind::RccSc,
];

fn main() {
    let h = Harness::from_args();
    banner(
        "Figure 9",
        "speedup, interconnect energy, and traffic vs MESI",
        &h,
    );

    let pairs: Vec<_> = Benchmark::ALL
        .into_iter()
        .flat_map(|b| KINDS.map(|k| (k, b)))
        .collect();
    let mut rows = h.run_pairs(&pairs).into_iter();
    let results: Vec<(Benchmark, Vec<RunMetrics>)> = Benchmark::ALL
        .into_iter()
        .map(|b| (b, rows.by_ref().take(KINDS.len()).collect()))
        .collect();

    // (a) speedup
    println!("\n(a) speedup over MESI");
    println!(
        "{:6} {:>8} {:>8} {:>8} {:>8}",
        "bench", "MESI", "TCS", "TCW", "RCC"
    );
    let mut sp: Vec<Vec<f64>> = vec![Vec::new(); KINDS.len()];
    for (bench, runs) in &results {
        let base = &runs[0];
        print!("{:6}", bench.name());
        for (i, m) in runs.iter().enumerate() {
            let s = m.speedup_over(base);
            print!(" {:>8.3}", s);
            if bench.category().is_inter_workgroup() {
                sp[i].push(s);
            }
        }
        println!();
    }
    println!(
        "inter gmean:  TCS {:.3}  TCW {:.3}  RCC {:.3}   (paper: 1.36, 1.88, 1.76)",
        gmean_or_one(&sp[1]),
        gmean_or_one(&sp[2]),
        gmean_or_one(&sp[3]),
    );

    // (b) energy breakdown
    println!("\n(b) interconnect energy (nJ), router/link/static");
    println!(
        "{:6} {:>26} {:>26} {:>26} {:>26}",
        "bench", "MESI", "TCS", "TCW", "RCC"
    );
    let mut energy_ratio: Vec<Vec<f64>> = vec![Vec::new(); KINDS.len()];
    for (bench, runs) in &results {
        print!("{:6}", bench.name());
        for (i, m) in runs.iter().enumerate() {
            print!(
                " {:>8.0}/{:>7.0}/{:>8.0}",
                m.energy.router_pj / 1000.0,
                m.energy.link_pj / 1000.0,
                m.energy.static_pj / 1000.0
            );
            if bench.category().is_inter_workgroup() {
                energy_ratio[i].push(m.energy.total_pj() / runs[0].energy.total_pj());
            }
        }
        println!();
    }
    println!(
        "inter gmean energy vs MESI:  TCS {:.2}  TCW {:.2}  RCC {:.2}   (paper: RCC -45% vs MESI, -25% vs TCS)",
        gmean_or_one(&energy_ratio[1]),
        gmean_or_one(&energy_ratio[2]),
        gmean_or_one(&energy_ratio[3]),
    );

    // (c) traffic breakdown
    println!("\n(c) interconnect traffic (kflits) by message type");
    let classes = [
        MsgClass::LoadReq,
        MsgClass::LoadData,
        MsgClass::StoreReq,
        MsgClass::StoreAck,
        MsgClass::AtomicReq,
        MsgClass::AtomicResp,
        MsgClass::Inv,
        MsgClass::InvAck,
        MsgClass::Renew,
    ];
    print!("{:10}", "bench/prot");
    for c in classes {
        print!(" {:>8}", c.label());
    }
    println!(" {:>9}", "total");
    for (bench, runs) in &results {
        for (i, m) in runs.iter().enumerate() {
            print!("{:4}/{:5}", bench.name(), KINDS[i].label());
            for c in classes {
                print!(" {:>8.1}", m.traffic.flits(c) as f64 / 1000.0);
            }
            println!(" {:>9.1}", m.traffic.total_flits() as f64 / 1000.0);
        }
    }
}
