//! Figure 7: the RENEW mechanism and the lease predictor.
//!
//! Left: interconnect traffic with (+R) and without (-R) lease renewal.
//! Right: expired-read reduction with (+P) and without (-P) the per-block
//! lease predictor.

use rcc_bench::{banner, pct, pool, Harness};
use rcc_core::ProtocolKind;
use rcc_sim::runner::simulate;
use rcc_workloads::Benchmark;

fn main() {
    let h = Harness::from_args();
    banner(
        "Figure 7",
        "renewal traffic savings and predictor effect (RCC)",
        &h,
    );
    println!(
        "{:6} {:>12} {:>12} {:>8} | {:>10} {:>10} {:>8}",
        "bench", "flits +R", "flits -R", "saved", "expired +P", "expired -P", "saved"
    );
    // Three machine variants: baseline, renewal off, predictor off. Each
    // (benchmark, variant) cell is an independent simulation, so the
    // whole grid goes through the job pool; workloads regenerate from
    // the shared seed inside each job.
    let mut no_renew = h.cfg.clone();
    no_renew.rcc.renew_enabled = false;
    let mut no_pred = h.cfg.clone();
    no_pred.rcc.predictor_enabled = false;
    let cfgs = [&h.cfg, &no_renew, &no_pred];
    let grid: Vec<_> = Benchmark::ALL
        .into_iter()
        .flat_map(|b| (0..cfgs.len()).map(move |v| (b, v)))
        .collect();
    let runs = pool::run_indexed(grid, h.jobs, |(bench, variant)| {
        let wl = h.workload(bench);
        simulate(ProtocolKind::RccSc, cfgs[variant], &wl, &h.opts)
    });
    let (mut tr_on, mut tr_off, mut ex_on, mut ex_off) = (0u64, 0u64, 0u64, 0u64);
    for (bench, row) in Benchmark::ALL
        .into_iter()
        .zip(runs.chunks_exact(cfgs.len()))
    {
        let (base, mr, mp) = (&row[0], &row[1], &row[2]);
        let traffic_saved =
            1.0 - base.traffic.total_flits() as f64 / mr.traffic.total_flits().max(1) as f64;
        let expired_saved = 1.0 - base.l1.expired_loads as f64 / mp.l1.expired_loads.max(1) as f64;
        println!(
            "{:6} {:>12} {:>12} {:>8} | {:>10} {:>10} {:>8}",
            bench.name(),
            base.traffic.total_flits(),
            mr.traffic.total_flits(),
            pct(traffic_saved),
            base.l1.expired_loads,
            mp.l1.expired_loads,
            pct(expired_saved),
        );
        if bench.category().is_inter_workgroup() {
            tr_on += base.traffic.total_flits();
            tr_off += mr.traffic.total_flits();
            ex_on += base.l1.expired_loads;
            ex_off += mp.l1.expired_loads;
        }
    }
    println!("----------------------------------------------------------------");
    println!(
        "inter-workgroup: renew saves {} traffic (paper: ~15%); predictor cuts expired reads by {} (paper: ~31%)",
        pct(1.0 - tr_on as f64 / tr_off.max(1) as f64),
        pct(1.0 - ex_on as f64 / ex_off.max(1) as f64),
    );
}
