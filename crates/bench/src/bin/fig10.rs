//! Figure 10: weak-ordering implementations (TC-Weak and RCC-WO) vs the
//! sequentially consistent RCC-SC.

use rcc_bench::{banner, gmean_or_one, Harness};
use rcc_core::ProtocolKind;
use rcc_workloads::Benchmark;

const KINDS: [ProtocolKind; 3] = [
    ProtocolKind::RccSc,
    ProtocolKind::RccWo,
    ProtocolKind::TcWeak,
];

fn main() {
    let h = Harness::from_args();
    banner("Figure 10", "speedup of weak ordering vs RCC-SC", &h);
    println!("{:6} {:>9} {:>9} {:>9}", "bench", "RCC-SC", "RCC-WO", "TCW");
    let pairs: Vec<_> = Benchmark::ALL
        .into_iter()
        .flat_map(|b| KINDS.map(|k| (k, b)))
        .collect();
    let runs = h.run_pairs(&pairs);
    let mut wo = Vec::new();
    let mut tcw = Vec::new();
    for (bench, row) in Benchmark::ALL
        .into_iter()
        .zip(runs.chunks_exact(KINDS.len()))
    {
        let (sc, rcc_wo, tc_w) = (&row[0], &row[1], &row[2]);
        let s_wo = rcc_wo.speedup_over(sc);
        let s_tcw = tc_w.speedup_over(sc);
        println!(
            "{:6} {:>9.3} {:>9.3} {:>9.3}",
            bench.name(),
            1.0,
            s_wo,
            s_tcw
        );
        if bench.category().is_inter_workgroup() {
            wo.push(s_wo);
            tcw.push(s_tcw);
        }
    }
    println!("----------------------------------------------------------------");
    println!(
        "inter gmean: RCC-WO {:.3}, TCW {:.3} vs RCC-SC=1  (paper: both ~1.07, neck-and-neck)",
        gmean_or_one(&wo),
        gmean_or_one(&tcw),
    );
}
