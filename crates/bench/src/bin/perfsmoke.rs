//! Engine performance smoke test: measures what the fast-forward engine
//! and the job pool buy over the naive sequential engine, and writes the
//! numbers to `BENCH_sim.json` (consumed by the CI perf-smoke job).
//!
//! Two passes over the same (protocol × benchmark) grid:
//!
//! 1. **baseline** — fast-forward off, one job at a time (the engine as
//!    it was before the idle-cycle skipper existed);
//! 2. **optimized** — fast-forward on, grid spread over the job pool
//!    (`--jobs N`; defaults to one worker per core here, unlike the
//!    figure binaries, because the point is to measure the speedup).
//!
//! Both passes must agree on every simulated metric — the engine
//! invariant is that fast-forwarding never changes results, only
//! wall-clock — so the binary exits non-zero on any divergence.
//!
//! Both passes run with the simulator self-profiler attached (same
//! overhead on both sides of the comparison); the merged per-phase
//! wall-clock attribution of the optimized pass lands in the report's
//! `self_profile` section, so a perf PR can see *where* its time moved.
//! The JSON is validated against `schemas/bench_sim.schema.json` before
//! it is written.

use rcc_bench::report::{check_schema, schemas, ProtocolRow, SchedSummary, SimReport};
use rcc_bench::{banner, pool, Harness};
use rcc_core::ProtocolKind;
use rcc_obs::{SimPhase, SimProfile};
use rcc_sim::runner::{simulate, SimOptions};
use rcc_sim::RunMetrics;
use rcc_workloads::{Benchmark, Workload};
use std::time::Instant;

const KINDS: [ProtocolKind; 5] = [
    ProtocolKind::Mesi,
    ProtocolKind::TcStrong,
    ProtocolKind::TcWeak,
    ProtocolKind::RccSc,
    ProtocolKind::IdealSc,
];

// Workloads are generated once, outside the timed region: generation is
// identical in both passes and is not what this smoke test measures.
fn run_grid(
    h: &Harness,
    workloads: &[Workload],
    opts: &SimOptions,
    jobs: usize,
) -> (Vec<(RunMetrics, f64)>, f64) {
    let grid: Vec<_> = KINDS
        .into_iter()
        .flat_map(|k| workloads.iter().map(move |wl| (k, wl)))
        .collect();
    let start = Instant::now();
    let results = pool::run_indexed(grid, jobs, |(kind, wl)| {
        // Per-run wall time, measured inside the job so the per-protocol
        // rates below stay meaningful under the pool.
        let t = Instant::now();
        let m = simulate(kind, &h.cfg, wl, opts);
        (m, t.elapsed().as_secs_f64())
    });
    (results, start.elapsed().as_secs_f64())
}

fn main() -> std::process::ExitCode {
    let h = Harness::from_args();
    // Default to one worker per core: this binary exists to measure the
    // parallel harness, not to be conservative.
    let jobs = if h.jobs > 1 {
        h.jobs
    } else {
        pool::resolve_jobs(0)
    };
    banner(
        "Perf smoke",
        "engine wall-clock: baseline vs FF + job pool",
        &h,
    );

    let workloads: Vec<Workload> = Benchmark::ALL.map(|b| h.workload(b)).to_vec();
    let mut base_opts = h.opts.clone();
    base_opts.fast_forward = false;
    base_opts.profile = true;
    let mut opt_opts = h.opts.clone();
    opt_opts.profile = true;
    let (baseline, baseline_s) = run_grid(&h, &workloads, &base_opts, 1);
    let (optimized, optimized_s) = run_grid(&h, &workloads, &opt_opts, jobs);

    let mut diverged = 0;
    for ((b, _), (o, _)) in baseline.iter().zip(&optimized) {
        if !b.same_simulated_results(o) {
            eprintln!(
                "DIVERGENCE: {} on {} differs between baseline and fast-forward",
                b.kind, b.workload
            );
            diverged += 1;
        }
    }

    let speedup = baseline_s / optimized_s.max(1e-9);
    println!(
        "\n{:8} {:>14} {:>14} {:>12} {:>10}",
        "protocol", "sim cycles", "sim cyc/s", "skipped", "skip%"
    );
    let mut rows = Vec::new();
    for kind in KINDS {
        let runs: Vec<_> = optimized.iter().filter(|(m, _)| m.kind == kind).collect();
        let cycles: u64 = runs.iter().map(|(m, _)| m.cycles).sum();
        let skipped: u64 = runs.iter().map(|(m, _)| m.skipped_cycles).sum();
        let skip_ratio = skipped as f64 / cycles.max(1) as f64;
        let wall: f64 = runs.iter().map(|(_, s)| s).sum();
        let rate = cycles as f64 / wall.max(1e-9);
        println!(
            "{:8} {:>14} {:>14.0} {:>12} {:>9.1}%",
            kind.label(),
            cycles,
            rate,
            skipped,
            100.0 * skip_ratio
        );
        rows.push(ProtocolRow {
            protocol: kind.label().to_string(),
            sim_cycles: cycles,
            sim_cycles_per_sec: rate,
            skipped_cycles: skipped,
            skip_ratio,
        });
    }

    // Calendar-queue telemetry, merged over every run of the optimized
    // pass: how much event traffic the scheduler carried, how deep the
    // queue got, and how far the exact wakes sat from the conservative
    // min-scan hints.
    let posted: u64 = optimized.iter().map(|(m, _)| m.sched.events_posted).sum();
    let cancelled: u64 = optimized
        .iter()
        .map(|(m, _)| m.sched.events_cancelled)
        .sum();
    let nruns = optimized.len().max(1) as f64;
    let p50_mean = optimized
        .iter()
        .map(|(m, _)| m.sched.queue_depth_p50)
        .sum::<u64>() as f64
        / nruns;
    let depth_max = optimized
        .iter()
        .map(|(m, _)| m.sched.queue_depth_max)
        .max()
        .unwrap_or(0);
    let slack_mean = optimized
        .iter()
        .map(|(m, _)| m.sched.wake_slack_mean)
        .sum::<f64>()
        / nruns;
    let scheduler = SchedSummary {
        events_posted: posted,
        events_cancelled: cancelled,
        cancel_ratio: cancelled as f64 / posted.max(1) as f64,
        queue_depth_p50_mean: p50_mean,
        queue_depth_max: depth_max,
        wake_slack_mean: slack_mean,
    };
    println!(
        "\nscheduler: {posted} events posted, {cancelled} cancelled ({:.1}%), \
         queue depth p50 {p50_mean:.1} / max {depth_max}, wake slack {slack_mean:.2} cyc",
        100.0 * scheduler.cancel_ratio
    );

    // Where the optimized pass's wall-clock actually went, merged over
    // every run.
    let mut profile = SimProfile::new();
    for (m, _) in &optimized {
        if let Some(p) = &m.profile {
            profile.merge(p);
        }
    }
    print!("\nself-profile ({} steps):", profile.steps);
    for ph in SimPhase::ALL {
        print!(" {} {:.1}%", ph.label(), 100.0 * profile.share(ph));
    }
    println!();

    println!(
        "\nbaseline (no FF, sequential): {baseline_s:.2}s   optimized (FF, {jobs} jobs): {optimized_s:.2}s   speedup {speedup:.2}x"
    );
    println!(
        "determinism: {}",
        if diverged == 0 { "ok" } else { "FAILED" }
    );

    let report = SimReport {
        baseline_wall_s: baseline_s,
        optimized_wall_s: optimized_s,
        speedup,
        jobs,
        runs: optimized.len(),
        deterministic: diverged == 0,
        protocols: rows,
        scheduler,
        self_profile: profile,
    };
    let json = report.to_json();
    if let Err(e) = check_schema("BENCH_sim.json", schemas::BENCH_SIM, &json) {
        eprintln!("{e}");
        return std::process::ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write("BENCH_sim.json", &json) {
        eprintln!("cannot write BENCH_sim.json: {e}");
        return std::process::ExitCode::FAILURE;
    }
    println!("wrote BENCH_sim.json");
    if diverged > 0 {
        return std::process::ExitCode::FAILURE;
    }
    std::process::ExitCode::SUCCESS
}
