//! Chaos sweep: prove SC survives arbitrary timing, and that the
//! sanitizer catches a protocol that does not.
//!
//! Three passes, all deterministic in the chaos seed, writing
//! `BENCH_chaos.json`:
//!
//! 1. **Litmus sweep** — every sound chaos profile × every seed ×
//!    {RCC-SC, MESI, TC-Weak} over the full litmus suite, with the
//!    runtime SC sanitizer attached to every run. For the SC protocols a
//!    forbidden outcome *or* a failed sanitizer verdict is a violation;
//!    for TC-Weak only the fenced/atomic/coherence tests must hold
//!    (unfenced weak outcomes are its documented behaviour).
//! 2. **Canary** — the deliberately unsound `canary` profile (a lost
//!    lease-extension: leases truncate to one cycle but the L1 keeps
//!    serving the expired lines) under RCC-SC. The sanitizer must flag
//!    it — on the very first litmus run for at least one seed — or the
//!    harness cannot be trusted to catch real protocol holes.
//! 3. **Benchmark smoke** — each sound profile × protocol over a few
//!    quick benchmarks with the sanitizer on (`simulate` aborts on a
//!    violated verdict, so completing the grid *is* the check).
//!
//! Flags: `--seeds N` (default 64; `--quick` defaults to 8), `--jobs N`,
//! `--out PATH` (default `BENCH_chaos.json`).

use rcc_bench::report::{
    check_schema, schemas, BenchRow, CanarySummary, ChaosReport, FailedJobRow, ViolationRow,
};
use rcc_bench::{parse_jobs, pool};
use rcc_chaos::{ChaosProfile, ChaosSpec};
use rcc_common::GpuConfig;
use rcc_core::ProtocolKind;
use rcc_sim::litmus::{run_litmus_chaos, LitmusOutcome};
use rcc_sim::runner::{try_simulate, SimOptions};
use rcc_workloads::{litmus, Benchmark, Scale};

const KINDS: [ProtocolKind; 3] = [
    ProtocolKind::RccSc,
    ProtocolKind::Mesi,
    ProtocolKind::TcWeak,
];

/// The litmus tests whose forbidden outcome even TC-Weak must never
/// show: fences, release-style atomics, and per-location coherence.
const TCW_MUST_HOLD: [&str; 4] = ["mp+fence", "sb+fence", "mp+atomic", "corr"];

fn violation(
    profile: &str,
    seed: u64,
    kind: ProtocolKind,
    litmus: &str,
    out: &LitmusOutcome,
) -> ViolationRow {
    ViolationRow {
        profile: profile.to_string(),
        seed,
        protocol: kind.label().to_string(),
        litmus: litmus.to_string(),
        values: out.values.clone(),
        sanitizer_sc: out.sanitizer_sc,
    }
}

fn is_violation(kind: ProtocolKind, name: &'static str, out: &LitmusOutcome) -> bool {
    if kind.supports_sc() {
        out.forbidden || !out.sanitizer_sc
    } else {
        out.forbidden && TCW_MUST_HOLD.contains(&name)
    }
}

fn main() -> std::process::ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let seeds = args
        .iter()
        .position(|a| a == "--seeds")
        .and_then(|i| args.get(i + 1))
        .and_then(|n| n.parse::<u64>().ok())
        .unwrap_or(if quick { 8 } else { 64 });
    let jobs = parse_jobs(&args);
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_chaos.json".to_string());

    // Correctness sweep, not a performance experiment: the small machine
    // exercises every protocol path and keeps the grid tractable.
    let cfg = GpuConfig::small();
    let profiles = ChaosProfile::sound();
    println!(
        "chaos sweep: {} seeds x {} profiles x {} protocols over {} litmus tests ({} jobs)",
        seeds,
        profiles.len(),
        KINDS.len(),
        litmus::all(cfg.num_cores, 0).len(),
        jobs,
    );

    // Pass 1: litmus sweep over the sound profiles. One job = one
    // (profile, seed, protocol) triple running the whole suite. Jobs run
    // guarded: a deadlocked or panicking (profile, seed, protocol) cell
    // becomes a failed-job row in the report, and the rest of the sweep
    // still completes.
    let policy = pool::GuardPolicy::default();
    let mut failed_jobs: Vec<FailedJobRow> = Vec::new();
    let grid: Vec<(&'static str, u64, ProtocolKind)> = profiles
        .iter()
        .flat_map(|p| (0..seeds).flat_map(move |s| KINDS.into_iter().map(move |k| (p.name, s, k))))
        .collect();
    let sweep_cfg = cfg.clone();
    let (results, sweep_failures) =
        pool::run_guarded(grid, jobs, policy, move |(profile, seed, kind)| {
            let spec = ChaosSpec::new(seed, ChaosProfile::by_name(profile).expect("preset name"));
            let mut violations = Vec::new();
            let mut runs = 0u64;
            for lit in litmus::all(sweep_cfg.num_cores, seed) {
                let out = run_litmus_chaos(kind, &sweep_cfg, &lit, Some(&spec))
                    .unwrap_or_else(|e| panic!("{e}"));
                runs += 1;
                if is_violation(kind, lit.name, &out) {
                    violations.push(violation(profile, seed, kind, lit.name, &out));
                }
            }
            (runs, violations)
        });
    failed_jobs.extend(sweep_failures.iter().map(|f| FailedJobRow {
        pass: "litmus".to_string(),
        index: f.index as u64,
        attempts: u64::from(f.attempts),
        reason: f.reason.clone(),
    }));
    let litmus_runs: u64 = results.iter().flatten().map(|(r, _)| r).sum();
    let violations: Vec<ViolationRow> =
        results.into_iter().flatten().flat_map(|(_, v)| v).collect();
    for v in &violations {
        eprintln!(
            "VIOLATION: {} seed={} {} on {}: values {:?}, sanitizer_sc={}",
            v.profile, v.seed, v.protocol, v.litmus, v.values, v.sanitizer_sc
        );
    }
    println!(
        "litmus sweep: {} runs, {} violations",
        litmus_runs,
        violations.len()
    );

    // Pass 2: the canary must be caught. Not every seed's timing lets
    // the planted bug *bite* (if the reader never observes the racing
    // flag, its stale reads stay SC-explainable — correctly unflagged),
    // so the contract is: (a) whenever a run shows a forbidden outcome
    // the sanitizer must flag it, and (b) at least one seed is flagged
    // on its very first litmus run.
    let canary_seeds: Vec<u64> = (0..seeds.min(8)).collect();
    let canary_cfg = cfg.clone();
    let (canary_results, canary_failures) =
        pool::run_guarded(canary_seeds.clone(), jobs, policy, move |seed| {
            let spec = ChaosSpec::new(seed, ChaosProfile::canary());
            let mut first_caught = None;
            let mut bitten_but_missed = 0u64;
            for (i, lit) in litmus::all(canary_cfg.num_cores, seed).iter().enumerate() {
                let out = run_litmus_chaos(ProtocolKind::RccSc, &canary_cfg, lit, Some(&spec))
                    .unwrap_or_else(|e| panic!("{e}"));
                if !out.sanitizer_sc && first_caught.is_none() {
                    first_caught = Some(i as u64 + 1);
                }
                if out.forbidden && out.sanitizer_sc {
                    bitten_but_missed += 1;
                }
            }
            (first_caught, bitten_but_missed)
        });
    failed_jobs.extend(canary_failures.iter().map(|f| FailedJobRow {
        pass: "canary".to_string(),
        index: f.index as u64,
        attempts: u64::from(f.attempts),
        reason: f.reason.clone(),
    }));
    let canary_caught = canary_results
        .iter()
        .flatten()
        .filter(|(c, _)| c.is_some())
        .count();
    let min_runs = canary_results
        .iter()
        .flatten()
        .filter_map(|(c, _)| *c)
        .min();
    let missed: u64 = canary_results.iter().flatten().map(|(_, m)| m).sum();
    let canary_ok = canary_caught >= 1 && min_runs == Some(1) && missed == 0;
    println!(
        "canary: {}/{} seeds caught, earliest after {:?} run(s), {} forbidden outcomes unflagged",
        canary_caught,
        canary_seeds.len(),
        min_runs,
        missed,
    );

    // Pass 3: quick benchmarks under chaos with the sanitizer attached.
    // `try_simulate` fails if an SC-capable protocol fails the sanitizer
    // under a sound profile, so a clean grid *is* the check; a failed
    // cell is reported and the grid still completes.
    let benches = if quick {
        vec![Benchmark::Hsp, Benchmark::Dlb]
    } else {
        vec![Benchmark::Hsp, Benchmark::Dlb, Benchmark::Cl]
    };
    let mut bench_grid: Vec<(&'static str, ProtocolKind, Benchmark)> = Vec::new();
    for p in &profiles {
        for k in KINDS {
            for &b in &benches {
                bench_grid.push((p.name, k, b));
            }
        }
    }
    let bench_cfg = cfg.clone();
    let (bench_results, bench_failures) =
        pool::run_guarded(bench_grid, jobs, policy, move |(profile, kind, bench)| {
            let mut opts = SimOptions::fast();
            opts.sanitize = true;
            opts.chaos = Some(ChaosSpec::new(
                1,
                ChaosProfile::by_name(profile).expect("preset name"),
            ));
            let wl = bench.generate(&bench_cfg, &Scale::quick(), rcc_bench::SEED);
            let m = try_simulate(kind, &bench_cfg, &wl, &opts).unwrap_or_else(|e| panic!("{e}"));
            BenchRow {
                profile: profile.to_string(),
                protocol: kind.label().to_string(),
                benchmark: format!("{bench:?}"),
                cycles: m.cycles,
                chaos_events: m.chaos_events,
                sanitizer_sc: m.sanitizer_sc.unwrap_or(false),
            }
        });
    failed_jobs.extend(bench_failures.iter().map(|f| FailedJobRow {
        pass: "bench".to_string(),
        index: f.index as u64,
        attempts: u64::from(f.attempts),
        reason: f.reason.clone(),
    }));
    let bench_rows: Vec<BenchRow> = bench_results.into_iter().flatten().collect();
    println!("benchmark smoke: {} runs, all sanitized", bench_rows.len());

    let report = ChaosReport {
        seeds,
        profiles: profiles.iter().map(|p| p.name.to_string()).collect(),
        protocols: KINDS.map(|k| k.label().to_string()).to_vec(),
        litmus_runs,
        violations,
        canary: CanarySummary {
            seeds: canary_seeds.len() as u64,
            caught: canary_caught as u64,
            earliest_caught_after_runs: min_runs,
            forbidden_unflagged: missed,
        },
        benchmarks: bench_rows,
        failed_jobs,
    };
    let json = report.to_json();
    if let Err(e) = check_schema(&out_path, schemas::BENCH_CHAOS, &json) {
        eprintln!("{e}");
        return std::process::ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        return std::process::ExitCode::FAILURE;
    }
    println!("wrote {out_path}");

    if !report.violations.is_empty() || !canary_ok || !report.failed_jobs.is_empty() {
        for f in &report.failed_jobs {
            eprintln!(
                "FAILED JOB: pass={} index={} attempts={}: {}",
                f.pass, f.index, f.attempts, f.reason
            );
        }
        eprintln!(
            "chaos sweep FAILED: {} violations, {} failed jobs, canary ok: {canary_ok}",
            report.violations.len(),
            report.failed_jobs.len(),
        );
        return std::process::ExitCode::FAILURE;
    }
    println!("chaos sweep: ok");
    std::process::ExitCode::SUCCESS
}
