//! Criterion benchmarks for the simulation engine itself.
//!
//! Full-run throughput with the calendar-queue scheduler (fast-forward)
//! on vs off, across the three regimes that stress it differently:
//! idle-heavy (long quiet stretches the queue jumps over),
//! contention-heavy (near-every-cycle activity, where scheduling must
//! cost ~nothing), and rollover-heavy (a tiny timestamp threshold keeps
//! the RCC rollover FSM — a global, every-component event source —
//! firing). Plus a microbench of the queue's own post/cancel/pop ops.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rcc_common::GpuConfig;
use rcc_core::ProtocolKind;
use rcc_sim::runner::{simulate, SimOptions};
use rcc_sim::EventQueue;
use rcc_workloads::{Benchmark, Scale};

fn engine_fast_forward(c: &mut Criterion) {
    let scale = Scale::quick();
    let mut rollover_cfg = GpuConfig::small();
    // Hardware rolls a 32-bit timestamp over ~never; a tiny threshold
    // makes the global flush FSM a first-class event source.
    rollover_cfg.rcc.rollover_threshold = 4096;
    // bh's barrier phases leave the machine idle between bursts;
    // hsp keeps every core streaming so almost no cycle is skippable.
    for (label, bench, cfg) in [
        ("idle-heavy/bh", Benchmark::Bh, GpuConfig::small()),
        ("contention/hsp", Benchmark::Hsp, GpuConfig::small()),
        ("rollover/hsp", Benchmark::Hsp, rollover_cfg),
    ] {
        let wl = bench.generate(&cfg, &scale, 7);
        let mut group = c.benchmark_group(format!("engine/{label}"));
        group.sample_size(10);
        for (name, ff) in [("ff-on", true), ("ff-off", false)] {
            let mut opts = SimOptions::fast();
            opts.fast_forward = ff;
            group.bench_with_input(BenchmarkId::from_parameter(name), &opts, |b, opts| {
                b.iter(|| simulate(ProtocolKind::RccSc, &cfg, &wl, opts).cycles)
            });
        }
        group.finish();
    }
}

// The queue's three hot operations, at a realistic component count
// (gtx480: 15 cores + 15 L1s + 2 NoC directions + banks/pipes/DRAM
// + rollover ≈ 64). A set-arm over an armed slot is the cancel path
// (supersede + repost); `next_wake` pops through the lazy heap.
fn event_queue_ops(c: &mut Criterion) {
    const COMPS: usize = 64;
    let mut group = c.benchmark_group("sched/queue");
    // Deterministic wake pattern; an LCG stands in for arrival jitter.
    let lcg = |s: &mut u64| {
        *s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *s >> 33
    };
    group.bench_function("post", |b| {
        let mut q = EventQueue::new(COMPS);
        let mut seed = 7u64;
        let mut now = 0u64;
        b.iter(|| {
            now += 1;
            for comp in 0..COMPS {
                q.arm_min(comp, now + 1 + lcg(&mut seed) % 512);
            }
        });
    });
    group.bench_function("cancel", |b| {
        let mut q = EventQueue::new(COMPS);
        let mut seed = 7u64;
        let mut now = 0u64;
        b.iter(|| {
            now += 1;
            for comp in 0..COMPS {
                q.arm_at(comp, now + 1 + lcg(&mut seed) % 512);
                q.arm_at(comp, now + 1 + lcg(&mut seed) % 512);
            }
        });
    });
    group.bench_function("pop", |b| {
        let mut q = EventQueue::new(COMPS);
        let mut seed = 7u64;
        b.iter(|| {
            for comp in 0..COMPS {
                q.arm_at(comp, 1 + lcg(&mut seed) % 512);
            }
            let mut sum = 0u64;
            while let Some(w) = q.next_wake() {
                sum += w;
                // Retire every component due at the popped horizon so
                // the drain terminates.
                for comp in 0..COMPS {
                    if q.is_due(comp, w) {
                        q.disarm(comp);
                    }
                }
            }
            sum
        });
    });
    group.finish();
}

criterion_group!(benches, engine_fast_forward, event_queue_ops);
criterion_main!(benches);
