//! Criterion benchmarks for the simulation engine itself: full-run
//! throughput with the idle-cycle fast-forwarder on vs off, on an
//! idle-heavy workload (inter-workgroup synchronization leaves long
//! quiet stretches the engine can skip) and a contention-heavy one
//! (near-every-cycle activity, where fast-forward must cost ~nothing).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rcc_common::GpuConfig;
use rcc_core::ProtocolKind;
use rcc_sim::runner::{simulate, SimOptions};
use rcc_workloads::{Benchmark, Scale};

fn engine_fast_forward(c: &mut Criterion) {
    let cfg = GpuConfig::small();
    let scale = Scale::quick();
    // bh's barrier phases leave the machine idle between bursts;
    // hsp keeps every core streaming so almost no cycle is skippable.
    for (label, bench) in [
        ("idle-heavy/bh", Benchmark::Bh),
        ("contention/hsp", Benchmark::Hsp),
    ] {
        let wl = bench.generate(&cfg, &scale, 7);
        let mut group = c.benchmark_group(format!("engine/{label}"));
        group.sample_size(10);
        for (name, ff) in [("ff-on", true), ("ff-off", false)] {
            let mut opts = SimOptions::fast();
            opts.fast_forward = ff;
            group.bench_with_input(BenchmarkId::from_parameter(name), &opts, |b, opts| {
                b.iter(|| simulate(ProtocolKind::RccSc, &cfg, &wl, opts).cycles)
            });
        }
        group.finish();
    }
}

criterion_group!(benches, engine_fast_forward);
criterion_main!(benches);
