//! Criterion micro/meso benchmarks over the protocols: full-system
//! throughput per protocol on one inter- and one intra-workgroup
//! workload, on the small machine (so `cargo bench` stays in seconds).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rcc_common::GpuConfig;
use rcc_core::ProtocolKind;
use rcc_sim::runner::{simulate, SimOptions};
use rcc_workloads::{Benchmark, Scale};

fn protocol_shootout(c: &mut Criterion) {
    let cfg = GpuConfig::small();
    let scale = Scale::quick();
    let opts = SimOptions::fast();
    for bench in [Benchmark::Dlb, Benchmark::Hsp] {
        let wl = bench.generate(&cfg, &scale, 7);
        let mut group = c.benchmark_group(format!("simulate/{}", bench.name()));
        group.sample_size(10);
        for kind in [
            ProtocolKind::Mesi,
            ProtocolKind::TcStrong,
            ProtocolKind::TcWeak,
            ProtocolKind::RccSc,
            ProtocolKind::RccWo,
        ] {
            group.bench_with_input(
                BenchmarkId::from_parameter(kind.label()),
                &kind,
                |b, &kind| b.iter(|| simulate(kind, &cfg, &wl, &opts).cycles),
            );
        }
        group.finish();
    }
}

fn sc_checking_overhead(c: &mut Criterion) {
    let cfg = GpuConfig::small();
    let wl = Benchmark::Vpr.generate(&cfg, &Scale::quick(), 7);
    let mut group = c.benchmark_group("scoreboard");
    group.sample_size(10);
    group.bench_function("vpr/rcc/unchecked", |b| {
        b.iter(|| simulate(ProtocolKind::RccSc, &cfg, &wl, &SimOptions::fast()).cycles)
    });
    group.bench_function("vpr/rcc/checked", |b| {
        b.iter(|| simulate(ProtocolKind::RccSc, &cfg, &wl, &SimOptions::checked()).cycles)
    });
    group.finish();
}

criterion_group!(benches, protocol_shootout, sc_checking_overhead);
criterion_main!(benches);
