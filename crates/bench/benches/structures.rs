//! Criterion microbenchmarks on the substrate data structures.

use criterion::{criterion_group, criterion_main, Criterion};
use rcc_common::addr::LineAddr;
use rcc_common::config::GpuConfig;
use rcc_common::time::Cycle;
use rcc_common::Pcg32;

fn tag_array(c: &mut Criterion) {
    use rcc_mem::{LineData, TagArray};
    let mut group = c.benchmark_group("tag_array");
    group.bench_function("fill+probe 64-set/8-way", |b| {
        b.iter(|| {
            let mut tags: TagArray<u64> = TagArray::new(64, 8);
            let mut rng = Pcg32::seeded(1);
            for _ in 0..4096 {
                let line = LineAddr(rng.below(2048));
                if tags.probe(line).is_none() {
                    let _ = tags.fill(line, 0, LineData::zeroed(), false, |_, _| true);
                }
            }
            tags.len()
        })
    });
    group.finish();
}

fn dram_channel(c: &mut Criterion) {
    use rcc_dram::DramChannel;
    let cfg = GpuConfig::gtx480();
    let mut group = c.benchmark_group("dram");
    group.bench_function("fr-fcfs 1k requests", |b| {
        b.iter(|| {
            let mut ch = DramChannel::new(&cfg.dram);
            let mut rng = Pcg32::seeded(2);
            let mut done = 0;
            for i in 0..1000u64 {
                ch.enqueue(Cycle(i * 3), LineAddr(rng.below(1 << 16)), rng.chance(0.3));
            }
            let mut t = 0;
            while ch.pending() > 0 {
                t += 1;
                done += ch.tick(Cycle(3000 + t)).len();
            }
            done
        })
    });
    group.finish();
}

fn network(c: &mut Criterion) {
    use rcc_noc::Network;
    let cfg = GpuConfig::gtx480();
    let mut group = c.benchmark_group("noc");
    group.bench_function("xbar 10k packets", |b| {
        b.iter(|| {
            let mut net: Network<u64> = Network::new(&cfg.noc, 16, 8, 2);
            let mut rng = Pcg32::seeded(3);
            let mut delivered = 0;
            for i in 0..10_000u64 {
                net.inject(
                    Cycle(i),
                    rng.below(16) as usize,
                    rng.below(8) as usize,
                    0,
                    if rng.chance(0.3) { 34 } else { 2 },
                    i,
                );
                delivered += net.deliver(Cycle(i)).len();
            }
            delivered += net.deliver(Cycle(10_000_000)).len();
            delivered
        })
    });
    group.finish();
}

fn rcc_protocol_fsm(c: &mut Criterion) {
    use rcc_common::ids::{CoreId, PartitionId, WarpId};
    use rcc_core::msg::{Access, AccessKind};
    use rcc_core::protocol::{L1Cache, L1Outbox, L2Bank, L2Outbox, Protocol};
    use rcc_core::rcc::RccProtocol;
    use rcc_mem::LineData;
    let cfg = GpuConfig::small();
    let protocol = RccProtocol::sequential(&cfg);
    let mut group = c.benchmark_group("rcc_fsm");
    group.bench_function("l1+l2 10k ops", |b| {
        b.iter(|| {
            let mut l1 = protocol.make_l1(CoreId(0), &cfg);
            let mut l2 = protocol.make_l2(PartitionId(0), &cfg);
            let mut rng = Pcg32::seeded(4);
            let mut completions = 0;
            for i in 0..10_000u64 {
                let cycle = Cycle(i);
                let addr = LineAddr(rng.below(64)).word(0);
                let kind = if rng.chance(0.7) {
                    AccessKind::Load
                } else {
                    AccessKind::Store { value: i }
                };
                let mut out = L1Outbox::new();
                let _ = l1.access(
                    cycle,
                    Access {
                        warp: WarpId((i % 8) as usize),
                        addr,
                        kind,
                    },
                    &mut out,
                );
                for req in out.to_l2 {
                    let mut l2out = L2Outbox::new();
                    let _ = l2.handle_req(cycle, req, &mut l2out);
                    for line in l2out.dram_fetch {
                        let mut fill = L2Outbox::new();
                        l2.handle_dram(cycle, line, LineData::zeroed(), &mut fill);
                        for resp in fill.to_l1 {
                            let mut o = L1Outbox::new();
                            l1.handle_resp(cycle, resp, &mut o);
                            completions += o.completions.len();
                        }
                    }
                    for resp in l2out.to_l1 {
                        let mut o = L1Outbox::new();
                        l1.handle_resp(cycle, resp, &mut o);
                        completions += o.completions.len();
                    }
                }
            }
            completions
        })
    });
    group.finish();
}

criterion_group!(benches, tag_array, dram_channel, network, rcc_protocol_fsm);
criterion_main!(benches);
