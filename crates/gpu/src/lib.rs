#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! GPU core (SM) model: warp contexts, a loose round-robin scheduler,
//! and a load-store unit that enforces the consistency model.
//!
//! The model follows the paper's methodology (Section IV-A): for
//! sequentially consistent configurations the core "executes global
//! memory instructions sequentially" — at most one outstanding global
//! access per warp, the *naïve SC* baseline of Singh et al. [MICRO 2015]
//! — while weakly ordered configurations let a warp's accesses overlap
//! and stall only at FENCEs. Fine-grained multithreading across the 48
//! warps per core is what hides memory latency either way.
//!
//! The core also implements the synchronization idioms the benchmarks
//! need ([ops](op::MemOp)): spin locks built from CAS retry loops with
//! backoff, inter-workgroup "fast barriers" built from atomic arrivals
//! plus atomic polling [Xiao & Feng, IPDPS 2010], and intra-workgroup
//! barrier waits that are free of memory traffic.
//!
//! Stall accounting mirrors the paper's Figs. 1 and 8: every cycle a
//! warp's next memory operation is ready but blocked by the ordering
//! rules counts as an SC stall, attributed to the kind of the operation
//! being waited on (prior store/atomic vs prior load), and each issued
//! operation records whether it ever stalled and for how long.

pub mod core;
pub mod op;
pub mod stats;

pub use self::core::{
    Core, CoreOutput, CoreParams, FencePolicy, OutstandingAccess, SchedPolicy, WarpState,
};
pub use op::{MemOp, WarpProgram};
pub use stats::{CoreStats, PrevOpKind};
