//! The SM core: warp contexts, loose round-robin issue, consistency
//! enforcement, and synchronization micro-sequences.

use crate::op::{MemOp, WarpProgram};
use crate::stats::{CoreStats, PrevOpKind};
use rcc_common::addr::WordAddr;
use rcc_common::ids::{CoreId, WarpId};
use rcc_common::time::Cycle;
use rcc_core::msg::{Access, AccessKind, AccessOutcome, AtomicOp, Completion, CompletionKind};
use std::collections::VecDeque;

/// How FENCE instructions retire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FencePolicy {
    /// SC configurations: the hardware already orders everything; fences
    /// are no-ops left in for the compiler's benefit (Section IV-B).
    Free,
    /// Drain the warp's outstanding accesses (RCC-WO; the simulator also
    /// joins the core's read/write views on retire).
    Drain,
    /// Drain and additionally wait until the warp's accumulated global
    /// write completion time has passed (TC-Weak).
    DrainGwct,
}

/// Warp scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// Loose round-robin (Table III's configuration): rotate a pointer
    /// over the warps, issuing from the first ready one.
    #[default]
    LooseRoundRobin,
    /// Greedy-then-oldest: keep issuing from the same warp until it
    /// stalls, then fall back to the lowest-numbered ready warp. Favours
    /// intra-warp locality over fairness.
    GreedyThenOldest,
}

/// Core configuration.
#[derive(Debug, Clone)]
pub struct CoreParams {
    /// Warp scheduling policy.
    pub scheduler: SchedPolicy,
    /// Warp contexts (48 in Table III).
    pub warps_per_core: usize,
    /// Warps per workgroup (for intra-workgroup barriers).
    pub warps_per_workgroup: usize,
    /// Whether warps may overlap their global accesses.
    pub weak_ordering: bool,
    /// Fence retirement rule.
    pub fence_policy: FencePolicy,
    /// Outstanding-access limit per warp under weak ordering.
    pub max_outstanding: usize,
    /// Cycles between barrier poll attempts.
    pub poll_interval: u64,
    /// Base backoff after a failed lock attempt.
    pub lock_backoff: u64,
}

impl CoreParams {
    /// Sequentially consistent core: one outstanding global access per
    /// warp (the naïve-SC rule).
    pub fn sequential(warps_per_core: usize, warps_per_workgroup: usize) -> Self {
        CoreParams {
            scheduler: SchedPolicy::default(),
            warps_per_core,
            warps_per_workgroup,
            weak_ordering: false,
            fence_policy: FencePolicy::Free,
            max_outstanding: 1,
            poll_interval: 100,
            lock_backoff: 40,
        }
    }

    /// Weakly ordered core with the given fence policy.
    pub fn weakly_ordered(
        warps_per_core: usize,
        warps_per_workgroup: usize,
        fence_policy: FencePolicy,
    ) -> Self {
        CoreParams {
            weak_ordering: true,
            fence_policy,
            max_outstanding: 8,
            ..CoreParams::sequential(warps_per_core, warps_per_workgroup)
        }
    }
}

/// Classification of an outstanding access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpClass {
    Load,
    Store,
    Atomic,
}

impl OpClass {
    fn prev_kind(self) -> PrevOpKind {
        match self {
            OpClass::Load => PrevOpKind::Load,
            OpClass::Store => PrevOpKind::Store,
            OpClass::Atomic => PrevOpKind::Atomic,
        }
    }
}

/// Why an access was issued (what to do with its completion).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Purpose {
    Plain,
    LockAttempt,
    Unlock,
    BarrierArrive { members: u64 },
    BarrierPoll { members: u64 },
}

#[derive(Debug, Clone, Copy)]
struct Outstanding {
    addr: WordAddr,
    class: OpClass,
    purpose: Purpose,
    issued: Cycle,
}

/// Synchronization micro-state within the current program op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Micro {
    /// Execute the op at `pc` from scratch.
    Fresh,
    /// Waiting for a lock CAS / unlock / barrier atomic to complete.
    SyncWait,
    /// Backing off before retrying a lock CAS.
    LockBackoff { until: u64 },
    /// Backing off before the next barrier poll.
    BarrierBackoff { until: u64 },
}

#[derive(Debug)]
struct Warp {
    program: Vec<MemOp>,
    pc: usize,
    wg_index: usize,
    micro: Micro,
    busy_until: u64,
    at_fence: bool,
    waiting_local: Option<u64>,
    outstanding: VecDeque<Outstanding>,
    /// SC-stall cycles accumulated by the op waiting at `pc`.
    wait_for_issue: u64,
    max_gwct: u64,
    barriers_passed: u64,
    done: bool,
}

impl Warp {
    fn current_op(&self) -> Option<MemOp> {
        self.program.get(self.pc).copied()
    }
}

/// Forensic view of one non-retired warp (see [`Core::blocked_warps`]):
/// enough context for a hang-dump to say what the warp is stuck on.
#[derive(Debug, Clone)]
pub struct WarpState {
    /// Warp index within the core.
    pub warp: usize,
    /// Program counter — the index of the op the warp is stuck on.
    pub pc: usize,
    /// Synchronization micro-state (`Fresh`, `SyncWait`, ...).
    pub micro: String,
    /// Whether the warp is waiting at a fence.
    pub at_fence: bool,
    /// Pending `LocalWait` epoch, if any.
    pub waiting_local: Option<u64>,
    /// The op at `pc`, if the program has not run out.
    pub stalled_op: Option<String>,
    /// The warp's in-flight global accesses.
    pub outstanding: Vec<OutstandingAccess>,
}

/// One in-flight access of a blocked warp.
#[derive(Debug, Clone)]
pub struct OutstandingAccess {
    /// Word address of the access.
    pub addr: u64,
    /// Access class (`Load`/`Store`/`Atomic`).
    pub class: String,
    /// Cycle the access was issued.
    pub issued: u64,
}

/// What a core produced in one cycle.
#[derive(Debug, Default)]
pub struct CoreOutput {
    /// Warps whose FENCE retired this cycle (the simulator calls the
    /// L1's `fence()` hook for these).
    pub fences_retired: Vec<WarpId>,
    /// The program op this cycle issued *for the first time*, if any:
    /// `(warp index, pc)`. Non-memory ops report here the cycle they
    /// execute; memory ops the cycle their first access is accepted
    /// (lock-CAS retries and barrier re-polls of the same op do not
    /// report). Ephemeral per-tick data for the trace recorder — not
    /// architectural state, so passivity is preserved by construction.
    pub issued_op: Option<(usize, usize)>,
}

/// One streaming multiprocessor.
#[derive(Debug)]
pub struct Core {
    id: CoreId,
    params: CoreParams,
    warps: Vec<Warp>,
    /// Barrier epochs passed per workgroup (for `LocalWait`).
    wg_epochs: Vec<u64>,
    sched_ptr: usize,
    stats: CoreStats,
    retired_warps: usize,
}

impl Core {
    /// Creates a core running the given per-warp programs (padded with
    /// empty programs up to `params.warps_per_core`).
    ///
    /// # Panics
    ///
    /// Panics if more programs than warp contexts are supplied.
    pub fn new(id: CoreId, params: CoreParams, programs: Vec<WarpProgram>) -> Self {
        assert!(
            programs.len() <= params.warps_per_core,
            "{} programs for {} warp contexts",
            programs.len(),
            params.warps_per_core
        );
        let wpw = params.warps_per_workgroup.max(1);
        let num_wgs = params.warps_per_core.div_ceil(wpw);
        let warps: Vec<Warp> = (0..params.warps_per_core)
            .map(|i| {
                let program = programs.get(i).map(|p| p.ops.clone()).unwrap_or_default();
                let done = program.is_empty();
                Warp {
                    program,
                    pc: 0,
                    wg_index: i / wpw,
                    micro: Micro::Fresh,
                    busy_until: 0,
                    at_fence: false,
                    waiting_local: None,
                    outstanding: VecDeque::new(),
                    wait_for_issue: 0,
                    max_gwct: 0,
                    barriers_passed: 0,
                    done,
                }
            })
            .collect();
        let retired = warps.iter().filter(|w| w.done).count();
        Core {
            id,
            params,
            warps,
            wg_epochs: vec![0; num_wgs],
            sched_ptr: 0,
            stats: CoreStats::default(),
            retired_warps: retired,
        }
    }

    /// This core's id.
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// Whether every warp has retired its program.
    pub fn done(&self) -> bool {
        self.retired_warps == self.warps.len()
    }

    /// Outstanding global accesses across all warps.
    pub fn outstanding(&self) -> usize {
        self.warps.iter().map(|w| w.outstanding.len()).sum()
    }

    /// Warps that have not yet retired their program — the occupancy
    /// figure the time-series sampler records per SM.
    pub fn active_warps(&self) -> usize {
        self.warps.len() - self.retired_warps
    }

    /// Statistics.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Folds this core's full architectural state — every warp context
    /// (pc, micro-state, timers, in-flight accesses), the scheduler
    /// pointer, workgroup epochs, and statistics — into a
    /// cross-component state digest.
    pub fn digest_state(&self, d: &mut rcc_common::snap::StateDigest) {
        d.write_debug(self);
    }

    /// Forensic snapshot of every non-retired warp: what it is stuck on
    /// and which accesses it still has in flight. The watchdog's
    /// hang-dump names blocked warps through this.
    pub fn blocked_warps(&self) -> Vec<WarpState> {
        self.warps
            .iter()
            .enumerate()
            .filter(|(_, w)| !w.done)
            .map(|(i, w)| WarpState {
                warp: i,
                pc: w.pc,
                micro: format!("{:?}", w.micro),
                at_fence: w.at_fence,
                waiting_local: w.waiting_local,
                stalled_op: w.current_op().map(|op| format!("{op:?}")),
                outstanding: w
                    .outstanding
                    .iter()
                    .map(|o| OutstandingAccess {
                        addr: o.addr.0,
                        class: format!("{:?}", o.class),
                        issued: o.issued.raw(),
                    })
                    .collect(),
            })
            .collect()
    }

    /// Whether ordering rules allow `warp` to issue a new access to
    /// `addr`.
    fn ordering_allows(&self, warp: &Warp, addr: WordAddr, op_is_sync: bool) -> bool {
        if self.params.weak_ordering {
            // Synchronization atomics need their value to make progress,
            // so they drain the warp first (acquire semantics); plain
            // accesses respect the outstanding limit and — as in any real
            // core — same-address program order within the thread.
            if op_is_sync {
                warp.outstanding.is_empty()
            } else {
                warp.outstanding.len() < self.params.max_outstanding
                    && warp.outstanding.iter().all(|o| o.addr != addr)
            }
        } else {
            // Naïve SC: one outstanding global access per warp.
            warp.outstanding.is_empty()
        }
    }

    /// What the warp would issue right now, if anything.
    fn issue_intent(&self, warp: &Warp, now: u64) -> Option<(AccessKind, WordAddr, Purpose, bool)> {
        if warp.done || warp.busy_until > now || warp.at_fence || warp.waiting_local.is_some() {
            return None;
        }
        match warp.micro {
            Micro::SyncWait => None,
            Micro::LockBackoff { until } if until > now => None,
            Micro::BarrierBackoff { until } if until > now => None,
            Micro::LockBackoff { .. } => {
                let MemOp::Lock(w) = warp.current_op().expect("in lock") else {
                    unreachable!("backoff outside Lock");
                };
                Some((
                    AccessKind::Atomic {
                        op: AtomicOp::Cas { expect: 0, new: 1 },
                    },
                    w,
                    Purpose::LockAttempt,
                    true,
                ))
            }
            Micro::BarrierBackoff { .. } => {
                let MemOp::Barrier { word, members } = warp.current_op().expect("in barrier")
                else {
                    unreachable!("backoff outside Barrier");
                };
                Some((
                    AccessKind::Atomic { op: AtomicOp::Read },
                    word,
                    Purpose::BarrierPoll { members },
                    true,
                ))
            }
            Micro::Fresh => match warp.current_op()? {
                MemOp::Load(w) => Some((AccessKind::Load, w, Purpose::Plain, false)),
                MemOp::Store(w, v) => {
                    Some((AccessKind::Store { value: v }, w, Purpose::Plain, false))
                }
                MemOp::Atomic(w, op) => Some((AccessKind::Atomic { op }, w, Purpose::Plain, true)),
                MemOp::Lock(w) => Some((
                    AccessKind::Atomic {
                        op: AtomicOp::Cas { expect: 0, new: 1 },
                    },
                    w,
                    Purpose::LockAttempt,
                    true,
                )),
                MemOp::Unlock(w) => Some((
                    AccessKind::Atomic {
                        op: AtomicOp::Exch(0),
                    },
                    w,
                    Purpose::Unlock,
                    true,
                )),
                MemOp::Barrier { word, members } => Some((
                    AccessKind::Atomic {
                        op: AtomicOp::Add(1),
                    },
                    word,
                    Purpose::BarrierArrive { members },
                    true,
                )),
                MemOp::Compute(_) | MemOp::Fence | MemOp::LocalWait { .. } => None,
                // The gate is not a memory access; `tick` advances past
                // it once its cycle has come, and `next_event` /
                // `stall_horizon` treat a pending gate as a timer.
                MemOp::WaitUntil(_) => None,
            },
        }
    }

    /// The earliest future cycle at which this core would do anything —
    /// issue, retire, or advance micro-state — assuming no completion
    /// arrives first. `None` means every live warp is blocked on memory
    /// (or on another core's barrier progress) and only an external
    /// event can wake it.
    ///
    /// Pure *counter* activity (SC/fence stall accounting) is not an
    /// event: it is replicated exactly by [`Core::fast_forward`], which
    /// the simulator must call over any cycles it skips.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if self.done() {
            return None;
        }
        let nowr = now.raw();
        let floor = nowr + 1;
        let mut best: u64 = u64::MAX;
        for warp in &self.warps {
            if best == floor {
                break; // already at the earliest possible answer
            }
            if warp.done {
                continue;
            }
            if let Some(need) = warp.waiting_local {
                // Released the cycle after the workgroup epoch advances;
                // epochs only advance on barrier completions (external).
                if self.wg_epochs[warp.wg_index] >= need {
                    best = floor;
                }
                continue;
            }
            if warp.at_fence {
                if warp.outstanding.is_empty() {
                    if self.params.fence_policy == FencePolicy::DrainGwct && nowr <= warp.max_gwct {
                        best = best.min(warp.max_gwct + 1);
                    } else {
                        best = floor;
                    }
                }
                // Not drained: a completion must arrive first.
                continue;
            }
            if warp.current_op().is_none() {
                // Retirement is checked every cycle regardless of timers.
                if warp.outstanding.is_empty() && warp.micro == Micro::Fresh {
                    best = floor;
                }
                continue;
            }
            // An op is waiting; find when its timers next allow a visit.
            let mut wake = floor;
            let mut timer_pending = false;
            if warp.busy_until > nowr {
                wake = wake.max(warp.busy_until);
                timer_pending = true;
            }
            match warp.micro {
                Micro::SyncWait => continue, // woken by its completion
                Micro::LockBackoff { until } | Micro::BarrierBackoff { until } if until > nowr => {
                    wake = wake.max(until);
                    timer_pending = true;
                }
                _ => {}
            }
            // A pending replay gate is a timer: the warp does nothing
            // until its cycle, then advances pc (an event).
            if let Some(MemOp::WaitUntil(t)) = warp.current_op() {
                if t > nowr {
                    wake = wake.max(t);
                    timer_pending = true;
                }
            }
            if wake > floor {
                // A timer expires mid-idle: stepping resumes there (the
                // warp either issues or starts accruing ordering stalls).
                best = best.min(wake);
                continue;
            }
            match warp.current_op() {
                Some(
                    MemOp::Compute(_)
                    | MemOp::Fence
                    | MemOp::LocalWait { .. }
                    | MemOp::WaitUntil(_),
                ) => best = floor,
                _ => {
                    if let Some((_, addr, _, is_sync)) = self.issue_intent(warp, wake) {
                        if timer_pending || self.ordering_allows(warp, addr, is_sync) {
                            // A timer expiring right at the window floor is
                            // an event even if ordering then stalls the
                            // warp: its stall accrual *starts* there, and
                            // `fast_forward` (which evaluates intent at
                            // `now`, where the timer is still live) would
                            // miss those cycles.
                            best = floor;
                        }
                        // Ordering-stalled with no timer: only counters
                        // advance, and `fast_forward` replicates those.
                    }
                }
            }
        }
        (best != u64::MAX).then_some(Cycle(best))
    }

    /// Accounts for `cycles` consecutive skipped cycles during which the
    /// simulator proved (via [`Core::next_event`]) that this core takes
    /// no action: replays the per-cycle stall counters [`Core::tick`]'s
    /// bookkeeping phase would have accumulated, so metrics are
    /// bit-identical with and without fast-forwarding.
    pub fn fast_forward(&mut self, now: Cycle, cycles: u64) {
        if cycles == 0 || self.done() {
            return;
        }
        let nowr = now.raw();
        for i in 0..self.warps.len() {
            let warp = &self.warps[i];
            if warp.done || warp.waiting_local.is_some() {
                continue;
            }
            if warp.at_fence {
                // The fence cannot retire inside the window (that would
                // have been an event), so every skipped cycle stalls.
                self.stats.fence_stall_cycles += cycles;
                continue;
            }
            // Timer comparisons are stable across the window: any timer
            // expiring inside it would have bounded the skip.
            if let Some((_, addr, _, is_sync)) = self.issue_intent(warp, nowr) {
                if !self.ordering_allows(warp, addr, is_sync) {
                    let prev = warp
                        .outstanding
                        .back()
                        .expect("ordering blocks only with outstanding ops")
                        .class
                        .prev_kind();
                    self.stats.record_sc_stall_cycles(prev, cycles);
                    self.warps[i].wait_for_issue += cycles;
                }
            }
        }
    }

    /// The earliest future cycle at which this core could act
    /// *differently* from the structural-reject retry it just executed,
    /// assuming no external input (completion, response, workgroup-epoch
    /// advance) arrives first. `None` means only external input can
    /// break the spin.
    ///
    /// Only meaningful immediately after a [`Core::tick`] whose issue
    /// attempt the L1 rejected. In that state the scheduler's choice is
    /// a fixed point: the rejected warp was the first eligible warp in
    /// the policy order and the pointer did not advance, so with the
    /// core and L1 state unchanged every subsequent cycle re-presents
    /// the same access and is rejected again. The fixed point holds
    /// until a timer reported here expires (another warp becomes
    /// eligible and can preempt, a GWCT fence retires) or external
    /// input changes core or L1 state — so, unlike [`Core::next_event`],
    /// warps that are merely *ready to issue* contribute no wake: ready
    /// warps sit behind the spinning warp in the visit order (an
    /// eligible warp ahead of it would have been chosen instead) and
    /// are never reached while the spin repeats.
    ///
    /// The skipped retries are not free: the simulator replays their
    /// bookkeeping via [`Core::fast_forward`] (other warps' stall
    /// counters), [`Core::replay_structural_stalls`], and the L1's
    /// matching reject-replay hook.
    pub fn stall_horizon(&self, now: Cycle) -> Option<Cycle> {
        if self.done() {
            return None;
        }
        let nowr = now.raw();
        let floor = nowr + 1;
        let mut best: u64 = u64::MAX;
        for warp in &self.warps {
            if best == floor {
                break; // already at the earliest possible answer
            }
            if warp.done {
                continue;
            }
            if let Some(need) = warp.waiting_local {
                if self.wg_epochs[warp.wg_index] >= need {
                    // Releases in the next bookkeeping phase (should not
                    // survive a tick, but stay conservative).
                    best = floor;
                }
                continue;
            }
            if warp.at_fence {
                if warp.outstanding.is_empty() {
                    if self.params.fence_policy == FencePolicy::DrainGwct && nowr <= warp.max_gwct {
                        // Retirement re-enables the warp: it can then
                        // preempt the spinning warp.
                        best = best.min(warp.max_gwct + 1);
                    } else {
                        best = floor;
                    }
                }
                continue;
            }
            if warp.current_op().is_none() {
                if warp.outstanding.is_empty() && warp.micro == Micro::Fresh {
                    best = floor; // retirement next bookkeeping phase
                }
                continue;
            }
            let mut wake = floor;
            let mut timer_pending = false;
            if warp.busy_until > nowr {
                wake = wake.max(warp.busy_until);
                timer_pending = true;
            }
            match warp.micro {
                Micro::SyncWait => continue, // woken by its completion
                Micro::LockBackoff { until } | Micro::BarrierBackoff { until } if until > nowr => {
                    wake = wake.max(until);
                    timer_pending = true;
                }
                _ => {}
            }
            // A pending replay gate is a timer: at its cycle the warp
            // becomes eligible and can preempt the spinning warp.
            if let Some(MemOp::WaitUntil(t)) = warp.current_op() {
                if t > nowr {
                    wake = wake.max(t);
                    timer_pending = true;
                }
            }
            if wake > floor {
                // A timer re-enables this warp mid-spin: the scheduler
                // could then pick it over the spinning warp.
                best = best.min(wake);
                continue;
            }
            if timer_pending {
                // Expires right at the window floor.
                best = floor;
            }
            // Ready or ordering-stalled warps with no live timer are
            // inert: the spin repeats ahead of them in the visit order,
            // and their stall counters are replayed by `fast_forward`.
        }
        (best != u64::MAX).then_some(Cycle(best))
    }

    /// Accounts for `cycles` skipped retry cycles during which the
    /// simulator proved (via [`Core::stall_horizon`]) that every tick
    /// would re-present the same access and be structurally rejected:
    /// replays the one counter each such [`Core::tick`] would have
    /// bumped. The L1's reject counter is replayed by its own hook.
    pub fn replay_structural_stalls(&mut self, cycles: u64) {
        self.stats.structural_stall_cycles += cycles;
    }

    /// Advances non-issuing warp state (fences, local waits, retirement)
    /// and counts ordering stalls, then issues at most one instruction
    /// via `try_access`.
    pub fn tick<F>(&mut self, cycle: Cycle, mut try_access: F) -> CoreOutput
    where
        F: FnMut(Access) -> AccessOutcome,
    {
        let now = cycle.raw();
        let mut out = CoreOutput::default();

        // Phase 1: bookkeeping for every warp.
        for i in 0..self.warps.len() {
            let fence_policy = self.params.fence_policy;
            let epoch = self.wg_epochs[self.warps[i].wg_index];
            let warp = &mut self.warps[i];
            if warp.done {
                continue;
            }
            // Local (intra-workgroup) barrier release.
            if let Some(need) = warp.waiting_local {
                if epoch >= need {
                    warp.waiting_local = None;
                    warp.pc += 1;
                }
            }
            // Fence retirement.
            if warp.at_fence {
                let drained = warp.outstanding.is_empty();
                let gwct_ok = fence_policy != FencePolicy::DrainGwct || now > warp.max_gwct;
                if drained && gwct_ok {
                    warp.at_fence = false;
                    warp.pc += 1;
                    out.fences_retired.push(WarpId(i));
                } else {
                    self.stats.fence_stall_cycles += 1;
                }
            }
            // Program retirement.
            let warp = &mut self.warps[i];
            if !warp.done
                && warp.pc >= warp.program.len()
                && warp.outstanding.is_empty()
                && warp.micro == Micro::Fresh
            {
                warp.done = true;
                self.retired_warps += 1;
            }
            // SC stall accounting: the warp has an access it would issue
            // this cycle but ordering forbids it.
            let warp = &self.warps[i];
            if let Some((_, addr, _, is_sync)) = self.issue_intent(warp, now) {
                let allowed = self.ordering_allows(warp, addr, is_sync);
                if !allowed {
                    let prev = warp
                        .outstanding
                        .back()
                        .expect("ordering blocks only with outstanding ops")
                        .class
                        .prev_kind();
                    self.stats.record_sc_stall_cycle(prev);
                    self.warps[i].wait_for_issue += 1;
                }
            }
        }

        // Phase 2: scheduling — issue at most one instruction, visiting
        // warps in the policy's preference order.
        let n = self.warps.len();
        let order: Vec<usize> = match self.params.scheduler {
            SchedPolicy::LooseRoundRobin => (0..n).map(|off| (self.sched_ptr + off) % n).collect(),
            SchedPolicy::GreedyThenOldest => {
                // Greedy: last issuer first, then oldest (lowest id).
                let last = self.sched_ptr.checked_sub(1).map_or(n - 1, |x| x);
                std::iter::once(last)
                    .chain((0..n).filter(move |i| *i != last))
                    .collect()
            }
        };
        for i in order {
            let now_op = {
                let warp = &self.warps[i];
                if warp.done || warp.busy_until > now || warp.at_fence {
                    continue;
                }
                warp.current_op()
            };
            // Compute / fence / local-wait / gate "issue" (no memory
            // access).
            match now_op {
                Some(MemOp::Compute(c)) if self.warps[i].micro == Micro::Fresh => {
                    let warp = &mut self.warps[i];
                    out.issued_op = Some((i, warp.pc));
                    warp.busy_until = now + c.max(1) as u64;
                    warp.pc += 1;
                    self.stats.issued += 1;
                    self.sched_ptr = (i + 1) % n;
                    return out;
                }
                Some(MemOp::Fence) if self.warps[i].micro == Micro::Fresh => {
                    let warp = &mut self.warps[i];
                    out.issued_op = Some((i, warp.pc));
                    self.stats.issued += 1;
                    if self.params.fence_policy == FencePolicy::Free {
                        warp.pc += 1;
                    } else {
                        warp.at_fence = true;
                    }
                    self.sched_ptr = (i + 1) % n;
                    return out;
                }
                Some(MemOp::LocalWait { epoch })
                    if self.warps[i].micro == Micro::Fresh
                        && self.warps[i].waiting_local.is_none() =>
                {
                    let wg = self.warps[i].wg_index;
                    let warp = &mut self.warps[i];
                    out.issued_op = Some((i, warp.pc));
                    self.stats.issued += 1;
                    if self.wg_epochs[wg] >= epoch {
                        warp.pc += 1;
                    } else {
                        warp.waiting_local = Some(epoch);
                    }
                    self.sched_ptr = (i + 1) % n;
                    return out;
                }
                Some(MemOp::WaitUntil(t)) if self.warps[i].micro == Micro::Fresh && now >= t => {
                    // The gate has passed: retire it. (Before `t` the
                    // warp simply has no intent and accrues no stalls —
                    // it is idle, not stalled.)
                    let warp = &mut self.warps[i];
                    out.issued_op = Some((i, warp.pc));
                    warp.pc += 1;
                    self.stats.issued += 1;
                    self.sched_ptr = (i + 1) % n;
                    return out;
                }
                _ => {}
            }
            // Memory issue.
            let Some((kind, addr, purpose, is_sync)) = self.issue_intent(&self.warps[i], now)
            else {
                continue;
            };
            if !self.ordering_allows(&self.warps[i], addr, is_sync) {
                continue; // ordering stall, already counted
            }
            // First presentation of the program op at `pc` (as opposed
            // to a lock-CAS retry or barrier re-poll out of a backoff
            // state) — what the trace recorder pins the issue cycle of.
            let first_issue = self.warps[i].micro == Micro::Fresh;
            let pc = self.warps[i].pc;
            let access = Access {
                warp: WarpId(i),
                addr,
                kind,
            };
            match try_access(access) {
                AccessOutcome::Reject(_) => {
                    self.stats.structural_stall_cycles += 1;
                    // Retry next cycle; do not advance the pointer so the
                    // rejected warp gets another shot.
                    return out;
                }
                outcome => {
                    if first_issue {
                        out.issued_op = Some((i, pc));
                    }
                    self.note_issue(i, cycle, addr, kind, purpose);
                    if let AccessOutcome::Done(c) = outcome {
                        self.complete(cycle, &c);
                    }
                    self.sched_ptr = (i + 1) % n;
                    return out;
                }
            }
        }
        out
    }

    fn note_issue(
        &mut self,
        i: usize,
        cycle: Cycle,
        addr: WordAddr,
        kind: AccessKind,
        purpose: Purpose,
    ) {
        let class = match kind {
            AccessKind::Load => OpClass::Load,
            AccessKind::Store { .. } => OpClass::Store,
            AccessKind::Atomic { .. } => OpClass::Atomic,
        };
        self.stats.issued += 1;
        self.stats.mem_ops += 1;
        if matches!(purpose, Purpose::BarrierPoll { .. }) {
            self.stats.barrier_polls += 1;
        }
        let warp = &mut self.warps[i];
        if warp.wait_for_issue > 0 {
            self.stats.stalled_mem_ops += 1;
            self.stats.stall_resolve.record(warp.wait_for_issue);
            warp.wait_for_issue = 0;
        }
        warp.outstanding.push_back(Outstanding {
            addr,
            class,
            purpose,
            issued: cycle,
        });
        match purpose {
            Purpose::Plain => {
                // The program op is now in flight; advance past it. Under
                // SC the warp simply cannot issue the next one until the
                // completion arrives.
                warp.micro = Micro::Fresh;
                warp.pc += 1;
            }
            _ => warp.micro = Micro::SyncWait,
        }
    }

    /// Delivers a memory completion to its warp.
    pub fn complete(&mut self, cycle: Cycle, completion: &Completion) {
        let i = completion.warp.index();
        let class = match completion.kind {
            CompletionKind::LoadDone { .. } => OpClass::Load,
            CompletionKind::StoreDone => OpClass::Store,
            CompletionKind::AtomicDone { .. } => OpClass::Atomic,
        };
        let warp = &mut self.warps[i];
        let pos = warp
            .outstanding
            .iter()
            .position(|o| o.addr == completion.addr && o.class == class)
            .unwrap_or_else(|| {
                panic!(
                    "{}/{} completion for {} with no outstanding access",
                    self.id, completion.warp, completion.addr
                )
            });
        let o = warp.outstanding.remove(pos).expect("position valid");
        let latency = cycle.raw() - o.issued.raw();
        match o.class {
            OpClass::Load => self.stats.load_latency.record(latency),
            OpClass::Store => self.stats.store_latency.record(latency),
            OpClass::Atomic => self.stats.atomic_latency.record(latency),
        }
        if matches!(
            completion.kind,
            CompletionKind::StoreDone | CompletionKind::AtomicDone { .. }
        ) {
            // Stores and atomics both write; under TC-Weak their ts is
            // the GWCT a subsequent fence must wait out.
            warp.max_gwct = warp.max_gwct.max(completion.ts.raw());
        }
        match o.purpose {
            Purpose::Plain => {}
            Purpose::Unlock => {
                warp.micro = Micro::Fresh;
                warp.pc += 1;
            }
            Purpose::LockAttempt => {
                let CompletionKind::AtomicDone { old } = completion.kind else {
                    panic!("lock attempt must complete as an atomic");
                };
                if old == 0 {
                    warp.micro = Micro::Fresh;
                    warp.pc += 1;
                } else {
                    self.stats.lock_retries += 1;
                    let backoff = self.params.lock_backoff + (i as u64 * 7) % 64;
                    warp.micro = Micro::LockBackoff {
                        until: cycle.raw() + backoff,
                    };
                }
            }
            Purpose::BarrierArrive { members } | Purpose::BarrierPoll { members } => {
                let CompletionKind::AtomicDone { old } = completion.kind else {
                    panic!("barrier ops must complete as atomics");
                };
                let seen = if matches!(o.purpose, Purpose::BarrierArrive { .. }) {
                    old + 1
                } else {
                    old
                };
                if seen >= members {
                    warp.micro = Micro::Fresh;
                    warp.pc += 1;
                    warp.barriers_passed += 1;
                    let wg = warp.wg_index;
                    let passed = warp.barriers_passed;
                    self.wg_epochs[wg] = self.wg_epochs[wg].max(passed);
                } else {
                    warp.micro = Micro::BarrierBackoff {
                        until: cycle.raw() + self.params.poll_interval,
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests;
