//! Core model tests driven by a scripted "memory system" closure.

use super::*;
use crate::op::{MemOp, WarpProgram};
use rcc_common::addr::{LineAddr, WordAddr};
use rcc_common::ids::WorkgroupId;
use rcc_common::time::Timestamp;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

fn w(a: u64) -> WordAddr {
    LineAddr(a).word(0)
}

/// A scripted memory that accepts everything and answers after `delay`
/// cycles; values behave like a real word memory for atomics.
struct FakeMem {
    delay: u64,
    mem: std::collections::HashMap<WordAddr, u64>,
    pending: VecDeque<(u64, Completion)>,
    served: u64,
}

impl FakeMem {
    fn new(delay: u64) -> Rc<RefCell<FakeMem>> {
        Rc::new(RefCell::new(FakeMem {
            delay,
            mem: Default::default(),
            pending: VecDeque::new(),
            served: 0,
        }))
    }
}

fn drive(core: &mut Core, mem: &Rc<RefCell<FakeMem>>, max_cycles: u64) -> u64 {
    for c in 0..max_cycles {
        let cycle = Cycle(c);
        // Deliver due completions.
        loop {
            let due = {
                let m = mem.borrow();
                m.pending.front().is_some_and(|(at, _)| *at <= c)
            };
            if !due {
                break;
            }
            let (_, completion) = mem.borrow_mut().pending.pop_front().expect("due");
            core.complete(cycle, &completion);
        }
        if core.done() {
            return c;
        }
        let mem2 = Rc::clone(mem);
        core.tick(cycle, |access| {
            let mut m = mem2.borrow_mut();
            m.served += 1;
            let old = *m.mem.get(&access.addr).unwrap_or(&0);
            let kind = match access.kind {
                AccessKind::Load => CompletionKind::LoadDone { value: old },
                AccessKind::Store { value } => {
                    m.mem.insert(access.addr, value);
                    CompletionKind::StoreDone
                }
                AccessKind::Atomic { op } => {
                    m.mem.insert(access.addr, op.apply(old));
                    CompletionKind::AtomicDone { old }
                }
            };
            let completion = Completion {
                warp: access.warp,
                addr: access.addr,
                kind,
                ts: Timestamp(c),
                seq: m.served,
            };
            let at = c + m.delay;
            m.pending.push_back((at, completion));
            AccessOutcome::Pending
        });
    }
    panic!("core did not finish in {max_cycles} cycles");
}

fn sc_core(programs: Vec<WarpProgram>) -> Core {
    Core::new(CoreId(0), CoreParams::sequential(8, 4), programs)
}

#[test]
fn empty_core_is_done_immediately() {
    let core = sc_core(vec![]);
    assert!(core.done());
}

#[test]
fn straight_line_program_retires() {
    let p = WarpProgram::new(
        WorkgroupId(0),
        vec![
            MemOp::Load(w(0)),
            MemOp::Compute(5),
            MemOp::Store(w(1), 9),
            MemOp::Load(w(1)),
        ],
    );
    let mem = FakeMem::new(10);
    let mut core = sc_core(vec![p]);
    drive(&mut core, &mem, 10_000);
    assert_eq!(core.stats().mem_ops, 3);
    assert_eq!(core.stats().issued, 4);
    assert_eq!(core.stats().load_latency.count(), 2);
    assert_eq!(core.stats().store_latency.count(), 1);
}

#[test]
fn sc_blocks_second_mem_op_and_attributes_stall() {
    // Two back-to-back memory ops: the second must wait out the first's
    // latency, attributed to the prior store.
    let p = WarpProgram::new(
        WorkgroupId(0),
        vec![MemOp::Store(w(0), 1), MemOp::Load(w(1))],
    );
    let mem = FakeMem::new(50);
    let mut core = sc_core(vec![p]);
    drive(&mut core, &mem, 10_000);
    let s = core.stats();
    assert!(s.sc_stall_cycles >= 45, "stalled ~the store latency");
    assert_eq!(s.sc_stall_cycles_prev_store, s.sc_stall_cycles);
    assert_eq!(s.stalled_mem_ops, 1, "only the load ever stalled");
    assert!(s.stall_resolve.mean() >= 45.0);
}

#[test]
fn parallel_warps_hide_latency() {
    // 8 warps × the same two-op program: wall clock must be far below
    // 8 × serial time, because warps interleave (the TLP argument of
    // Section II-B).
    let make = |_| {
        WarpProgram::new(
            WorkgroupId(0),
            vec![MemOp::Load(w(0)), MemOp::Load(w(1)), MemOp::Load(w(2))],
        )
    };
    let mem = FakeMem::new(100);
    let mut core = sc_core((0..8).map(make).collect());
    let cycles_par = drive(&mut core, &mem, 100_000);

    let mem1 = FakeMem::new(100);
    let mut core1 = sc_core(vec![make(0)]);
    let cycles_one = drive(&mut core1, &mem1, 100_000);
    assert!(
        cycles_par < cycles_one * 3,
        "8 warps ({cycles_par}) should take much less than 8× one warp ({cycles_one})"
    );
}

#[test]
fn weak_ordering_overlaps_accesses() {
    let p = || {
        WarpProgram::new(
            WorkgroupId(0),
            vec![
                MemOp::Store(w(0), 1),
                MemOp::Store(w(1), 2),
                MemOp::Store(w(2), 3),
                MemOp::Store(w(3), 4),
            ],
        )
    };
    let mem_sc = FakeMem::new(80);
    let mut sc = sc_core(vec![p()]);
    let t_sc = drive(&mut sc, &mem_sc, 100_000);

    let mem_wo = FakeMem::new(80);
    let mut wo = Core::new(
        CoreId(0),
        CoreParams::weakly_ordered(8, 4, FencePolicy::Drain),
        vec![p()],
    );
    let t_wo = drive(&mut wo, &mem_wo, 100_000);
    assert!(
        t_wo * 2 < t_sc,
        "overlapped stores ({t_wo}) ≪ serialized stores ({t_sc})"
    );
    assert_eq!(wo.stats().sc_stall_cycles, 0);
}

#[test]
fn fence_drains_under_weak_ordering_and_is_free_under_sc() {
    let p = || {
        WarpProgram::new(
            WorkgroupId(0),
            vec![MemOp::Store(w(0), 1), MemOp::Fence, MemOp::Store(w(1), 2)],
        )
    };
    let mem = FakeMem::new(60);
    let mut wo = Core::new(
        CoreId(0),
        CoreParams::weakly_ordered(8, 4, FencePolicy::Drain),
        vec![p()],
    );
    drive(&mut wo, &mem, 100_000);
    assert!(
        wo.stats().fence_stall_cycles >= 55,
        "fence drained the store"
    );

    let mem = FakeMem::new(60);
    let mut sc = sc_core(vec![p()]);
    drive(&mut sc, &mem, 100_000);
    assert_eq!(sc.stats().fence_stall_cycles, 0, "SC fences are no-ops");
}

#[test]
fn gwct_fence_waits_for_write_completion_time() {
    // The store's completion carries a GWCT far in the future; a
    // DrainGwct fence must wait it out even after the ack arrived.
    let p = WarpProgram::new(
        WorkgroupId(0),
        vec![MemOp::Store(w(0), 1), MemOp::Fence, MemOp::Load(w(1))],
    );
    let mut core = Core::new(
        CoreId(0),
        CoreParams::weakly_ordered(8, 4, FencePolicy::DrainGwct),
        vec![p],
    );
    // Hand-drive: issue the store at cycle 0, ack at cycle 5 with
    // GWCT = 500.
    let issued = std::cell::Cell::new(None);
    core.tick(Cycle(0), |a| {
        issued.set(Some(a));
        AccessOutcome::Pending
    });
    let a = issued.get().expect("store issued");
    core.complete(
        Cycle(5),
        &Completion {
            warp: a.warp,
            addr: a.addr,
            kind: CompletionKind::StoreDone,
            ts: Timestamp(500),
            seq: 1,
        },
    );
    // Advance: the fence must hold until cycle > 500.
    let mut load_issued_at = None;
    for c in 6..600 {
        core.tick(Cycle(c), |a2| {
            load_issued_at.get_or_insert(c);
            let _ = a2;
            AccessOutcome::Pending
        });
    }
    assert!(
        load_issued_at.expect("load issued eventually") > 500,
        "fence must wait for the GWCT"
    );
}

#[test]
fn lock_serializes_critical_sections() {
    // Two warps contend on a lock around a shared counter implemented as
    // load+store (racy without the lock).
    let p = |_| {
        WarpProgram::new(
            WorkgroupId(0),
            vec![
                MemOp::Lock(w(9)),
                MemOp::Atomic(w(1), rcc_core::msg::AtomicOp::Add(1)),
                MemOp::Unlock(w(9)),
            ],
        )
    };
    let mem = FakeMem::new(20);
    let mut core = sc_core((0..4).map(p).collect());
    drive(&mut core, &mem, 200_000);
    assert_eq!(*mem.borrow().mem.get(&w(1)).unwrap(), 4);
    assert_eq!(*mem.borrow().mem.get(&w(9)).unwrap(), 0, "lock released");
}

#[test]
fn barrier_releases_all_workgroups() {
    // 2 workgroups of 4 warps; lead warps run the global barrier, the
    // rest wait locally, then everyone stores a flag.
    let mut programs = Vec::new();
    for i in 0..8 {
        let lead = i % 4 == 0;
        let mut ops = vec![MemOp::Compute(1 + i as u32)];
        if lead {
            ops.push(MemOp::Barrier {
                word: w(20),
                members: 2,
            });
        } else {
            ops.push(MemOp::LocalWait { epoch: 1 });
        }
        ops.push(MemOp::Store(w(30 + i as u64), 1));
        programs.push(WarpProgram::new(WorkgroupId(i / 4), ops));
    }
    let mem = FakeMem::new(15);
    let mut core = sc_core(programs);
    drive(&mut core, &mem, 200_000);
    for i in 0..8 {
        assert_eq!(*mem.borrow().mem.get(&w(30 + i)).unwrap(), 1);
    }
    assert_eq!(
        *mem.borrow().mem.get(&w(20)).unwrap(),
        2,
        "both leads arrived"
    );
}

#[test]
fn structural_rejects_are_retried() {
    // Reject the first 5 attempts; the op must still complete.
    let p = WarpProgram::new(WorkgroupId(0), vec![MemOp::Load(w(0))]);
    let mut core = sc_core(vec![p]);
    let mut rejects = 5;
    let mut done = false;
    for c in 0..100 {
        if core.done() {
            done = true;
            break;
        }
        let mut completion = None;
        core.tick(Cycle(c), |a| {
            if rejects > 0 {
                rejects -= 1;
                AccessOutcome::Reject(rcc_core::msg::RejectReason::MshrFull)
            } else {
                let comp = Completion {
                    warp: a.warp,
                    addr: a.addr,
                    kind: CompletionKind::LoadDone { value: 0 },
                    ts: Timestamp(c),
                    seq: 0,
                };
                completion = Some(comp);
                AccessOutcome::Done(comp)
            }
        });
        let _ = completion;
    }
    assert!(done);
    assert_eq!(core.stats().structural_stall_cycles, 5);
}

#[test]
fn weak_ordering_respects_outstanding_limit() {
    // 12 back-to-back stores, limit 8: the warp must never exceed 8 in
    // flight.
    let ops: Vec<MemOp> = (0..12).map(|i| MemOp::Store(w(i), i)).collect();
    let mut core = Core::new(
        CoreId(0),
        CoreParams::weakly_ordered(8, 4, FencePolicy::Drain),
        vec![WarpProgram::new(WorkgroupId(0), ops)],
    );
    let mut in_flight = 0usize;
    let mut peak = 0usize;
    let mut pending: Vec<Completion> = Vec::new();
    for c in 0..2000 {
        // Deliver one completion every 4 cycles.
        if c % 4 == 0 {
            if let Some(comp) = pending.pop() {
                core.complete(Cycle(c), &comp);
                in_flight -= 1;
            }
        }
        if core.done() {
            break;
        }
        core.tick(Cycle(c), |a| {
            in_flight += 1;
            pending.push(Completion {
                warp: a.warp,
                addr: a.addr,
                kind: CompletionKind::StoreDone,
                ts: Timestamp(c),
                seq: 0,
            });
            AccessOutcome::Pending
        });
        peak = peak.max(in_flight);
    }
    assert!(core.done());
    assert!(peak <= 8, "outstanding limit violated: {peak}");
    assert!(peak >= 4, "weak ordering should overlap stores: {peak}");
}

#[test]
fn stall_attribution_distinguishes_atomic_from_store() {
    let p = WarpProgram::new(
        WorkgroupId(0),
        vec![
            MemOp::Atomic(w(0), rcc_core::msg::AtomicOp::Add(1)),
            MemOp::Load(w(1)),
        ],
    );
    let mem = FakeMem::new(40);
    let mut core = sc_core(vec![p]);
    drive(&mut core, &mem, 10_000);
    let s = core.stats();
    assert!(s.sc_stall_cycles_prev_atomic > 0);
    assert_eq!(s.sc_stall_cycles_prev_store, 0);
    assert_eq!(s.sc_stall_cycles_prev_load, 0);
}

#[test]
fn multi_member_barrier_polls_until_release() {
    // Two lead warps in different workgroups arrive at a 2-member global
    // barrier; the slow one forces the fast one to poll.
    let fast = WarpProgram::new(
        WorkgroupId(0),
        vec![MemOp::Barrier {
            word: w(5),
            members: 2,
        }],
    );
    let slow = WarpProgram::new(
        WorkgroupId(1),
        vec![
            MemOp::Compute(800),
            MemOp::Barrier {
                word: w(5),
                members: 2,
            },
        ],
    );
    let _ = fast;
    let mem = FakeMem::new(10);
    // Put the slow warp in warp slot 4 (second workgroup) of the same core.
    let programs = vec![
        WarpProgram::new(
            WorkgroupId(0),
            vec![MemOp::Barrier {
                word: w(5),
                members: 2,
            }],
        ),
        WarpProgram::new(WorkgroupId(0), vec![]),
        WarpProgram::default(),
        WarpProgram::default(),
        slow,
    ];
    let mut core = Core::new(CoreId(0), CoreParams::sequential(8, 4), programs);
    drive(&mut core, &mem, 100_000);
    assert!(
        core.stats().barrier_polls > 0,
        "the early arriver must poll"
    );
    assert_eq!(*mem.borrow().mem.get(&w(5)).unwrap(), 2);
}

#[test]
fn local_wait_blocks_until_lead_passes_barrier() {
    let lead = WarpProgram::new(
        WorkgroupId(0),
        vec![
            MemOp::Compute(200),
            MemOp::Barrier {
                word: w(6),
                members: 1,
            },
            MemOp::Store(w(7), 1),
        ],
    );
    let follower = WarpProgram::new(
        WorkgroupId(0),
        vec![MemOp::LocalWait { epoch: 1 }, MemOp::Store(w(8), 2)],
    );
    let mem = FakeMem::new(10);
    let mut core = sc_core(vec![lead, follower]);
    let cycles = drive(&mut core, &mem, 100_000);
    assert!(
        cycles >= 200,
        "follower cannot finish before the lead's work"
    );
    assert_eq!(*mem.borrow().mem.get(&w(8)).unwrap(), 2);
}

#[test]
fn fences_free_under_sc_have_zero_latency_cost() {
    let with_fences = WarpProgram::new(
        WorkgroupId(0),
        vec![
            MemOp::Store(w(0), 1),
            MemOp::Fence,
            MemOp::Fence,
            MemOp::Fence,
            MemOp::Load(w(1)),
        ],
    );
    let mem = FakeMem::new(30);
    let mut core = sc_core(vec![with_fences]);
    drive(&mut core, &mem, 10_000);
    assert_eq!(core.stats().fence_stall_cycles, 0);
    assert_eq!(core.stats().issued, 5, "fences still issue as instructions");
}

#[test]
fn gto_scheduler_prefers_the_last_issuer() {
    // Two warps of pure compute: GTO drains one warp before touching the
    // other; round-robin interleaves.
    let prog = || WarpProgram::new(WorkgroupId(0), (0..6).map(|_| MemOp::Compute(1)).collect());
    let run = |sched| {
        let params = CoreParams {
            scheduler: sched,
            ..CoreParams::sequential(8, 4)
        };
        let mut core = Core::new(CoreId(0), params, vec![prog(), prog()]);
        let mem = FakeMem::new(1);
        drive(&mut core, &mem, 1000)
    };
    // Both finish; identical total work.
    let t_rr = run(SchedPolicy::LooseRoundRobin);
    let t_gto = run(SchedPolicy::GreedyThenOldest);
    assert!(t_rr > 0 && t_gto > 0);
}

#[test]
fn gto_and_rr_complete_memory_programs_identically() {
    let prog = |seed: u64| {
        WarpProgram::new(
            WorkgroupId(0),
            vec![
                MemOp::Load(w(seed)),
                MemOp::Store(w(seed + 1), seed),
                MemOp::Load(w(seed + 1)),
            ],
        )
    };
    for sched in [SchedPolicy::LooseRoundRobin, SchedPolicy::GreedyThenOldest] {
        let params = CoreParams {
            scheduler: sched,
            ..CoreParams::sequential(8, 4)
        };
        let mut core = Core::new(CoreId(0), params, (0..4).map(prog).collect());
        let mem = FakeMem::new(25);
        drive(&mut core, &mem, 100_000);
        assert_eq!(core.stats().mem_ops, 12, "{sched:?}");
        for s in 0..4u64 {
            assert_eq!(*mem.borrow().mem.get(&w(s + 1)).unwrap(), s);
        }
    }
}

mod properties {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap as Map;

    fn random_op(kind: u8, addr: u64, val: u64) -> MemOp {
        match kind % 5 {
            0 => MemOp::Load(w(addr)),
            1 => MemOp::Store(w(addr), val),
            2 => MemOp::Atomic(w(addr), AtomicOp::Add(1)),
            3 => MemOp::Fence,
            _ => MemOp::Compute(1 + (val % 20) as u32),
        }
    }

    /// Drives `core` with a memory that *observes* every issue and checks
    /// the issue-time invariants of the ordering model, with completions
    /// delayed by `delay` cycles.
    fn drive_checked(core: &mut Core, delay: u64, max_outstanding: usize, weak: bool) {
        // warp -> set of outstanding addresses.
        let outstanding: Rc<RefCell<Map<WarpId, Vec<WordAddr>>>> = Rc::default();
        let mem = FakeMem::new(delay);
        for c in 0..200_000u64 {
            let cycle = Cycle(c);
            loop {
                let due = {
                    let m = mem.borrow();
                    m.pending.front().is_some_and(|(at, _)| *at <= c)
                };
                if !due {
                    break;
                }
                let (_, completion) = mem.borrow_mut().pending.pop_front().expect("due");
                let mut outs = outstanding.borrow_mut();
                let v = outs
                    .get_mut(&completion.warp)
                    .expect("completion without issue");
                let i = v.iter().position(|a| *a == completion.addr).expect("addr");
                v.remove(i);
                core.complete(cycle, &completion);
            }
            if core.done() {
                return;
            }
            let mem2 = Rc::clone(&mem);
            let outs2 = Rc::clone(&outstanding);
            core.tick(cycle, |access| {
                {
                    let mut outs = outs2.borrow_mut();
                    let v = outs.entry(access.warp).or_default();
                    assert!(
                        v.len() < max_outstanding,
                        "warp {:?} exceeded the outstanding limit",
                        access.warp
                    );
                    if weak {
                        assert!(
                            !v.contains(&access.addr),
                            "same-address overlap from warp {:?} at {}",
                            access.warp,
                            access.addr
                        );
                    }
                    v.push(access.addr);
                }
                let mut m = mem2.borrow_mut();
                m.served += 1;
                let old = *m.mem.get(&access.addr).unwrap_or(&0);
                let kind = match access.kind {
                    AccessKind::Load => CompletionKind::LoadDone { value: old },
                    AccessKind::Store { value } => {
                        m.mem.insert(access.addr, value);
                        CompletionKind::StoreDone
                    }
                    AccessKind::Atomic { op } => {
                        m.mem.insert(access.addr, op.apply(old));
                        CompletionKind::AtomicDone { old }
                    }
                };
                let completion = Completion {
                    warp: access.warp,
                    addr: access.addr,
                    kind,
                    ts: Timestamp(c),
                    seq: m.served,
                };
                let at = c + m.delay;
                m.pending.push_back((at, completion));
                AccessOutcome::Pending
            });
        }
        panic!("core did not finish");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Naïve SC issuance: any program mix retires, and no warp ever
        /// has more than one global access in flight.
        #[test]
        fn sc_core_never_overlaps_accesses(
            ops in proptest::collection::vec((any::<u8>(), 0u64..6, 0u64..100), 1..40),
            warps in 1usize..5,
            delay in 1u64..60,
        ) {
            let programs: Vec<WarpProgram> = (0..warps)
                .map(|i| {
                    WarpProgram::new(
                        WorkgroupId(0),
                        ops.iter()
                            .skip(i)
                            .map(|&(k, a, v)| random_op(k, a, v))
                            .collect(),
                    )
                })
                .collect();
            let mut core = Core::new(CoreId(0), CoreParams::sequential(warps, warps), programs);
            drive_checked(&mut core, delay, 1, false);
        }

        /// Weak ordering: any program mix retires, the 8-deep outstanding
        /// window is respected, and same-warp same-address accesses never
        /// overlap (required for per-location coherence).
        #[test]
        fn weak_core_respects_window_and_same_address_order(
            ops in proptest::collection::vec((any::<u8>(), 0u64..4, 0u64..100), 1..40),
            warps in 1usize..5,
            delay in 1u64..60,
            policy in prop_oneof![
                Just(FencePolicy::Free),
                Just(FencePolicy::Drain),
                Just(FencePolicy::DrainGwct),
            ],
        ) {
            let programs: Vec<WarpProgram> = (0..warps)
                .map(|i| {
                    WarpProgram::new(
                        WorkgroupId(0),
                        ops.iter()
                            .skip(i)
                            .map(|&(k, a, v)| random_op(k, a, v))
                            .collect(),
                    )
                })
                .collect();
            let mut core = Core::new(
                CoreId(0),
                CoreParams::weakly_ordered(warps, warps, policy),
                programs,
            );
            drive_checked(&mut core, delay, 8, true);
        }
    }
}
