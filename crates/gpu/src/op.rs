//! Warp-level operations and programs.
//!
//! A [`WarpProgram`] is a straight-line list of [`MemOp`]s one warp
//! executes; benchmarks are built by generating one program per warp:
//!
//! ```
//! use rcc_gpu::op::{MemOp, WarpProgram};
//! use rcc_common::addr::LineAddr;
//! use rcc_common::ids::WorkgroupId;
//!
//! let w = LineAddr(0).word(0);
//! let p = WarpProgram::new(
//!     WorkgroupId(0),
//!     vec![MemOp::Load(w), MemOp::Store(w, 1), MemOp::Fence],
//! );
//! assert_eq!(p.ops.len(), 3);
//! assert!(p.ops.iter().filter(|o| o.is_memory()).count() == 2);
//! ```

use rcc_common::addr::WordAddr;
use rcc_common::ids::WorkgroupId;
use rcc_core::msg::AtomicOp;

/// One warp-level operation. Memory operations are line-granular in
/// traffic and word-granular in value tracking (see `rcc-core::msg`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOp {
    /// Global load of one (representative) word.
    Load(WordAddr),
    /// Global write-through store.
    Store(WordAddr, u64),
    /// Atomic read-modify-write, performed at the L2.
    Atomic(WordAddr, AtomicOp),
    /// Memory fence. Free under SC configurations (the hardware already
    /// orders everything); drains outstanding accesses — and waits out
    /// GWCTs / joins logical views — under weak ordering.
    Fence,
    /// Non-memory work occupying the warp for the given cycles.
    Compute(u32),
    /// Acquire a spin lock at the given word: CAS(0→1) retried with
    /// backoff until it succeeds.
    Lock(WordAddr),
    /// Release a spin lock: atomic exchange to 0.
    Unlock(WordAddr),
    /// Inter-workgroup fast-barrier arrival + poll (lead warp only):
    /// atomically increments the barrier word, then polls it with atomic
    /// reads until all `members` have arrived.
    Barrier {
        /// The barrier counter word.
        word: WordAddr,
        /// Number of arrivals that release the barrier.
        members: u64,
    },
    /// Intra-workgroup wait: block until the workgroup's lead warp has
    /// passed its `epoch`-th [`MemOp::Barrier`]. Costs no memory traffic
    /// (GPU hardware barriers are core-local).
    LocalWait {
        /// Barrier epoch to wait for (1-based).
        epoch: u64,
    },
}

impl MemOp {
    /// Whether this op issues a global memory access when executed
    /// (locks/barriers issue several).
    pub fn is_memory(&self) -> bool {
        !matches!(
            self,
            MemOp::Compute(_) | MemOp::Fence | MemOp::LocalWait { .. }
        )
    }
}

/// The program of one warp, plus its workgroup assignment.
#[derive(Debug, Clone, Default)]
pub struct WarpProgram {
    /// Operations in program order.
    pub ops: Vec<MemOp>,
    /// Workgroup (threadblock) this warp belongs to. Intra-workgroup
    /// sharing stays within a core; inter-workgroup sharing is what
    /// drives coherence traffic (Table IV's taxonomy).
    pub workgroup: WorkgroupId,
}

impl WarpProgram {
    /// Creates a program for a warp of `workgroup`.
    pub fn new(workgroup: WorkgroupId, ops: Vec<MemOp>) -> Self {
        WarpProgram { ops, workgroup }
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of global memory operations (lower bound: lock/barrier
    /// retries issue more).
    pub fn memory_ops(&self) -> usize {
        self.ops.iter().filter(|o| o.is_memory()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcc_common::addr::WordAddr;

    #[test]
    fn memory_op_taxonomy() {
        assert!(MemOp::Load(WordAddr(0)).is_memory());
        assert!(MemOp::Store(WordAddr(0), 1).is_memory());
        assert!(MemOp::Lock(WordAddr(0)).is_memory());
        assert!(!MemOp::Fence.is_memory());
        assert!(!MemOp::Compute(5).is_memory());
        assert!(!MemOp::LocalWait { epoch: 1 }.is_memory());
    }

    #[test]
    fn program_counts() {
        let p = WarpProgram::new(
            WorkgroupId(0),
            vec![
                MemOp::Load(WordAddr(0)),
                MemOp::Compute(3),
                MemOp::Store(WordAddr(1), 2),
                MemOp::Fence,
            ],
        );
        assert_eq!(p.len(), 4);
        assert_eq!(p.memory_ops(), 2);
        assert!(!p.is_empty());
    }
}
