//! Warp-level operations and programs.
//!
//! A [`WarpProgram`] is a straight-line list of [`MemOp`]s one warp
//! executes; benchmarks are built by generating one program per warp:
//!
//! ```
//! use rcc_gpu::op::{MemOp, WarpProgram};
//! use rcc_common::addr::LineAddr;
//! use rcc_common::ids::WorkgroupId;
//!
//! let w = LineAddr(0).word(0);
//! let p = WarpProgram::new(
//!     WorkgroupId(0),
//!     vec![MemOp::Load(w), MemOp::Store(w, 1), MemOp::Fence],
//! );
//! assert_eq!(p.ops.len(), 3);
//! assert!(p.ops.iter().filter(|o| o.is_memory()).count() == 2);
//! ```

use rcc_common::addr::WordAddr;
use rcc_common::ids::WorkgroupId;
use rcc_common::snap::{SnapError, SnapReader, SnapWriter};
use rcc_core::msg::AtomicOp;

/// One warp-level operation. Memory operations are line-granular in
/// traffic and word-granular in value tracking (see `rcc-core::msg`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOp {
    /// Global load of one (representative) word.
    Load(WordAddr),
    /// Global write-through store.
    Store(WordAddr, u64),
    /// Atomic read-modify-write, performed at the L2.
    Atomic(WordAddr, AtomicOp),
    /// Memory fence. Free under SC configurations (the hardware already
    /// orders everything); drains outstanding accesses — and waits out
    /// GWCTs / joins logical views — under weak ordering.
    Fence,
    /// Non-memory work occupying the warp for the given cycles.
    Compute(u32),
    /// Acquire a spin lock at the given word: CAS(0→1) retried with
    /// backoff until it succeeds.
    Lock(WordAddr),
    /// Release a spin lock: atomic exchange to 0.
    Unlock(WordAddr),
    /// Inter-workgroup fast-barrier arrival + poll (lead warp only):
    /// atomically increments the barrier word, then polls it with atomic
    /// reads until all `members` have arrived.
    Barrier {
        /// The barrier counter word.
        word: WordAddr,
        /// Number of arrivals that release the barrier.
        members: u64,
    },
    /// Intra-workgroup wait: block until the workgroup's lead warp has
    /// passed its `epoch`-th [`MemOp::Barrier`]. Costs no memory traffic
    /// (GPU hardware barriers are core-local).
    LocalWait {
        /// Barrier epoch to wait for (1-based).
        epoch: u64,
    },
    /// Gate: the warp may not issue its next op before the given cycle.
    /// Used by timed trace replay to pin an op's earliest issue cycle to
    /// the cycle it issued at in the recorded run; costs no memory
    /// traffic and never stalls once the cycle has passed.
    WaitUntil(u64),
}

impl MemOp {
    /// Whether this op issues a global memory access when executed
    /// (locks/barriers issue several).
    pub fn is_memory(&self) -> bool {
        !matches!(
            self,
            MemOp::Compute(_) | MemOp::Fence | MemOp::LocalWait { .. } | MemOp::WaitUntil(_)
        )
    }

    /// Serializes this op into the `snap` codec. The tag space (0-9) is
    /// shared by the checkpoint (`RCCK`) and trace (`RCCT`) formats —
    /// append-only: new ops take fresh tags, existing tags never change
    /// meaning.
    pub fn snap(&self, w: &mut SnapWriter) {
        match self {
            MemOp::Load(a) => {
                w.u8(0);
                w.u64(a.0);
            }
            MemOp::Store(a, v) => {
                w.u8(1);
                w.u64(a.0);
                w.u64(*v);
            }
            MemOp::Atomic(a, at) => {
                w.u8(2);
                w.u64(a.0);
                match at {
                    AtomicOp::Add(v) => {
                        w.u8(0);
                        w.u64(*v);
                    }
                    AtomicOp::Exch(v) => {
                        w.u8(1);
                        w.u64(*v);
                    }
                    AtomicOp::Cas { expect, new } => {
                        w.u8(2);
                        w.u64(*expect);
                        w.u64(*new);
                    }
                    AtomicOp::Read => w.u8(3),
                }
            }
            MemOp::Fence => w.u8(3),
            MemOp::Compute(c) => {
                w.u8(4);
                w.u32(*c);
            }
            MemOp::Lock(a) => {
                w.u8(5);
                w.u64(a.0);
            }
            MemOp::Unlock(a) => {
                w.u8(6);
                w.u64(a.0);
            }
            MemOp::Barrier { word, members } => {
                w.u8(7);
                w.u64(word.0);
                w.u64(*members);
            }
            MemOp::LocalWait { epoch } => {
                w.u8(8);
                w.u64(*epoch);
            }
            MemOp::WaitUntil(t) => {
                w.u8(9);
                w.u64(*t);
            }
        }
    }

    /// Decodes an op written by [`MemOp::snap`].
    ///
    /// # Errors
    ///
    /// [`SnapError`] on an unknown tag or a truncated payload.
    pub fn unsnap(r: &mut SnapReader) -> Result<MemOp, SnapError> {
        Ok(match r.u8()? {
            0 => MemOp::Load(WordAddr(r.u64()?)),
            1 => MemOp::Store(WordAddr(r.u64()?), r.u64()?),
            2 => {
                let a = WordAddr(r.u64()?);
                let at = match r.u8()? {
                    0 => AtomicOp::Add(r.u64()?),
                    1 => AtomicOp::Exch(r.u64()?),
                    2 => AtomicOp::Cas {
                        expect: r.u64()?,
                        new: r.u64()?,
                    },
                    3 => AtomicOp::Read,
                    other => return Err(SnapError(format!("unknown atomic tag {other}"))),
                };
                MemOp::Atomic(a, at)
            }
            3 => MemOp::Fence,
            4 => MemOp::Compute(r.u32()?),
            5 => MemOp::Lock(WordAddr(r.u64()?)),
            6 => MemOp::Unlock(WordAddr(r.u64()?)),
            7 => MemOp::Barrier {
                word: WordAddr(r.u64()?),
                members: r.u64()?,
            },
            8 => MemOp::LocalWait { epoch: r.u64()? },
            9 => MemOp::WaitUntil(r.u64()?),
            other => return Err(SnapError(format!("unknown op tag {other}"))),
        })
    }
}

/// The program of one warp, plus its workgroup assignment.
#[derive(Debug, Clone, Default)]
pub struct WarpProgram {
    /// Operations in program order.
    pub ops: Vec<MemOp>,
    /// Workgroup (threadblock) this warp belongs to. Intra-workgroup
    /// sharing stays within a core; inter-workgroup sharing is what
    /// drives coherence traffic (Table IV's taxonomy).
    pub workgroup: WorkgroupId,
}

impl WarpProgram {
    /// Creates a program for a warp of `workgroup`.
    pub fn new(workgroup: WorkgroupId, ops: Vec<MemOp>) -> Self {
        WarpProgram { ops, workgroup }
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of global memory operations (lower bound: lock/barrier
    /// retries issue more).
    pub fn memory_ops(&self) -> usize {
        self.ops.iter().filter(|o| o.is_memory()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcc_common::addr::WordAddr;

    #[test]
    fn memory_op_taxonomy() {
        assert!(MemOp::Load(WordAddr(0)).is_memory());
        assert!(MemOp::Store(WordAddr(0), 1).is_memory());
        assert!(MemOp::Lock(WordAddr(0)).is_memory());
        assert!(!MemOp::Fence.is_memory());
        assert!(!MemOp::Compute(5).is_memory());
        assert!(!MemOp::LocalWait { epoch: 1 }.is_memory());
        assert!(!MemOp::WaitUntil(100).is_memory());
    }

    #[test]
    fn program_counts() {
        let p = WarpProgram::new(
            WorkgroupId(0),
            vec![
                MemOp::Load(WordAddr(0)),
                MemOp::Compute(3),
                MemOp::Store(WordAddr(1), 2),
                MemOp::Fence,
            ],
        );
        assert_eq!(p.len(), 4);
        assert_eq!(p.memory_ops(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn snap_round_trips_every_variant() {
        use rcc_common::snap::{SnapReader, SnapWriter};
        use rcc_core::msg::AtomicOp;
        let ops = [
            MemOp::Load(WordAddr(7)),
            MemOp::Store(WordAddr(8), 42),
            MemOp::Atomic(WordAddr(9), AtomicOp::Add(3)),
            MemOp::Atomic(WordAddr(9), AtomicOp::Exch(0)),
            MemOp::Atomic(WordAddr(9), AtomicOp::Cas { expect: 0, new: 1 }),
            MemOp::Atomic(WordAddr(9), AtomicOp::Read),
            MemOp::Fence,
            MemOp::Compute(12),
            MemOp::Lock(WordAddr(1)),
            MemOp::Unlock(WordAddr(1)),
            MemOp::Barrier {
                word: WordAddr(2),
                members: 4,
            },
            MemOp::LocalWait { epoch: 2 },
            MemOp::WaitUntil(10_000),
        ];
        let mut w = SnapWriter::new();
        for op in &ops {
            op.snap(&mut w);
        }
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        for op in &ops {
            assert_eq!(*op, MemOp::unsnap(&mut r).unwrap());
        }
        r.done().unwrap();
    }
}
