//! Per-core statistics: the raw material for Figs. 1 and 8.

use rcc_common::stats::Histogram;

/// The kind of the *preceding* operation an SC stall waited on — the
/// classification of Fig. 1b.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrevOpKind {
    /// Waiting on a previous load.
    Load,
    /// Waiting on a previous store.
    Store,
    /// Waiting on a previous atomic.
    Atomic,
}

/// Counters and histograms for one core.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct CoreStats {
    /// Instructions issued (memory + compute + synchronization steps).
    pub issued: u64,
    /// Global memory operations issued (loads/stores/atomics, including
    /// lock/barrier traffic).
    pub mem_ops: u64,
    /// Cycles some warp's ready memory op was blocked purely by the
    /// consistency ordering rules (summed over warps — Fig. 8 top).
    pub sc_stall_cycles: u64,
    /// Of those, cycles attributable to waiting on a prior load.
    pub sc_stall_cycles_prev_load: u64,
    /// … on a prior store.
    pub sc_stall_cycles_prev_store: u64,
    /// … on a prior atomic.
    pub sc_stall_cycles_prev_atomic: u64,
    /// Memory operations that experienced at least one SC stall cycle
    /// before issuing (numerator of Fig. 1a).
    pub stalled_mem_ops: u64,
    /// Stall duration of each stalled op (Fig. 8 bottom: resolve latency).
    pub stall_resolve: Histogram,
    /// Cycles an issue was blocked by structural hazards (L1 MSHR
    /// pressure), not ordering.
    pub structural_stall_cycles: u64,
    /// Cycles warps spent blocked at fences (weak ordering only).
    pub fence_stall_cycles: u64,
    /// Load latency, issue → completion (Fig. 1c).
    pub load_latency: Histogram,
    /// Store latency, issue → ack (Fig. 1c).
    pub store_latency: Histogram,
    /// Atomic latency.
    pub atomic_latency: Histogram,
    /// Lock acquisition attempts that failed (CAS lost).
    pub lock_retries: u64,
    /// Barrier poll operations issued.
    pub barrier_polls: u64,
}

impl CoreStats {
    /// Records an SC stall cycle attributed to `prev`.
    pub fn record_sc_stall_cycle(&mut self, prev: PrevOpKind) {
        self.record_sc_stall_cycles(prev, 1);
    }

    /// Records `cycles` consecutive SC stall cycles attributed to `prev`
    /// (bulk form used when the simulator fast-forwards over an idle
    /// stretch).
    pub fn record_sc_stall_cycles(&mut self, prev: PrevOpKind, cycles: u64) {
        self.sc_stall_cycles += cycles;
        match prev {
            PrevOpKind::Load => self.sc_stall_cycles_prev_load += cycles,
            PrevOpKind::Store => self.sc_stall_cycles_prev_store += cycles,
            PrevOpKind::Atomic => self.sc_stall_cycles_prev_atomic += cycles,
        }
    }

    /// Fraction of memory ops that ever stalled for SC (Fig. 1a).
    pub fn stalled_op_fraction(&self) -> f64 {
        if self.mem_ops == 0 {
            0.0
        } else {
            self.stalled_mem_ops as f64 / self.mem_ops as f64
        }
    }

    /// Fraction of SC stall cycles due to a prior store or atomic
    /// (Fig. 1b).
    pub fn stall_fraction_prev_write(&self) -> f64 {
        if self.sc_stall_cycles == 0 {
            0.0
        } else {
            (self.sc_stall_cycles_prev_store + self.sc_stall_cycles_prev_atomic) as f64
                / self.sc_stall_cycles as f64
        }
    }

    /// Merges another core's statistics into this one.
    pub fn merge(&mut self, other: &CoreStats) {
        self.issued += other.issued;
        self.mem_ops += other.mem_ops;
        self.sc_stall_cycles += other.sc_stall_cycles;
        self.sc_stall_cycles_prev_load += other.sc_stall_cycles_prev_load;
        self.sc_stall_cycles_prev_store += other.sc_stall_cycles_prev_store;
        self.sc_stall_cycles_prev_atomic += other.sc_stall_cycles_prev_atomic;
        self.stalled_mem_ops += other.stalled_mem_ops;
        self.stall_resolve.merge(&other.stall_resolve);
        self.structural_stall_cycles += other.structural_stall_cycles;
        self.fence_stall_cycles += other.fence_stall_cycles;
        self.load_latency.merge(&other.load_latency);
        self.store_latency.merge(&other.store_latency);
        self.atomic_latency.merge(&other.atomic_latency);
        self.lock_retries += other.lock_retries;
        self.barrier_polls += other.barrier_polls;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_attribution() {
        let mut s = CoreStats::default();
        s.record_sc_stall_cycle(PrevOpKind::Store);
        s.record_sc_stall_cycle(PrevOpKind::Store);
        s.record_sc_stall_cycle(PrevOpKind::Atomic);
        s.record_sc_stall_cycle(PrevOpKind::Load);
        assert_eq!(s.sc_stall_cycles, 4);
        assert!((s.stall_fraction_prev_write() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn stalled_fraction() {
        assert_eq!(CoreStats::default().stalled_op_fraction(), 0.0);
        let s = CoreStats {
            mem_ops: 10,
            stalled_mem_ops: 3,
            ..CoreStats::default()
        };
        assert!((s.stalled_op_fraction() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = CoreStats {
            issued: 5,
            ..CoreStats::default()
        };
        a.load_latency.record(100);
        let mut b = CoreStats {
            issued: 7,
            ..CoreStats::default()
        };
        b.load_latency.record(200);
        b.record_sc_stall_cycle(PrevOpKind::Store);
        a.merge(&b);
        assert_eq!(a.issued, 12);
        assert_eq!(a.load_latency.count(), 2);
        assert_eq!(a.sc_stall_cycles, 1);
    }
}
