//! Litmus tests through the public API (IRIW = write atomicity, the
//! property TC-Weak gives up and RCC keeps — Table I).

use rcc_repro::coherence::ProtocolKind;
use rcc_repro::common::GpuConfig;
use rcc_repro::sim::litmus::{count_forbidden, run_litmus};
use rcc_repro::workloads::litmus;

#[test]
fn iriw_write_atomicity_under_sc_protocols() {
    let cfg = GpuConfig::small();
    for kind in [
        ProtocolKind::Mesi,
        ProtocolKind::TcStrong,
        ProtocolKind::RccSc,
    ] {
        let n = count_forbidden(kind, &cfg, 25, |seed| litmus::iriw(cfg.num_cores, seed));
        assert_eq!(n, 0, "{kind} must keep write atomicity");
    }
}

#[test]
fn store_buffering_forbidden_under_sc() {
    let cfg = GpuConfig::small();
    for kind in [
        ProtocolKind::Mesi,
        ProtocolKind::TcStrong,
        ProtocolKind::RccSc,
    ] {
        let n = count_forbidden(kind, &cfg, 25, |seed| {
            litmus::store_buffering(cfg.num_cores, seed)
        });
        assert_eq!(n, 0, "{kind}");
    }
}

#[test]
fn outcome_values_are_binary() {
    let cfg = GpuConfig::small();
    let out = run_litmus(
        ProtocolKind::RccWo,
        &cfg,
        &litmus::store_buffering(cfg.num_cores, 3),
    )
    .expect("litmus run succeeds");
    for v in &out.values {
        assert!(*v <= 1);
    }
}
