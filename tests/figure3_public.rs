//! The paper's Fig. 3 walkthrough, driven end-to-end through the public
//! API (the protocol-level unit test lives in `rcc-core`; this version
//! proves the scenario-construction API is usable from outside).

use rcc_repro::coherence::msg::{Access, AccessKind, AccessOutcome, CompletionKind};
use rcc_repro::coherence::protocol::{L1Cache, L1Outbox, L2Bank, L2Outbox, Protocol};
use rcc_repro::coherence::rcc::RccProtocol;
use rcc_repro::common::addr::LineAddr;
use rcc_repro::common::time::{Cycle, Timestamp};
use rcc_repro::common::{CoreId, GpuConfig, PartitionId, WarpId};
use rcc_repro::mem::LineData;

/// Instantly pumps one access through L1 → L2 → L1 and returns the
/// completion's timestamp.
fn pump(
    l1: &mut <RccProtocol as Protocol>::L1,
    l2: &mut <RccProtocol as Protocol>::L2,
    addr: rcc_repro::common::addr::WordAddr,
    kind: AccessKind,
) -> (Timestamp, Option<u64>) {
    let mut out = L1Outbox::new();
    let outcome = l1.access(
        Cycle(0),
        Access {
            warp: WarpId(0),
            addr,
            kind,
        },
        &mut out,
    );
    if let AccessOutcome::Done(c) = outcome {
        let v = match c.kind {
            CompletionKind::LoadDone { value } => Some(value),
            _ => None,
        };
        return (c.ts, v);
    }
    let mut l2out = L2Outbox::new();
    for req in out.to_l2 {
        l2.handle_req(Cycle(0), req, &mut l2out).unwrap();
    }
    assert!(
        l2out.dram_fetch.is_empty(),
        "walkthrough lines are resident"
    );
    let mut out = L1Outbox::new();
    for resp in l2out.to_l1 {
        l1.handle_resp(Cycle(0), resp, &mut out);
    }
    let c = out.completions[0];
    let v = match c.kind {
        CompletionKind::LoadDone { value } => Some(value),
        _ => None,
    };
    (c.ts, v)
}

#[test]
fn figure3_through_public_api() {
    let mut cfg = GpuConfig::small();
    cfg.rcc.fixed_lease = Some(10);
    let protocol = RccProtocol::sequential(&cfg);
    let mut c0 = protocol.make_l1(CoreId(0), &cfg);
    let mut c1 = protocol.make_l1(CoreId(1), &cfg);
    let mut l2 = protocol.make_l2(PartitionId(0), &cfg);

    let a = LineAddr(0);
    let b = LineAddr(1);
    c0.advance_now(Timestamp(20));
    c0.install_line(a, LineData::zeroed(), Timestamp(10));
    c0.install_line(b, LineData::zeroed(), Timestamp(10));
    c1.install_line(a, LineData::zeroed(), Timestamp(10));
    c1.install_line(b, LineData::zeroed(), Timestamp(10));
    l2.install_line(a, LineData::zeroed(), Timestamp(10), Timestamp(10), 10);
    let mut bdata = LineData::zeroed();
    bdata.set_word(0, 2);
    l2.install_line(b, bdata, Timestamp(30), Timestamp(10), 10);

    // C0: ST A → ver 20. C0: LD B → now 30, lease to 40.
    let (ts, _) = pump(
        &mut c0,
        &mut l2,
        a.word(0),
        AccessKind::Store { value: 100 },
    );
    assert_eq!(ts, Timestamp(20));
    let (ts, v) = pump(&mut c0, &mut l2, b.word(0), AccessKind::Load);
    assert_eq!((ts, v), (Timestamp(30), Some(2)));
    // C1: ST B → 41 (past the lease). C1: LD A → picks up 100.
    let (ts, _) = pump(
        &mut c1,
        &mut l2,
        b.word(0),
        AccessKind::Store { value: 200 },
    );
    assert_eq!(ts, Timestamp(41));
    let (_, v) = pump(&mut c1, &mut l2, a.word(0), AccessKind::Load);
    assert_eq!(v, Some(100));
    // C0: ST B shares version 41; ST A → 52.
    let (ts, _) = pump(
        &mut c0,
        &mut l2,
        b.word(0),
        AccessKind::Store { value: 300 },
    );
    assert_eq!(ts, Timestamp(41));
    let (ts, _) = pump(
        &mut c0,
        &mut l2,
        a.word(0),
        AccessKind::Store { value: 400 },
    );
    assert_eq!(ts, Timestamp(52));
    // C1: LD A still sees 100 — logically before C0's second store.
    let (ts, v) = pump(&mut c1, &mut l2, a.word(0), AccessKind::Load);
    assert_eq!((ts, v), (Timestamp(41), Some(100)));
}
