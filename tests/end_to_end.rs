//! Cross-crate integration: the full public API pipeline, protocol
//! cross-checks, and metric consistency.

use rcc_repro::coherence::ProtocolKind;
use rcc_repro::common::GpuConfig;
use rcc_repro::sim::runner::{simulate, SimOptions};
use rcc_repro::workloads::{Benchmark, Scale};

#[test]
fn full_pipeline_smoke() {
    let cfg = GpuConfig::small();
    let wl = Benchmark::Vpr.generate(&cfg, &Scale::quick(), 3);
    let m = simulate(ProtocolKind::RccSc, &cfg, &wl, &SimOptions::checked());
    assert!(m.cycles > 0);
    assert!(m.ipc() > 0.0);
    assert!(m.traffic.total_flits() > 0);
    assert!(m.energy.total_pj() > 0.0);
    assert!(m.dram_reads > 0);
    assert_eq!(m.sc_violations, 0);
}

#[test]
fn message_class_usage_is_protocol_specific() {
    use rcc_repro::common::stats::MsgClass;
    let cfg = GpuConfig::small();
    let wl = Benchmark::Bh.generate(&cfg, &Scale::quick(), 5);
    let mesi = simulate(ProtocolKind::Mesi, &cfg, &wl, &SimOptions::fast());
    let rcc = simulate(ProtocolKind::RccSc, &cfg, &wl, &SimOptions::fast());
    let tcw = simulate(ProtocolKind::TcWeak, &cfg, &wl, &SimOptions::fast());
    // Invalidations belong to MESI alone.
    assert!(mesi.traffic.msgs(MsgClass::Inv) > 0);
    assert_eq!(rcc.traffic.msgs(MsgClass::Inv), 0);
    assert_eq!(tcw.traffic.msgs(MsgClass::Inv), 0);
    // Renewals belong to RCC alone.
    assert!(
        rcc.traffic.msgs(MsgClass::Renew) > 0,
        "bh re-reads tree data"
    );
    assert_eq!(mesi.traffic.msgs(MsgClass::Renew), 0);
    assert_eq!(tcw.traffic.msgs(MsgClass::Renew), 0);
    // Everyone moves loads and stores.
    for m in [&mesi, &rcc, &tcw] {
        assert!(m.traffic.msgs(MsgClass::LoadReq) > 0);
        assert!(m.traffic.msgs(MsgClass::StoreReq) > 0);
        assert!(m.traffic.msgs(MsgClass::StoreAck) > 0);
    }
}

#[test]
fn energy_tracks_traffic_and_vcs() {
    let cfg = GpuConfig::small();
    let wl = Benchmark::Cl.generate(&cfg, &Scale::quick(), 5);
    let mesi = simulate(ProtocolKind::Mesi, &cfg, &wl, &SimOptions::fast());
    let rcc = simulate(ProtocolKind::RccSc, &cfg, &wl, &SimOptions::fast());
    // MESI leaks more: five virtual networks vs two (Table III).
    let mesi_static_per_cycle = mesi.energy.static_pj / mesi.cycles as f64;
    let rcc_static_per_cycle = rcc.energy.static_pj / rcc.cycles as f64;
    assert!((mesi_static_per_cycle / rcc_static_per_cycle - 2.5).abs() < 1e-6);
    // Dynamic energy is proportional to flits.
    let ratio = mesi.energy.router_pj / rcc.energy.router_pj;
    let flit_ratio = mesi.traffic.total_flits() as f64 / rcc.traffic.total_flits() as f64;
    assert!((ratio - flit_ratio).abs() < 1e-6);
}

#[test]
fn sc_protocols_agree_on_final_memory_effects() {
    // Same workload, different SC protocols: the multiset of (load
    // count, store count, atomic count) must match (dynamic sync retries
    // vary, static ops do not).
    let cfg = GpuConfig::small();
    let wl = Benchmark::Cl.generate(&cfg, &Scale::quick(), 9);
    let runs: Vec<_> = [
        ProtocolKind::Mesi,
        ProtocolKind::TcStrong,
        ProtocolKind::RccSc,
    ]
    .iter()
    .map(|k| simulate(*k, &cfg, &wl, &SimOptions::checked()))
    .collect();
    for w in runs.windows(2) {
        assert_eq!(w[0].l1.stores, w[1].l1.stores, "cl has no retried stores");
        assert_eq!(
            w[0].core.mem_ops, w[1].core.mem_ops,
            "cl has no dynamic sync"
        );
    }
}

#[test]
fn deterministic_given_seed() {
    let cfg = GpuConfig::small();
    let wl = Benchmark::Dlb.generate(&cfg, &Scale::quick(), 21);
    let a = simulate(ProtocolKind::RccSc, &cfg, &wl, &SimOptions::fast());
    let b = simulate(ProtocolKind::RccSc, &cfg, &wl, &SimOptions::fast());
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.traffic.total_flits(), b.traffic.total_flits());
    assert_eq!(a.core.sc_stall_cycles, b.core.sc_stall_cycles);
    let wl2 = Benchmark::Dlb.generate(&cfg, &Scale::quick(), 22);
    let c = simulate(ProtocolKind::RccSc, &cfg, &wl2, &SimOptions::fast());
    assert_ne!(a.cycles, c.cycles, "different seed, different run");
}

#[test]
fn ideal_is_an_upper_bound_on_inter_workgroup_sc() {
    let cfg = GpuConfig::small();
    for b in [Benchmark::Dlb, Benchmark::Cl] {
        let wl = b.generate(&cfg, &Scale::quick(), 13);
        let mesi = simulate(ProtocolKind::Mesi, &cfg, &wl, &SimOptions::fast());
        let rcc = simulate(ProtocolKind::RccSc, &cfg, &wl, &SimOptions::fast());
        let ideal = simulate(ProtocolKind::IdealSc, &cfg, &wl, &SimOptions::fast());
        assert!(
            ideal.cycles <= mesi.cycles,
            "{}: ideal ({}) must not lose to MESI ({})",
            b.name(),
            ideal.cycles,
            mesi.cycles
        );
        assert!(ideal.cycles <= rcc.cycles + rcc.cycles / 10);
    }
}

#[test]
fn table_v_census_is_exposed() {
    use rcc_repro::coherence::census::ProtocolCensus;
    let rows = ProtocolCensus::table_v();
    assert_eq!(rows.len(), 4);
    let rcc = rows[3];
    assert_eq!(rcc.l2_states(), 4);
    assert_eq!(rcc.l2_transitions, 14);
}
