//! Quickstart: simulate one workload under RCC and read the results.
//!
//! Builds the paper's GTX 480-like machine (Table III), generates the
//! `hotspot` workload, runs it under RCC with SC verification enabled,
//! and prints the headline metrics. Then replays the logical-time
//! intuition of the paper's Fig. 2 directly against the protocol
//! controllers: a store acquires write permission *instantly* by
//! advancing logical clocks, and a reader with an old logical time can
//! legitimately keep reading its cached copy.
//!
//! Run with: `cargo run --release --example quickstart`

use rcc_repro::coherence::protocol::{L1Cache, L1Outbox, L2Bank, L2Outbox, Protocol};
use rcc_repro::coherence::rcc::RccProtocol;
use rcc_repro::coherence::ProtocolKind;
use rcc_repro::common::addr::LineAddr;
use rcc_repro::common::time::{Cycle, Timestamp};
use rcc_repro::common::GpuConfig;
use rcc_repro::mem::LineData;
use rcc_repro::sim::runner::{simulate, SimOptions};
use rcc_repro::workloads::{Benchmark, Scale};

fn main() {
    // --- Part 1: a full-system run ---------------------------------
    let cfg = GpuConfig::small(); // use GpuConfig::gtx480() for the paper machine
    let workload = Benchmark::Hsp.generate(&cfg, &Scale::quick(), 42);
    let metrics = simulate(ProtocolKind::RccSc, &cfg, &workload, &SimOptions::checked());
    println!("== full-system run: {} under RCC-SC ==", metrics.workload);
    println!("cycles:            {}", metrics.cycles);
    println!("IPC:               {:.3}", metrics.ipc());
    println!("memory ops:        {}", metrics.core.mem_ops);
    println!(
        "L1 load hit rate:  {:.1}%",
        100.0 * metrics.l1.load_hits as f64 / metrics.l1.loads.max(1) as f64
    );
    println!(
        "expired loads:     {} ({:.1}%)",
        metrics.l1.expired_loads,
        100.0 * metrics.expired_load_fraction()
    );
    println!("NoC flits:         {}", metrics.traffic.total_flits());
    println!("SC violations:     {} (checked)", metrics.sc_violations);
    assert_eq!(metrics.sc_violations, 0);

    // --- Part 2: logical time up close (the paper's Fig. 2) --------
    println!("\n== logical-time walkthrough (Fig. 2 of the paper) ==");
    let mut cfg = GpuConfig::small();
    cfg.rcc.fixed_lease = Some(10);
    let protocol = RccProtocol::sequential(&cfg);
    let mut writer = protocol.make_l1(rcc_repro::common::CoreId(0), &cfg);
    let mut reader = protocol.make_l1(rcc_repro::common::CoreId(1), &cfg);
    let mut l2 = protocol.make_l2(rcc_repro::common::PartitionId(0), &cfg);

    let a = LineAddr(0);
    // The reader holds a lease on A's old value (valid through t10).
    reader.install_line(a, LineData::zeroed(), Timestamp(10));
    l2.install_line(a, LineData::zeroed(), Timestamp(0), Timestamp(10), 10);
    println!("reader holds A until {}", reader.lease_exp(a).unwrap());

    // The writer stores to A: one message, no invalidations, no waiting —
    // the L2 simply advances A's version past the outstanding lease.
    let mut out = L1Outbox::new();
    use rcc_repro::coherence::msg::{Access, AccessKind};
    writer.access(
        Cycle(0),
        Access {
            warp: rcc_repro::common::WarpId(0),
            addr: a.word(0),
            kind: AccessKind::Store { value: 99 },
        },
        &mut out,
    );
    let mut l2out = L2Outbox::new();
    for req in out.to_l2 {
        l2.handle_req(Cycle(0), req, &mut l2out).unwrap();
    }
    let (ver, _) = l2.line_times(a).unwrap();
    println!("writer stored; A's version advanced to {ver} (past the lease — rule 3)");
    let mut out = L1Outbox::new();
    for resp in l2out.to_l1 {
        writer.handle_resp(Cycle(0), resp, &mut out);
    }
    println!(
        "writer's clock is now {} — write permission was instant",
        writer.now()
    );

    // The reader's logical time is still 0: its cached copy of A remains
    // readable (the read is ordered *before* the store in logical time).
    assert!(reader.now() < Timestamp(11));
    println!(
        "reader's clock is {} — its lease on old A is still valid: SC in logical time",
        reader.now()
    );
}
