//! The paper's `data`/`done` message-passing example (Section II-A),
//! run as a litmus test under every protocol.
//!
//! Under any SC protocol the outcome `done = 1 ∧ data = 0` is forbidden;
//! TC-Weak (without fences) exhibits it, and fences restore order.
//!
//! Run with: `cargo run --release --example message_passing`

use rcc_repro::coherence::ProtocolKind;
use rcc_repro::common::GpuConfig;
use rcc_repro::sim::litmus::count_forbidden;
use rcc_repro::workloads::litmus;

fn main() {
    let cfg = GpuConfig::small();
    let runs = 50;
    println!("message passing (mp): W data; W done || R done; R data");
    println!("forbidden outcome: done = 1 and data = 0   ({runs} randomized runs)\n");
    println!("{:10} {:>14} {:>14}", "protocol", "mp", "mp+fences");
    for kind in [
        ProtocolKind::Mesi,
        ProtocolKind::TcStrong,
        ProtocolKind::TcWeak,
        ProtocolKind::RccSc,
        ProtocolKind::RccWo,
    ] {
        let mut weak_cfg = cfg.clone();
        // Long leases widen TC-Weak's stale-read window, as in Section II.
        weak_cfg.tc.lease_cycles = 2000;
        let plain = count_forbidden(kind, &weak_cfg, runs, |seed| {
            litmus::message_passing(cfg.num_cores, seed)
        });
        let fenced = count_forbidden(kind, &weak_cfg, runs, |seed| {
            litmus::message_passing_fenced(cfg.num_cores, seed)
        });
        println!(
            "{:10} {:>10}/{runs} {:>10}/{runs}",
            kind.label(),
            plain,
            fenced
        );
        if kind.supports_sc() {
            assert_eq!(plain, 0, "{kind} must forbid the weak outcome");
        }
        assert_eq!(fenced, 0, "fences must restore order for {kind}");
    }
    println!("\nSC protocols (MESI, TCS, RCC-SC) never show the forbidden outcome;");
    println!("TC-Weak does — the paper's argument for why TCW cannot support SC.");
}
