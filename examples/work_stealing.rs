//! The paper's work-stealing case study (`dlb`, Section IV-C): lock-
//! protected per-workgroup queues with rare steals, fenced for weak
//! memory models.
//!
//! RCC lets schedulers "progress independently in their own epochs until
//! actual sharing occurs", while TC-Weak's fences stall until stores are
//! globally visible even when no steal happens.
//!
//! Run with: `cargo run --release --example work_stealing`

use rcc_repro::coherence::ProtocolKind;
use rcc_repro::common::GpuConfig;
use rcc_repro::sim::runner::{simulate, SimOptions};
use rcc_repro::workloads::{Benchmark, Scale};

fn main() {
    let cfg = GpuConfig::small();
    let wl = Benchmark::Dlb.generate(&cfg, &Scale::quick(), 11);
    println!(
        "dlb: work-stealing queues, {} static memory ops\n",
        wl.static_mem_ops()
    );
    println!(
        "{:10} {:>9} {:>9} {:>11} {:>12} {:>12} {:>10}",
        "protocol", "cycles", "speedup", "lock-retry", "sc-stall-cyc", "fence-stall", "atomics"
    );
    let base = simulate(ProtocolKind::Mesi, &cfg, &wl, &SimOptions::checked());
    for kind in [
        ProtocolKind::Mesi,
        ProtocolKind::TcStrong,
        ProtocolKind::TcWeak,
        ProtocolKind::RccSc,
        ProtocolKind::RccWo,
    ] {
        let opts = if kind.supports_sc() {
            SimOptions::checked()
        } else {
            SimOptions::fast()
        };
        let m = simulate(kind, &cfg, &wl, &opts);
        println!(
            "{:10} {:>9} {:>8.3}x {:>11} {:>12} {:>12} {:>10}",
            kind.label(),
            m.cycles,
            m.speedup_over(&base),
            m.core.lock_retries,
            m.core.sc_stall_cycles,
            m.core.fence_stall_cycles,
            m.l2.atomics,
        );
    }
    println!("\nNote how the weakly ordered protocols trade SC stalls for fence");
    println!("stalls — and how RCC's logical time keeps both small.");
}
