//! Full litmus matrix: every consistency litmus test under every
//! protocol configuration.
//!
//! Each cell counts how many of the randomized runs showed the
//! SC-forbidden outcome. Rows for SC protocols (MESI, MESI-WB,
//! TC-Strong, RCC-SC, SC-IDEAL) must be all zeros; TC-Weak and RCC-WO
//! are allowed non-zero cells on the unfenced tests (that is what
//! "weakly ordered" means — Table I), but never on `corr` (per-location
//! coherence) or the `+fence` variants (data-race-free programs get SC).
//!
//! Run with: `cargo run --release --example litmus_matrix`

use rcc_repro::coherence::ProtocolKind;
use rcc_repro::common::GpuConfig;
use rcc_repro::sim::litmus::count_forbidden;
use rcc_repro::workloads::litmus;
use rcc_repro::workloads::litmus::Litmus;

type LitmusMaker = fn(usize, u64) -> Litmus;

fn main() {
    let mut cfg = GpuConfig::small();
    // Long physical leases widen TC-Weak's stale-read window so its weak
    // behaviour is observable within a handful of runs (Section II-A).
    cfg.tc.lease_cycles = 2000;
    let runs = 30;

    let tests: Vec<(&str, LitmusMaker)> = vec![
        ("mp", litmus::message_passing),
        ("mp+fence", litmus::message_passing_fenced),
        ("mp+atomic", litmus::mp_atomic),
        ("sb", litmus::store_buffering),
        ("sb+fence", litmus::store_buffering_fenced),
        ("lb", litmus::load_buffering),
        ("wrc", litmus::wrc),
        ("corr", litmus::corr),
        ("iriw", litmus::iriw),
    ];

    println!("forbidden-outcome counts over {runs} randomized runs per cell\n");
    print!("{:10}", "protocol");
    for (name, _) in &tests {
        print!(" {name:>9}");
    }
    println!();
    println!("{}", "-".repeat(10 + tests.len() * 10));

    for kind in ProtocolKind::ALL {
        print!("{:10}", kind.label());
        for (_, make) in &tests {
            let n = count_forbidden(kind, &cfg, runs, |seed| make(cfg.num_cores, seed));
            print!(" {n:>9}");
            if kind.supports_sc() || kind == ProtocolKind::IdealSc {
                assert_eq!(n, 0, "{kind} showed an SC-forbidden outcome");
            }
        }
        println!();
    }

    println!(
        "\nSC rows are asserted all-zero; non-zero cells appear only for\n\
         the weakly ordered configurations on unfenced tests (Table I)."
    );
}
