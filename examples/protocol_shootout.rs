//! Mini Fig. 9a: every benchmark under every protocol on the small
//! machine — a fast overview of the paper's headline comparison.
//!
//! Run with: `cargo run --release --example protocol_shootout`

use rcc_repro::coherence::ProtocolKind;
use rcc_repro::common::stats::gmean;
use rcc_repro::common::GpuConfig;
use rcc_repro::sim::runner::{simulate, SimOptions};
use rcc_repro::workloads::{Benchmark, Scale};

fn main() {
    let cfg = GpuConfig::small();
    let scale = Scale::quick();
    let kinds = [
        ProtocolKind::MesiWb,
        ProtocolKind::TcStrong,
        ProtocolKind::TcWeak,
        ProtocolKind::RccSc,
        ProtocolKind::RccWo,
        ProtocolKind::IdealSc,
    ];
    println!("speedup over MESI (small machine, quick scale)\n");
    print!("{:6} {:>9}", "bench", "MESI-cyc");
    for k in kinds {
        print!(" {:>8}", k.label());
    }
    println!();
    let mut per_kind: Vec<Vec<f64>> = vec![Vec::new(); kinds.len()];
    for bench in Benchmark::ALL {
        let wl = bench.generate(&cfg, &scale, 7);
        let base = simulate(ProtocolKind::Mesi, &cfg, &wl, &SimOptions::fast());
        print!("{:6} {:>9}", bench.name(), base.cycles);
        for (i, k) in kinds.iter().enumerate() {
            let m = simulate(*k, &cfg, &wl, &SimOptions::fast());
            let s = m.speedup_over(&base);
            per_kind[i].push(s);
            print!(" {:>8.3}", s);
        }
        println!();
    }
    print!("{:16}", "gmean");
    for v in &per_kind {
        print!(" {:>8.3}", gmean(v.iter().copied()).unwrap_or(1.0));
    }
    println!();
}
