//! Client subcommands for the `rcc-serve` batch service: `submit`,
//! `status`, and `watch` speak the line-delimited JSON protocol over
//! TCP and print the raw response lines (script-friendly; one JSON
//! document per line).

use rcc_repro::obs::json::{self, JsonValue};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;

fn get(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn connect(args: &[String]) -> Result<TcpStream, String> {
    let addr = get(args, "--addr").ok_or("missing --addr HOST:PORT")?;
    TcpStream::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))
}

fn send_line(stream: &mut TcpStream, line: &str) -> Result<(), String> {
    stream
        .write_all(format!("{line}\n").as_bytes())
        .map_err(|e| format!("send: {e}"))
}

fn read_line(reader: &mut BufReader<TcpStream>) -> Result<String, String> {
    let mut resp = String::new();
    reader
        .read_line(&mut resp)
        .map_err(|e| format!("recv: {e}"))?;
    if resp.is_empty() {
        return Err("server closed the connection".into());
    }
    Ok(resp.trim_end().to_string())
}

/// True when the response says `"ok": true`.
fn is_ok(resp: &str) -> bool {
    json::parse(resp)
        .ok()
        .and_then(|v| v.get("ok").and_then(JsonValue::as_bool))
        == Some(true)
}

fn job_arg(args: &[String]) -> Result<u64, String> {
    get(args, "--job")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| "missing --job N".into())
}

/// Streams watch output for `job` until the final status line; returns
/// success iff the job finished `done`.
fn stream_watch(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    job: u64,
) -> Result<bool, String> {
    send_line(stream, &format!("{{\"cmd\": \"watch\", \"job\": {job}}}"))?;
    loop {
        let line = read_line(reader)?;
        println!("{line}");
        let Ok(v) = json::parse(&line) else { continue };
        match v.get("state").and_then(JsonValue::as_str) {
            Some("done") => return Ok(true),
            Some("failed") => return Ok(false),
            _ if v.get("ok").and_then(JsonValue::as_bool) == Some(false) => return Ok(false),
            _ => {}
        }
    }
}

/// Entry point for `submit` / `status` / `watch`. `cmd` is the
/// subcommand name, `args` everything after it.
pub fn run(cmd: &str, args: &[String]) -> ExitCode {
    match run_inner(cmd, args) {
        Ok(ok) => {
            if ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_inner(cmd: &str, args: &[String]) -> Result<bool, String> {
    let mut stream = connect(args)?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    match cmd {
        "submit" => {
            let spec = match (get(args, "--spec"), get(args, "--file")) {
                (Some(s), None) => s,
                (None, Some(path)) => {
                    std::fs::read_to_string(&path).map_err(|e| format!("read {path}: {e}"))?
                }
                _ => return Err("need exactly one of --spec JSON or --file PATH".into()),
            };
            // One request per line: the spec must collapse to one line.
            let spec: String = spec.split_whitespace().collect::<Vec<_>>().join(" ");
            send_line(
                &mut stream,
                &format!("{{\"cmd\": \"submit\", \"spec\": {spec}}}"),
            )?;
            let resp = read_line(&mut reader)?;
            println!("{resp}");
            if !is_ok(&resp) {
                return Ok(false);
            }
            if args.iter().any(|a| a == "--watch") {
                let job = json::parse(&resp)
                    .ok()
                    .and_then(|v| v.get("job").and_then(JsonValue::as_u64))
                    .ok_or("response carried no job id")?;
                return stream_watch(&mut stream, &mut reader, job);
            }
            Ok(true)
        }
        "status" => {
            let job = job_arg(args)?;
            send_line(
                &mut stream,
                &format!("{{\"cmd\": \"status\", \"job\": {job}}}"),
            )?;
            let resp = read_line(&mut reader)?;
            println!("{resp}");
            Ok(is_ok(&resp))
        }
        "watch" => {
            let job = job_arg(args)?;
            stream_watch(&mut stream, &mut reader, job)
        }
        _ => Err(format!("unknown subcommand {cmd}")),
    }
}
