//! Client subcommands for the `rcc-serve` batch service: `submit`,
//! `status`, and `watch` speak the line-delimited JSON protocol over
//! TCP and print the raw response lines (script-friendly; one JSON
//! document per line).
//!
//! The client is built for a service that may crash and restart under
//! it: connects retry with exponential backoff (`--retries`, default
//! 5), a typed `overloaded`/`shed` reply is retried after the server's
//! `retry_after_ms` hint, a dropped connection mid-`watch` reconnects
//! and re-issues the watch, and a dropped `submit` is retried only when
//! the spec carries a `dedup_key` — the key makes resubmission
//! idempotent, so a reconnect can never double-run a job.

use rcc_repro::obs::json::{self, JsonValue};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::Duration;

const RETRY_BASE_MS: u64 = 100;
const RETRY_CAP_MS: u64 = 5_000;

fn get(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn retries(args: &[String]) -> u32 {
    get(args, "--retries")
        .and_then(|s| s.parse().ok())
        .unwrap_or(5)
}

/// Deterministic exponential backoff, capped: 100, 200, 400, ... 5000.
fn backoff_ms(attempt: u32) -> u64 {
    (RETRY_BASE_MS << attempt.min(6)).min(RETRY_CAP_MS)
}

/// One TCP connection plus its line reader.
struct Conn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn open(addr: &str) -> Result<Conn, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        let reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
        Ok(Conn { stream, reader })
    }

    fn send_line(&mut self, line: &str) -> Result<(), String> {
        self.stream
            .write_all(format!("{line}\n").as_bytes())
            .map_err(|e| format!("send: {e}"))
    }

    fn read_line(&mut self) -> Result<String, String> {
        let mut resp = String::new();
        self.reader
            .read_line(&mut resp)
            .map_err(|e| format!("recv: {e}"))?;
        if resp.is_empty() {
            return Err("server closed the connection".into());
        }
        Ok(resp.trim_end().to_string())
    }
}

/// Connect, retrying with backoff — the service may be mid-restart.
fn connect_with_backoff(args: &[String]) -> Result<Conn, String> {
    let addr = get(args, "--addr").ok_or("missing --addr HOST:PORT")?;
    let max = retries(args);
    let mut attempt = 0u32;
    loop {
        match Conn::open(&addr) {
            Ok(conn) => return Ok(conn),
            Err(e) if attempt < max => {
                let wait = backoff_ms(attempt);
                eprintln!("{e}; retrying in {wait}ms");
                std::thread::sleep(Duration::from_millis(wait));
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// True when the response says `"ok": true`.
fn is_ok(resp: &str) -> bool {
    json::parse(resp)
        .ok()
        .and_then(|v| v.get("ok").and_then(JsonValue::as_bool))
        == Some(true)
}

/// The `retry_after_ms` hint, when the reply is a typed
/// `overloaded`/`shed` rejection (bounded admission, load shedding).
fn overload_hint(resp: &str) -> Option<u64> {
    let v = json::parse(resp).ok()?;
    let err = v.get("error")?;
    match err.get("kind").and_then(JsonValue::as_str) {
        Some("overloaded") | Some("shed") => Some(
            err.get("retry_after_ms")
                .and_then(JsonValue::as_u64)
                .unwrap_or(RETRY_BASE_MS),
        ),
        _ => None,
    }
}

fn job_arg(args: &[String]) -> Result<u64, String> {
    get(args, "--job")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| "missing --job N".into())
}

/// Streams watch output for `job` until the final status line; returns
/// success iff the job finished `done`. A dropped connection (the
/// service crashed or was restarted under us) reconnects with backoff
/// and re-issues the watch — recovery replays terminal state from the
/// journal, so the answer survives the crash.
fn stream_watch(conn: &mut Conn, args: &[String], job: u64) -> Result<bool, String> {
    let max = retries(args);
    let mut attempt = 0u32;
    conn.send_line(&format!("{{\"cmd\": \"watch\", \"job\": {job}}}"))?;
    loop {
        let line = match conn.read_line() {
            Ok(line) => line,
            Err(e) if attempt < max => {
                let wait = backoff_ms(attempt);
                eprintln!("{e}; re-watching job {job} in {wait}ms");
                std::thread::sleep(Duration::from_millis(wait));
                attempt += 1;
                *conn = connect_with_backoff(args)?;
                conn.send_line(&format!("{{\"cmd\": \"watch\", \"job\": {job}}}"))?;
                continue;
            }
            Err(e) => return Err(e),
        };
        println!("{line}");
        let Ok(v) = json::parse(&line) else { continue };
        match v.get("state").and_then(JsonValue::as_str) {
            Some("done") => return Ok(true),
            // Quarantined is terminal failure: the job crash-looped and
            // the service gave up on it.
            Some("failed") | Some("quarantined") => return Ok(false),
            _ if v.get("ok").and_then(JsonValue::as_bool) == Some(false) => return Ok(false),
            _ => {}
        }
    }
}

/// Submits `spec`, honoring overload retry-after hints and — when the
/// spec carries a `dedup_key` — retrying dropped connections, since the
/// key makes resubmission idempotent. Returns `(conn, response)` so a
/// follow-up watch reuses the connection that got the accept.
fn submit_with_retry(args: &[String], spec: &str) -> Result<(Conn, String), String> {
    let idempotent = spec.contains("dedup_key");
    let line = format!("{{\"cmd\": \"submit\", \"spec\": {spec}}}");
    let max = retries(args);
    let mut attempt = 0u32;
    loop {
        let mut conn = connect_with_backoff(args)?;
        let resp = match conn.send_line(&line).and_then(|()| conn.read_line()) {
            Ok(resp) => resp,
            Err(e) if idempotent && attempt < max => {
                let wait = backoff_ms(attempt);
                eprintln!("{e}; resubmitting (dedup_key makes it safe) in {wait}ms");
                std::thread::sleep(Duration::from_millis(wait));
                attempt += 1;
                continue;
            }
            Err(e) => return Err(e),
        };
        if let Some(hint) = overload_hint(&resp) {
            if attempt < max {
                eprintln!("server overloaded; retrying in {hint}ms");
                std::thread::sleep(Duration::from_millis(hint));
                attempt += 1;
                continue;
            }
        }
        return Ok((conn, resp));
    }
}

/// Entry point for `submit` / `status` / `watch`. `cmd` is the
/// subcommand name, `args` everything after it.
pub fn run(cmd: &str, args: &[String]) -> ExitCode {
    match run_inner(cmd, args) {
        Ok(ok) => {
            if ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_inner(cmd: &str, args: &[String]) -> Result<bool, String> {
    match cmd {
        "submit" => {
            let spec = match (get(args, "--spec"), get(args, "--file")) {
                (Some(s), None) => s,
                (None, Some(path)) => {
                    std::fs::read_to_string(&path).map_err(|e| format!("read {path}: {e}"))?
                }
                _ => return Err("need exactly one of --spec JSON or --file PATH".into()),
            };
            // One request per line: the spec must collapse to one line.
            let spec: String = spec.split_whitespace().collect::<Vec<_>>().join(" ");
            let (mut conn, resp) = submit_with_retry(args, &spec)?;
            println!("{resp}");
            if !is_ok(&resp) {
                return Ok(false);
            }
            if args.iter().any(|a| a == "--watch") {
                let job = json::parse(&resp)
                    .ok()
                    .and_then(|v| v.get("job").and_then(JsonValue::as_u64))
                    .ok_or("response carried no job id")?;
                return stream_watch(&mut conn, args, job);
            }
            Ok(true)
        }
        "status" => {
            let job = job_arg(args)?;
            let mut conn = connect_with_backoff(args)?;
            conn.send_line(&format!("{{\"cmd\": \"status\", \"job\": {job}}}"))?;
            let resp = conn.read_line()?;
            println!("{resp}");
            Ok(is_ok(&resp))
        }
        "watch" => {
            let job = job_arg(args)?;
            let mut conn = connect_with_backoff(args)?;
            stream_watch(&mut conn, args, job)
        }
        _ => Err(format!("unknown subcommand {cmd}")),
    }
}
