//! `rcc-repro` — command-line simulator driver.
//!
//! ```text
//! USAGE: rcc-repro [--protocol P] [--bench B] [--machine M] [--scale S]
//!                  [--seed N] [--check] [--csv] [--all] [--jobs N]
//!
//!   --protocol  mesi | mesi-wb | tcs | tcw | rcc | rcc-wo | ideal  (default rcc)
//!   --bench     bh|bfs|cl|dlb|stn|vpr|hsp|kmn|lps|ndl|sr|lud  (default dlb)
//!   --machine   gtx480 | small                                (default gtx480)
//!   --scale     quick | standard | full                       (default standard)
//!   --seed      workload seed                                 (default 7)
//!   --trace-file PATH   run a custom trace (see workloads::custom)
//!   --mesh      use a 2D-mesh NoC instead of the crossbars
//!   --check     verify the run with the SC scoreboard
//!   --no-ff     disable idle-cycle fast-forwarding (same results, slower)
//!   --csv       print one CSV row instead of the report
//!   --all       run every protocol on the chosen benchmark
//!   --jobs N    run --all protocols on N worker threads (0 = one per
//!               core); output is identical to a sequential run
//!   --sample-every N    record a metrics time-series sample every N
//!               cycles (defaults to 256 when --series-out is given)
//!   --trace-out PATH    write a Chrome/Perfetto trace of the run
//!   --series-out PATH   write the sampled series (.csv, or .json by
//!               extension); under --all, exports cover --protocol's run
//!   --profile   attach the self-profiler; print per-phase wall-clock
//!   --checkpoint PATH   write periodic snapshots here; on a watchdog
//!               deadlock an auto-checkpoint lands at PATH.hang
//!   --checkpoint-every N  snapshot period in cycles (default 1000000
//!               when --checkpoint is given)
//!   --resume PATH       replay a snapshot (protocol, benchmark, and
//!               options come from the snapshot; results are
//!               bit-identical to the uninterrupted run)
//!   --hang-dump PATH    write the forensic hang-dump JSON here if the
//!               watchdog fires (default PATH of --checkpoint plus
//!               .hangdump.json, when --checkpoint is given)
//!   --record-trace PATH write the run's memory-access trace (RCCT
//!               binary + manifest); under --all, covers --protocol's run
//!   --replay-trace PATH re-execute a recorded or hand-authored trace
//!               (binary or text; inspect with the rcc-trace tool)
//!
//! SUBCOMMANDS (clients for the rcc-serve batch service):
//!   rcc-repro submit --addr HOST:PORT (--spec JSON | --file PATH) [--watch]
//!   rcc-repro status --addr HOST:PORT --job N
//!   rcc-repro watch  --addr HOST:PORT --job N
//!
//! All subcommands take --retries N (default 5): connects and dropped
//! watches retry with exponential backoff, overloaded replies honor the
//! server's retry-after hint, and a submit whose spec carries a
//! dedup_key is resubmitted safely after a dropped connection.
//! ```

use rcc_repro::coherence::ProtocolKind;
use rcc_repro::common::GpuConfig;
use rcc_repro::sim::runner::{resume, try_simulate, SimOptions};
use rcc_repro::sim::{RunMetrics, SimError};
use rcc_repro::workloads::{Benchmark, Scale};
use std::process::ExitCode;

mod client;

fn parse_protocol(s: &str) -> Option<ProtocolKind> {
    Some(match s {
        "mesi" => ProtocolKind::Mesi,
        "mesi-wb" => ProtocolKind::MesiWb,
        "tcs" => ProtocolKind::TcStrong,
        "tcw" => ProtocolKind::TcWeak,
        "rcc" | "rcc-sc" => ProtocolKind::RccSc,
        "rcc-wo" => ProtocolKind::RccWo,
        "ideal" => ProtocolKind::IdealSc,
        _ => return None,
    })
}

fn parse_bench(s: &str) -> Option<Benchmark> {
    Benchmark::ALL.into_iter().find(|b| b.name() == s)
}

fn csv_header() -> &'static str {
    "protocol,bench,cycles,ipc,mem_ops,sc_stall_cycles,fence_stall_cycles,\
     l1_loads,l1_hits,expired_loads,renewed_loads,flits,energy_pj,dram_reads,\
     dram_writes,sc_violations,rollovers"
}

fn csv_row(m: &RunMetrics) -> String {
    format!(
        "{},{},{},{:.4},{},{},{},{},{},{},{},{},{:.0},{},{},{},{}",
        m.kind.label(),
        m.workload,
        m.cycles,
        m.ipc(),
        m.core.mem_ops,
        m.core.sc_stall_cycles,
        m.core.fence_stall_cycles,
        m.l1.loads,
        m.l1.load_hits,
        m.l1.expired_loads,
        m.l1.renewed_loads,
        m.traffic.total_flits(),
        m.energy.total_pj(),
        m.dram_reads,
        m.dram_writes,
        m.sc_violations,
        m.rollovers,
    )
}

fn report(m: &RunMetrics) {
    println!("== {} on {} ==", m.kind, m.workload);
    println!("cycles             {:>12}", m.cycles);
    println!("IPC                {:>12.4}", m.ipc());
    println!("memory ops         {:>12}", m.core.mem_ops);
    println!("SC stall cycles    {:>12}", m.core.sc_stall_cycles);
    println!("fence stall cycles {:>12}", m.core.fence_stall_cycles);
    println!(
        "L1 load hit rate   {:>11.1}%",
        100.0 * m.l1.load_hits as f64 / m.l1.loads.max(1) as f64
    );
    println!(
        "expired loads      {:>12} ({:.1}% of loads, {:.1}% renewable)",
        m.l1.expired_loads,
        100.0 * m.expired_load_fraction(),
        100.0 * m.renewable_fraction()
    );
    println!("NoC flits          {:>12}", m.traffic.total_flits());
    println!("NoC energy (nJ)    {:>12.1}", m.energy.total_pj() / 1000.0);
    println!(
        "DRAM reads/writes  {:>7} / {:<7}",
        m.dram_reads, m.dram_writes
    );
    if m.rollovers > 0 {
        println!("timestamp rollovers{:>12}", m.rollovers);
    }
    // The histogram's nearest-rank percentiles: the paper's latency
    // argument (Fig. 1c) is about the tail, not the mean.
    if let (Some(p50), Some(p99)) = (
        m.load_latency().percentile(50.0),
        m.load_latency().percentile(99.0),
    ) {
        println!(
            "load latency       {:>12.1} mean, p50 {p50}, p99 {p99}",
            m.load_latency().mean()
        );
    }
    println!("SC violations      {:>12}", m.sc_violations);
    if let Some(p) = &m.profile {
        print!("self-profile       {:>9} steps:", p.steps);
        for ph in rcc_repro::obs::SimPhase::ALL {
            print!(" {} {:.1}%", ph.label(), 100.0 * p.share(ph));
        }
        println!();
    }
}

/// Prints a typed failure; for a deadlock also writes the forensic
/// hang-dump JSON (validated against `schemas/hangdump.schema.json`) and
/// points at the auto-checkpoint for replay.
fn report_failure(e: &SimError, hang_dump: Option<&str>) {
    eprintln!("error: {e}");
    let SimError::Deadlock(dump) = e else {
        return;
    };
    if let Some(ck) = &dump.checkpoint {
        eprintln!("auto-checkpoint for deterministic replay: {ck} (use --resume)");
    }
    let Some(path) = hang_dump else {
        eprintln!("(pass --checkpoint or --hang-dump to capture the forensic dump)");
        return;
    };
    let json = dump.to_json();
    let schema_ok =
        rcc_repro::obs::schema::validate_text(rcc_bench::report::schemas::HANGDUMP, &json)
            .map(|errs| errs.is_empty())
            .unwrap_or(false);
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!(
            "hang-dump written: {path}{}",
            if schema_ok {
                ""
            } else {
                " (WARNING: dump does not match schemas/hangdump.schema.json)"
            }
        ),
        Err(err) => eprintln!("cannot write hang-dump {path}: {err}"),
    }
}

fn print_result(m: &RunMetrics, csv: bool, first: bool) {
    if csv {
        println!("{}", csv_row(m));
    } else {
        if !first {
            println!();
        }
        report(m);
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let has = |flag: &str| args.iter().any(|a| a == flag);
    if let Some(cmd) = args.first() {
        if matches!(cmd.as_str(), "submit" | "status" | "watch") {
            return client::run(cmd, &args[1..]);
        }
    }
    if has("--help") || has("-h") {
        println!(
            "{}",
            include_str!("main.rs")
                .lines()
                .skip(3)
                .take(46)
                .map(|l| l.trim_start_matches("//!").strip_prefix(' ').unwrap_or(""))
                .collect::<Vec<_>>()
                .join("\n")
        );
        return ExitCode::SUCCESS;
    }

    let Some(kind) = parse_protocol(&get("--protocol").unwrap_or_else(|| "rcc".into())) else {
        eprintln!("unknown protocol (try mesi|tcs|tcw|rcc|rcc-wo|ideal)");
        return ExitCode::FAILURE;
    };
    let Some(bench) = parse_bench(&get("--bench").unwrap_or_else(|| "dlb".into())) else {
        eprintln!(
            "unknown benchmark (try one of: {})",
            Benchmark::ALL.map(|b| b.name()).join(" ")
        );
        return ExitCode::FAILURE;
    };
    let mut cfg = match get("--machine").as_deref() {
        None | Some("gtx480") => GpuConfig::gtx480(),
        Some("small") => GpuConfig::small(),
        Some(other) => {
            eprintln!("unknown machine {other} (gtx480|small)");
            return ExitCode::FAILURE;
        }
    };
    if has("--mesh") {
        cfg.noc.topology = rcc_repro::common::config::NocTopology::Mesh;
    }
    let scale = match get("--scale").as_deref() {
        Some("quick") => Scale::quick(),
        None | Some("standard") => Scale::standard(),
        Some("full") => Scale::full(),
        Some(other) => {
            eprintln!("unknown scale {other} (quick|standard|full)");
            return ExitCode::FAILURE;
        }
    };
    let seed: u64 = get("--seed").and_then(|s| s.parse().ok()).unwrap_or(7);
    let mut opts = if has("--check") {
        SimOptions::checked()
    } else {
        SimOptions::fast()
    };
    if has("--no-ff") {
        opts.fast_forward = false;
    }
    opts.profile = has("--profile");
    let trace_out = get("--trace-out");
    let series_out = get("--series-out");
    opts.trace = trace_out.is_some();
    opts.sample_every = get("--sample-every")
        .and_then(|n| n.parse().ok())
        .unwrap_or(if series_out.is_some() { 256 } else { 0 });
    opts.checkpoint = get("--checkpoint");
    opts.checkpoint_every = get("--checkpoint-every")
        .and_then(|n| n.parse().ok())
        .unwrap_or(if opts.checkpoint.is_some() {
            1_000_000
        } else {
            0
        });
    opts.record_trace = get("--record-trace");
    let hang_dump = get("--hang-dump").or_else(|| {
        opts.checkpoint
            .as_ref()
            .map(|p| format!("{p}.hangdump.json"))
    });

    // A resumed run carries its own protocol, workload, and options in
    // the snapshot; everything above except output flags is ignored.
    if let Some(path) = get("--resume") {
        return match resume(&path) {
            Ok(m) => {
                if has("--csv") {
                    println!("{}", csv_header());
                }
                print_result(&m, has("--csv"), true);
                ExitCode::SUCCESS
            }
            Err(e) => {
                report_failure(&e, hang_dump.as_deref());
                ExitCode::FAILURE
            }
        };
    }

    let wl = if let Some(path) = get("--replay-trace") {
        // Binary (RCCT) or text — same sniff the rcc-trace tool uses.
        match rcc_trace::Trace::load_any(&path).and_then(|t| t.to_workload(cfg.num_cores)) {
            Ok(wl) => wl,
            Err(e) => {
                eprintln!("cannot replay {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else if let Some(path) = get("--trace-file") {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match rcc_repro::workloads::custom::parse_trace(&text, cfg.num_cores) {
            Ok(wl) => wl,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        bench.generate(&cfg, &scale, seed)
    };
    let kinds: Vec<ProtocolKind> = if has("--all") {
        ProtocolKind::ALL.to_vec()
    } else {
        vec![kind]
    };
    if has("--csv") {
        println!("{}", csv_header());
    }
    // The protocol runs are independent, so --all can spread them over a
    // job pool; results come back in submission order, keeping the
    // report/CSV output byte-identical to a sequential run.
    // A failed protocol (deadlock, budget, invariant) reports as a typed
    // error and flips the exit code; the other jobs still complete.
    let jobs = rcc_bench::parse_jobs(&args);
    let results = rcc_bench::pool::run_indexed(kinds, jobs, |k| {
        // Like the observation exports, a trace under --all covers the
        // --protocol selection — the other runs must not race on the path.
        let mut o = opts.clone();
        if k != kind {
            o.record_trace = None;
        }
        try_simulate(k, &cfg, &wl, &o)
    });
    let mut failed = false;
    for (i, r) in results.iter().enumerate() {
        match r {
            Ok(m) => print_result(m, has("--csv"), i == 0),
            Err(e) => {
                failed = true;
                report_failure(e, hang_dump.as_deref());
            }
        }
    }
    // Under --all every run carries an observation, but the export slots
    // hold one run each — the --protocol selection picks whose.
    if (trace_out.is_some() || series_out.is_some()) && !failed {
        let chosen = results
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .find(|m| m.kind == kind)
            .expect("selected protocol was run");
        let Some(obs) = &chosen.obs else {
            eprintln!("internal error: observed run carried no observation");
            return ExitCode::FAILURE;
        };
        for (path, body, what) in [
            (
                &trace_out,
                trace_out.as_ref().map(|_| obs.trace.to_chrome_json()),
                format!("{} trace events", obs.trace.len()),
            ),
            (
                &series_out,
                series_out.as_ref().map(|p| {
                    if p.ends_with(".json") {
                        obs.series.to_json()
                    } else {
                        obs.series.to_csv()
                    }
                }),
                format!("{} sampled rows", obs.series.rows()),
            ),
        ] {
            let (Some(path), Some(body)) = (path, body) else {
                continue;
            };
            if let Err(e) = std::fs::write(path, body) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {path} ({what})");
        }
    }
    if let (Some(path), false) = (&opts.record_trace, failed) {
        // stderr, like the checkpoint notices: `--csv | tail -1` must
        // still see the data row as the last line of stdout.
        eprintln!("wrote {path} (memory-access trace; replay with --replay-trace)");
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
