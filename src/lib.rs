#![warn(missing_docs)]
//! Umbrella crate for the RCC reproduction.
//!
//! Re-exports the public API of every workspace crate so examples and
//! integration tests can `use rcc_repro::...` uniformly. See the README
//! for an architecture overview and DESIGN.md for the system inventory.
//!
//! # Example
//!
//! Run one benchmark under RCC with full SC checking:
//!
//! ```
//! use rcc_repro::coherence::ProtocolKind;
//! use rcc_repro::common::GpuConfig;
//! use rcc_repro::sim::runner::{simulate, SimOptions};
//! use rcc_repro::workloads::{Benchmark, Scale};
//!
//! let cfg = GpuConfig::small();
//! let wl = Benchmark::Bh.generate(&cfg, &Scale::quick(), 7);
//! let m = simulate(ProtocolKind::RccSc, &cfg, &wl, &SimOptions::checked());
//! assert!(m.cycles > 0);
//! assert_eq!(m.sc_violations, 0);
//! ```

pub use rcc_common as common;
pub use rcc_core as coherence;
pub use rcc_dram as dram;
pub use rcc_gpu as gpu;
pub use rcc_mem as mem;
pub use rcc_noc as noc;
pub use rcc_obs as obs;
pub use rcc_sim as sim;
pub use rcc_trace as trace;
pub use rcc_verify as verify;
pub use rcc_workloads as workloads;
